"""The typed substrate every engine stack is built from.

Before this existed, each engine's ``__init__`` took a loose
``(config, clock, disk, db_cache, os_cache)`` tuple and the driver had to
duck-probe engines for whatever else it needed.  :class:`Substrate`
bundles the full shared environment — configuration, virtual clock,
simulated disk, the cache hierarchy, and the observability core
(:class:`~repro.obs.metrics.MetricsRegistry` +
:class:`~repro.obs.events.EventBus`) — into one typed object that
:class:`~repro.lsm.base.LSMEngine` and :mod:`repro.sim.experiment` build
from.

Constructing a substrate *binds* its disk and caches to the registry and
bus, so every layer publishes through one spine without each call site
having to thread observability arguments around.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.db_cache import DBBufferCache
from repro.cache.os_cache import OSBufferCache
from repro.clock import VirtualClock
from repro.config import SystemConfig
from repro.obs.events import EventBus
from repro.obs.metrics import MetricsRegistry
from repro.storage.disk import SimulatedDisk


@dataclass
class Substrate:
    """Everything below an engine: config, time, disk, caches, observability."""

    config: SystemConfig
    clock: VirtualClock
    disk: SimulatedDisk
    db_cache: DBBufferCache | None = None
    os_cache: OSBufferCache | None = None
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    bus: EventBus = field(default_factory=EventBus)

    def __post_init__(self) -> None:
        self.disk.bind_observability(self.registry)
        if self.db_cache is not None:
            self.db_cache.bind_observability(self.registry, self.bus, "db")
        if self.os_cache is not None:
            self.os_cache.bind_observability(self.registry, self.bus, "os")

    @classmethod
    def create(
        cls,
        config: SystemConfig,
        db_cache: DBBufferCache | None = None,
        os_cache: OSBufferCache | None = None,
        registry: MetricsRegistry | None = None,
        bus: EventBus | None = None,
    ) -> "Substrate":
        """Build a substrate with a fresh clock and disk for ``config``."""
        clock = VirtualClock()
        disk = SimulatedDisk(clock, config.seq_bandwidth_kb_per_s)
        return cls(
            config=config,
            clock=clock,
            disk=disk,
            db_cache=db_cache,
            os_cache=os_cache,
            registry=registry if registry is not None else MetricsRegistry(),
            bus=bus if bus is not None else EventBus(),
        )

    def with_caches(
        self,
        db_cache: DBBufferCache | None,
        os_cache: OSBufferCache | None = None,
    ) -> "Substrate":
        """A sibling substrate sharing everything but the cache stack.

        Composite engines (the K-V cached variant) carve their own cache
        hierarchy out of the same DRAM budget while reusing the clock,
        disk, registry and bus of the enclosing stack.
        """
        return Substrate(
            config=self.config,
            clock=self.clock,
            disk=self.disk,
            db_cache=db_cache,
            os_cache=os_cache,
            registry=self.registry,
            bus=self.bus,
        )
