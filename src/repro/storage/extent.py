"""Extent allocation for the simulated disk.

A multi-page block ("file" in the paper's terminology) maps to a contiguous
disk region; see Section II-A.  :class:`ExtentAllocator` hands out those
contiguous regions log-style: addresses grow monotonically, which mirrors
how an LSM-tree appends new files, and guarantees that a *new* file never
reuses the address of a freed one.  That property is what makes
compaction-induced cache invalidation observable: a cached block is keyed
by its physical location, and the rewritten data always lands somewhere
new.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import StorageError


@dataclass(frozen=True)
class Extent:
    """A contiguous allocated disk region.

    ``start`` and ``size_kb`` are in KB of disk address space.  Extents are
    value objects; liveness is tracked by the allocator.
    """

    start: int
    size_kb: int

    @property
    def end(self) -> int:
        """One past the last KB of the extent."""
        return self.start + self.size_kb


class ExtentAllocator:
    """Monotonic (log-structured) extent allocator with liveness tracking."""

    def __init__(self) -> None:
        self._next_start = 0
        self._live: dict[int, Extent] = {}
        self._live_kb = 0
        self._allocated_kb_total = 0
        self._freed_kb_total = 0

    def allocate(self, size_kb: int) -> Extent:
        """Allocate a fresh contiguous region of ``size_kb`` KB."""
        if size_kb <= 0:
            raise StorageError(f"extent size must be positive, got {size_kb}")
        extent = Extent(self._next_start, size_kb)
        self._next_start += size_kb
        self._live[extent.start] = extent
        self._live_kb += size_kb
        self._allocated_kb_total += size_kb
        return extent

    def free(self, extent: Extent) -> None:
        """Release a previously allocated extent."""
        stored = self._live.pop(extent.start, None)
        if stored is None or stored != extent:
            raise StorageError(f"double free or unknown extent: {extent}")
        self._live_kb -= extent.size_kb
        self._freed_kb_total += extent.size_kb

    def is_live(self, extent: Extent) -> bool:
        """Whether ``extent`` is currently allocated."""
        return self._live.get(extent.start) == extent

    @property
    def live_kb(self) -> int:
        """Total KB currently allocated — the on-disk database size."""
        return self._live_kb

    @property
    def live_extents(self) -> int:
        return len(self._live)

    @property
    def allocated_kb_total(self) -> int:
        """Cumulative KB ever allocated (write traffic proxy)."""
        return self._allocated_kb_total

    @property
    def freed_kb_total(self) -> int:
        return self._freed_kb_total
