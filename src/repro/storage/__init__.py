"""Simulated storage substrate: extents, cost model, virtual disk."""

from repro.storage.disk import DiskStats, SimulatedDisk
from repro.storage.extent import Extent, ExtentAllocator
from repro.storage.iomodel import IOCostModel

__all__ = [
    "DiskStats",
    "Extent",
    "ExtentAllocator",
    "IOCostModel",
    "SimulatedDisk",
]
