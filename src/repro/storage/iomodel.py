"""Disk I/O cost models.

The paper's evaluation runs on a RAID0 of two 15K-RPM hard disks.  The
relevant performance facts for every experiment are:

* a random block read costs a seek (milliseconds),
* sequential transfer is orders of magnitude cheaper per byte,
* compaction I/O and query I/O share one device, so heavy compaction
  traffic inflates query latency (Fig. 10's dips), and
* each sorted table touched by a range query adds one seek, which is why
  SM-tree's many-tables-per-level structure collapses range throughput.

:class:`IOCostModel` turns an operation's *shape* (random reads, sequential
bytes, cache hits, Bloom probes) into modeled service seconds, including a
simple M/M/1-style contention factor for device utilization.  Constants
come from :class:`~repro.config.SystemConfig`; DESIGN.md Section 2 and
EXPERIMENTS.md record the calibration against the paper's absolute numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SystemConfig

#: Utilization is clamped so the queueing factor stays bounded (max 5x).
#: Production LSM stores rate-limit compaction I/O so foreground reads are
#: never fully starved; the clamp models that prioritization.
_MAX_UTILIZATION = 0.8


@dataclass(frozen=True)
class IOCostModel:
    """Translates operation shapes into modeled service time (seconds)."""

    config: SystemConfig

    # ------------------------------------------------------------------
    # Primitive costs.
    # ------------------------------------------------------------------
    def random_read_s(self, blocks: int = 1, utilization: float = 0.0) -> float:
        """Cost of ``blocks`` independent random block reads from disk."""
        if blocks <= 0:
            return 0.0
        return blocks * self.config.random_read_s * self._queueing(utilization)

    def sequential_s(
        self, size_kb: float, seeks: int = 1, utilization: float = 0.0
    ) -> float:
        """Cost of a sequential transfer of ``size_kb`` after ``seeks`` seeks."""
        if size_kb <= 0 and seeks <= 0:
            return 0.0
        transfer = size_kb / self.config.foreground_bandwidth_kb_per_s
        position = seeks * self.config.seek_s
        return (transfer + position) * self._queueing(utilization)

    def cache_hit_s(self, blocks: int = 1) -> float:
        """CPU/copy cost of serving ``blocks`` blocks from the buffer cache."""
        return blocks * self.config.cache_hit_s

    def bloom_probe_s(self, probes: int) -> float:
        return probes * self.config.bloom_probe_s

    # ------------------------------------------------------------------
    # Contention.
    # ------------------------------------------------------------------
    @staticmethod
    def queueing_factor(utilization: float) -> float:
        """Public view of the contention multiplier (see :meth:`_queueing`).

        Reports and the serve layer use it to split a priced disk stage
        into base service time (``stage / factor``) and queueing delay
        behind compaction I/O (the rest).
        """
        return IOCostModel._queueing(utilization)

    @staticmethod
    def _queueing(utilization: float) -> float:
        """M/M/1-style slowdown of disk service under background traffic.

        ``utilization`` is the fraction of the current virtual second the
        device already spends on compaction I/O.  The factor is
        ``1 / (1 - u)`` with ``u`` clamped to keep it finite; at the
        paper's steady-state compaction load (~0.2) this is a mild 1.25x,
        during SM-tree's whole-level merges it dominates.
        """
        clamped = min(max(utilization, 0.0), _MAX_UTILIZATION)
        return 1.0 / (1.0 - clamped)
