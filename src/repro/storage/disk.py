"""The simulated disk: extent allocation plus an I/O accounting ledger.

Engines never read or write real bytes; they tell the disk *what* they did
(allocate a file's extent, stream N KB sequentially for a compaction, read
one random block for a query miss) and the disk keeps the books:

* live capacity (`live_kb`) — the database-size metric of Figs. 12/13,
* cumulative read/write traffic split by random/sequential,
* a per-virtual-second bandwidth ledger for *background* (compaction) I/O,
  from which the driver derives device utilization and, through
  :class:`~repro.storage.iomodel.IOCostModel`, the queueing slowdown that
  foreground queries experience,
* a per-*cause* attribution of all sequential traffic ("flush",
  "compaction:L2", "wal", "query", ...), so the profiling layer can say
  which stream of the paper's mixed workload owns the device at any time;
  the per-cause totals sum-reconcile exactly with the ``DiskStats``
  sequential counters (the bandwidth-attribution invariant).

The disk also exposes page-level physical addresses so the OS buffer cache
(which caches by physical location, not by file) can observe compaction
traffic — the mechanism behind Fig. 2's OS-cache churn.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.errors import StorageError
from repro.clock import VirtualClock
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.storage.extent import Extent, ExtentAllocator


@dataclass
class DiskStats:
    """Cumulative I/O counters, all in KB or operation counts."""

    seq_read_kb: float = 0.0
    seq_write_kb: float = 0.0
    random_read_blocks: int = 0
    seeks: int = 0
    allocations: int = 0
    frees: int = 0

    def snapshot(self) -> "DiskStats":
        return DiskStats(
            seq_read_kb=self.seq_read_kb,
            seq_write_kb=self.seq_write_kb,
            random_read_blocks=self.random_read_blocks,
            seeks=self.seeks,
            allocations=self.allocations,
            frees=self.frees,
        )


@dataclass(slots=True)
class _TickLedger:
    """Background (compaction) traffic recorded for one virtual second."""

    second: int = -1
    background_kb: float = 0.0
    background_seeks: int = 0
    temp_space_kb: float = field(default=0.0)


class SimulatedDisk:
    """Extent-allocating virtual disk with per-second bandwidth accounting."""

    def __init__(self, clock: VirtualClock, seq_bandwidth_kb_per_s: float) -> None:
        if seq_bandwidth_kb_per_s <= 0:
            raise StorageError("sequential bandwidth must be positive")
        self._clock = clock
        self._bandwidth = seq_bandwidth_kb_per_s
        self._allocator = ExtentAllocator()
        self.stats = DiskStats()
        #: Cumulative sequential traffic attributed by cause, in KB.
        #: Every KB in ``stats.seq_read_kb``/``seq_write_kb`` appears in
        #: exactly one cause bucket here (default "unattributed", which
        #: the bandwidth-attribution checker requires to stay zero on
        #: fully tagged engine stacks).
        self.cause_read_kb: dict[str, float] = {}
        self.cause_write_kb: dict[str, float] = {}
        self.bind_observability(NULL_REGISTRY)
        self._tick = _TickLedger()
        #: Background work queued but not yet absorbed by the device.  A
        #: compaction step is *issued* within one virtual second but its
        #: I/O physically streams at the device's bandwidth, so the excess
        #: carries over as backlog and keeps utilization (and therefore
        #: foreground queueing) elevated for the following seconds — as a
        #: real disk would behave.
        self._backlog_kb = 0.0
        #: Crash-point hook (see :mod:`repro.check.crash`): called with a
        #: point name before each instrumented operation mutates state; an
        #: armed injector raises to simulate a crash at that instant.
        self.fault_hook: Callable[[str], None] | None = None

    def bind_observability(self, registry: MetricsRegistry) -> None:
        """Publish the disk ledger through ``registry``.

        Called by :class:`~repro.substrate.Substrate`; until then the disk
        writes to the shared null registry, so standalone construction
        (unit tests, ad-hoc scripts) pays nothing.

        The per-operation counters (sequential KB, seeks, random blocks,
        per-cause traffic) are published *deferred*: the I/O paths write
        only the plain ``stats``/cause dicts, and a registered flush
        callback copies them into the instruments whenever the registry
        flushes (every snapshot does).  Allocation counters and the
        live-KB gauge stay live — extent churn is orders of magnitude
        rarer than I/O accounting.
        """
        self._registry = registry
        self._m_seq_read_kb = registry.counter("disk.seq_read_kb")
        self._m_seq_write_kb = registry.counter("disk.seq_write_kb")
        self._m_random_reads = registry.counter("disk.random_read_blocks")
        self._m_seeks = registry.counter("disk.seeks")
        self._m_allocations = registry.counter("disk.allocations")
        self._m_frees = registry.counter("disk.frees")
        self._m_live_kb = registry.gauge("disk.live_kb")
        stats = self.stats
        self._m_offsets = (
            self._m_seq_read_kb.value - stats.seq_read_kb,
            self._m_seq_write_kb.value - stats.seq_write_kb,
            self._m_random_reads.value - stats.random_read_blocks,
            self._m_seeks.value - stats.seeks,
            self._m_allocations.value - stats.allocations,
            self._m_frees.value - stats.frees,
        )
        # Per-cause counters are created lazily (causes arrive at
        # runtime); rebinding re-registers the causes seen so far.
        self._m_cause: dict[tuple[str, str], object] = {}
        self._m_cause_offsets: dict[tuple[str, str], float] = {}
        for cause in self.cause_read_kb:
            self._cause_counter("read", cause)
        for cause in self.cause_write_kb:
            self._cause_counter("write", cause)
        registry.register_flush(self._publish_metrics)

    def _publish_metrics(self) -> None:
        """Copy the hot-path ledgers into the registry instruments."""
        stats = self.stats
        seq_read, seq_write, random_reads, seeks, allocs, frees = (
            self._m_offsets
        )
        self._m_seq_read_kb.value = seq_read + stats.seq_read_kb
        self._m_seq_write_kb.value = seq_write + stats.seq_write_kb
        self._m_random_reads.value = random_reads + stats.random_read_blocks
        self._m_seeks.value = seeks + stats.seeks
        self._m_allocations.value = allocs + stats.allocations
        self._m_frees.value = frees + stats.frees
        self._m_live_kb.set(self._allocator.live_kb)
        offsets = self._m_cause_offsets
        for cause, total in self.cause_read_kb.items():
            counter = self._cause_counter("read", cause)
            counter.value = offsets[("read", cause)] + total
        for cause, total in self.cause_write_kb.items():
            counter = self._cause_counter("write", cause)
            counter.value = offsets[("write", cause)] + total

    # ------------------------------------------------------------------
    # Space management.
    # ------------------------------------------------------------------
    def allocate(self, size_kb: int) -> Extent:
        """Allocate a contiguous extent (one file or super-file)."""
        if self.fault_hook is not None:
            self.fault_hook("disk.allocate")
        extent = self._allocator.allocate(size_kb)
        self.stats.allocations += 1
        return extent

    def free(self, extent: Extent) -> None:
        """Release an extent; its addresses are never reused."""
        if self.fault_hook is not None:
            self.fault_hook("disk.free")
        self._allocator.free(extent)
        self.stats.frees += 1

    def is_live(self, extent: Extent) -> bool:
        return self._allocator.is_live(extent)

    @property
    def live_kb(self) -> int:
        """Current on-disk footprint — the paper's "database size"."""
        return self._allocator.live_kb

    @property
    def live_extents(self) -> int:
        return self._allocator.live_extents

    # ------------------------------------------------------------------
    # Background (compaction) I/O accounting.
    # ------------------------------------------------------------------
    def background_read(
        self, size_kb: float, seeks: int = 1, cause: str = "unattributed"
    ) -> None:
        """Record a sequential compaction read of ``size_kb``.

        ``cause`` names the stream this traffic belongs to ("flush",
        "compaction:L2", ...); engine code always tags it, so the
        default only shows up from untagged ad-hoc callers — and the
        bandwidth-attribution checker flags it.
        """
        if self.fault_hook is not None:
            self.fault_hook("disk.background_read")
        self._record_background(size_kb, seeks)
        self.stats.seq_read_kb += size_kb
        self._attribute("read", cause, size_kb)

    def background_write(
        self, size_kb: float, seeks: int = 1, cause: str = "unattributed"
    ) -> None:
        """Record a sequential compaction write of ``size_kb``."""
        if self.fault_hook is not None:
            self.fault_hook("disk.background_write")
        self._record_background(size_kb, seeks)
        self.stats.seq_write_kb += size_kb
        self._attribute("write", cause, size_kb)

    def note_temp_space(self, size_kb: float) -> None:
        """Record transient space held during this second's compaction.

        SM-tree's whole-level merges hold input *and* output on disk until
        the new table is installed; Fig. 12's size bursts come from exactly
        this.  The driver samples ``live_kb + temp space`` once per second.
        """
        self._roll_tick()
        self._tick.temp_space_kb = max(self._tick.temp_space_kb, size_kb)

    def _record_background(self, size_kb: float, seeks: int) -> None:
        if size_kb < 0:
            raise StorageError(f"negative I/O size: {size_kb}")
        tick = self._tick
        if tick.second != self._clock.now:
            self._roll_tick()
            tick = self._tick
        tick.background_kb += size_kb
        tick.background_seeks += seeks
        self.stats.seeks += seeks

    # ------------------------------------------------------------------
    # Per-cause bandwidth attribution.
    # ------------------------------------------------------------------
    def _cause_counter(self, kind: str, cause: str):
        key = (kind, cause)
        counter = self._m_cause.get(key)
        if counter is None:
            counter = self._registry.counter(f"disk.bw.{cause}.{kind}_kb")
            self._m_cause[key] = counter
            # The counter may pre-exist with a value (rebind); the offset
            # keeps deferred publication from double-counting.
            totals = (
                self.cause_read_kb if kind == "read" else self.cause_write_kb
            )
            self._m_cause_offsets[key] = counter.value - totals.get(cause, 0.0)
        return counter

    def _attribute(self, kind: str, cause: str, size_kb: float) -> None:
        totals = self.cause_read_kb if kind == "read" else self.cause_write_kb
        totals[cause] = totals.get(cause, 0.0) + size_kb

    def record_cause(self, cause: str) -> None:
        """Register a zero-I/O cause so reports list it explicitly.

        LSbM's buffer appends and trim removals move *no* data — the
        paper's "no additional I/O" claim — but the per-cause breakdown
        should still show them at 0 KB rather than omit them.
        """
        self.cause_read_kb.setdefault(cause, 0.0)
        self.cause_write_kb.setdefault(cause, 0.0)
        self._cause_counter("read", cause)
        self._cause_counter("write", cause)

    def cause_totals(self) -> dict[str, dict[str, float]]:
        """Cumulative per-cause traffic: ``{cause: {read_kb, write_kb}}``."""
        causes = set(self.cause_read_kb) | set(self.cause_write_kb)
        return {
            cause: {
                "read_kb": self.cause_read_kb.get(cause, 0.0),
                "write_kb": self.cause_write_kb.get(cause, 0.0),
            }
            for cause in sorted(causes)
        }

    def _roll_tick(self) -> None:
        # The ledger is reset in place rather than reallocated — it is
        # rolled once per virtual second and nothing else holds a
        # reference to it.
        tick = self._tick
        now = self._clock.now
        if tick.second != now:
            if tick.second >= 0:
                elapsed = now - tick.second
                pending = self._backlog_kb + self._pending_tick_kb()
                self._backlog_kb = max(0.0, pending - elapsed * self._bandwidth)
            tick.second = now
            tick.background_kb = 0.0
            tick.background_seeks = 0
            tick.temp_space_kb = 0.0

    def _pending_tick_kb(self) -> float:
        """This tick's background work, seeks converted to transfer-KB."""
        return (
            self._tick.background_kb
            + self._tick.background_seeks * 0.005 * self._bandwidth
        )

    # ------------------------------------------------------------------
    # Foreground I/O accounting (queries). Costing happens in IOCostModel;
    # the disk only keeps cumulative counters.
    # ------------------------------------------------------------------
    def foreground_random_read(self, blocks: int = 1) -> None:
        self.stats.random_read_blocks += blocks
        self.stats.seeks += blocks

    def foreground_sequential_read(
        self, size_kb: float, seeks: int = 1, cause: str = "query"
    ) -> None:
        self.stats.seq_read_kb += size_kb
        self.stats.seeks += seeks
        self._attribute("read", cause, size_kb)

    # ------------------------------------------------------------------
    # Utilization.
    # ------------------------------------------------------------------
    def utilization(self) -> float:
        """Fraction of the current second consumed by background I/O.

        Includes carried-over backlog: a burst bigger than one second of
        bandwidth keeps the device saturated across following seconds.
        """
        tick = self._tick
        if tick.second != self._clock.now:
            self._roll_tick()
            tick = self._tick
        # Inlined _pending_tick_kb; the parentheses keep the original
        # ``backlog + (kb + seeks*...)`` float association exactly.
        pending = self._backlog_kb + (
            tick.background_kb
            + tick.background_seeks * 0.005 * self._bandwidth
        )
        return min(pending / self._bandwidth, 1.0)

    @property
    def backlog_kb(self) -> float:
        """Background work carried over from previous seconds."""
        return self._backlog_kb

    def tick_temp_space_kb(self) -> float:
        """Peak transient compaction space recorded this second."""
        if self._tick.second != self._clock.now:
            self._roll_tick()
        return self._tick.temp_space_kb
