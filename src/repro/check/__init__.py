"""Differential correctness harness for every engine variant.

The paper's evaluation (Sections IV-VI) argues about *performance* under
mixed reads and writes; this package guards the *correctness* those
numbers silently assume.  It runs any engine in lockstep with a trivially
correct in-memory oracle over a long seeded schedule of puts, deletes,
gets, scans and clock ticks, while event-driven checkers subscribed to
the substrate's bus verify structural invariants (cache coherence, the
file ledger, the trim bound of Algorithm 2) continuously.  A companion
crash harness injects faults at registered crash points inside the
simulated disk and the WAL, then checks that recovery restores an
oracle-consistent state.

Everything is deterministic by seed: any failure is replayable with
``repro check --engines <name> --seed <seed> --ops <ops>``.
"""

from repro.check.crash import (
    CRASH_POINTS,
    CrashOutcome,
    CrashRecoveryHarness,
    FaultInjector,
    SimulatedCrash,
)
from repro.check.differential import DifferentialReport, DifferentialRunner
from repro.check.invariants import (
    BandwidthAttributionChecker,
    CacheCoherenceChecker,
    InvariantChecker,
    LedgerChecker,
    TrimBoundChecker,
)
from repro.check.oracle import KVOracle
from repro.check.schedule import Op, ScheduleSpec, apply_op, generate_schedule

__all__ = [
    "CRASH_POINTS",
    "BandwidthAttributionChecker",
    "CacheCoherenceChecker",
    "CrashOutcome",
    "CrashRecoveryHarness",
    "DifferentialReport",
    "DifferentialRunner",
    "FaultInjector",
    "InvariantChecker",
    "KVOracle",
    "LedgerChecker",
    "Op",
    "ScheduleSpec",
    "SimulatedCrash",
    "TrimBoundChecker",
    "apply_op",
    "generate_schedule",
]
