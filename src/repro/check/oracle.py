"""The KV oracle: a trivially correct model of every engine's contract.

Engines store ``(key, seq)`` pairs and reconstruct values as
``value_for(key, seq)`` (see :mod:`repro.sstable.entry`), so the oracle
only has to remember the newest sequence number per live key.  Puts
overwrite, deletes remove, gets return the newest version, and scans
return the live keys of a closed range in sorted order — exactly what
every engine's ``get``/``scan`` must produce once memtable, runs,
tombstones and compaction buffers are folded together.
"""

from __future__ import annotations

from repro.sstable.entry import value_for


class KVOracle:
    """In-memory sorted-map model run in lockstep with an engine."""

    def __init__(self) -> None:
        #: Newest sequence number of each live (non-deleted) key.
        self._live: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._live)

    # ------------------------------------------------------------------
    # Mutations (mirroring the engine's write path).
    # ------------------------------------------------------------------
    def put(self, key: int, seq: int) -> None:
        """Record that the engine assigned ``seq`` to a put of ``key``."""
        self._live[key] = seq

    def delete(self, key: int) -> None:
        self._live.pop(key, None)

    # ------------------------------------------------------------------
    # Queries (the expected answers).
    # ------------------------------------------------------------------
    def get(self, key: int) -> tuple[bool, str | None]:
        """Expected ``(found, value)`` of a point lookup."""
        seq = self._live.get(key)
        if seq is None:
            return False, None
        return True, value_for(key, seq)

    def scan(self, low: int, high: int) -> list[tuple[int, str]]:
        """Expected ``(key, value)`` pairs of ``low <= key <= high``."""
        return [
            (key, value_for(key, self._live[key]))
            for key in sorted(k for k in self._live if low <= k <= high)
        ]

    # ------------------------------------------------------------------
    # Whole-state views (crash verification).
    # ------------------------------------------------------------------
    def as_dict(self) -> dict[int, str]:
        """Every live key mapped to its expected value."""
        return {key: value_for(key, seq) for key, seq in self._live.items()}

    def copy(self) -> "KVOracle":
        clone = KVOracle()
        clone._live = dict(self._live)
        return clone
