"""The differential runner: engine vs. oracle over a seeded schedule.

One runner drives one engine variant through a schedule while a
:class:`~repro.check.oracle.KVOracle` shadows every mutation.  Every
``get`` and ``scan`` is compared against the oracle's answer on the
spot, the invariant checkers ride along on the event bus, and a full
``sweep()`` cross-check runs every ``check_every`` operations plus once
at the end.  The result is a JSON-able :class:`DifferentialReport`; the
``repro check`` CLI aggregates one per engine into its verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.check.invariants import InvariantChecker, attach_checkers
from repro.check.oracle import KVOracle
from repro.check.schedule import Op, ScheduleSpec, apply_op, generate_schedule
from repro.config import SystemConfig
from repro.sim.experiment import build_engine

#: How many oracle mismatches to transcribe before only counting.
_MAX_RECORDED_MISMATCHES = 20


@dataclass
class DifferentialReport:
    """Outcome of one engine's differential run."""

    engine: str
    seed: int
    ops: int
    oracle_checks: int = 0
    mismatch_count: int = 0
    mismatches: list[dict] = field(default_factory=list)
    invariants: dict[str, dict] = field(default_factory=dict)
    trim_runs: int = 0

    @property
    def ok(self) -> bool:
        return self.mismatch_count == 0 and all(
            inv["ok"] for inv in self.invariants.values()
        )

    def to_json_dict(self) -> dict:
        return {
            "engine": self.engine,
            "seed": self.seed,
            "ops": self.ops,
            "oracle": {
                "checks": self.oracle_checks,
                "mismatches": self.mismatch_count,
                "examples": self.mismatches,
                "ok": self.mismatch_count == 0,
            },
            "invariants": self.invariants,
            "trim_runs": self.trim_runs,
            "ok": self.ok,
        }


class DifferentialRunner:
    """Run one engine in lockstep with the oracle."""

    def __init__(
        self,
        engine_name: str,
        *,
        seed: int,
        ops: int,
        key_space: int = 2000,
        config: SystemConfig | None = None,
        check_every: int = 500,
    ) -> None:
        self.engine_name = engine_name
        self.spec = ScheduleSpec(seed=seed, ops=ops, key_space=key_space)
        self.config = config if config is not None else SystemConfig.tiny()
        self.check_every = check_every
        # Checkers must attach before the first operation: file events
        # are only observable live, never reconstructable.
        self.setup = build_engine(engine_name, self.config)
        self.checkers: dict[str, InvariantChecker] = attach_checkers(self.setup)

    def run(self) -> DifferentialReport:
        report = DifferentialReport(
            engine=self.engine_name, seed=self.spec.seed, ops=self.spec.ops
        )
        engine = self.setup.engine
        clock = self.setup.clock
        oracle = KVOracle()
        for index, op in enumerate(generate_schedule(self.spec)):
            result = apply_op(engine, clock, op)
            if op.name == "put":
                oracle.put(op.key, result)
            elif op.name == "delete":
                oracle.delete(op.key)
            elif op.name == "get":
                report.oracle_checks += 1
                expected = oracle.get(op.key)
                got = (result.found, result.value)
                if got != expected:
                    self._record_mismatch(report, index, op, expected, got)
            elif op.name == "scan":
                report.oracle_checks += 1
                expected_scan = oracle.scan(op.key, op.high)
                got_scan = [(e.key, e.value()) for e in result.entries]
                if got_scan != expected_scan:
                    self._record_mismatch(
                        report, index, op, expected_scan, got_scan
                    )
            if (index + 1) % self.check_every == 0:
                self._sweep()
        self._sweep()
        for name, checker in self.checkers.items():
            report.invariants[name] = checker.report()
        trim = self.checkers.get("trim-bound")
        if trim is not None:
            report.trim_runs = getattr(trim, "trim_runs", 0)
        return report

    def _sweep(self) -> None:
        for checker in self.checkers.values():
            checker.sweep()

    @staticmethod
    def _record_mismatch(
        report: DifferentialReport, index: int, op: Op, expected, got
    ) -> None:
        report.mismatch_count += 1
        if len(report.mismatches) < _MAX_RECORDED_MISMATCHES:
            report.mismatches.append(
                {
                    "op_index": index,
                    "op": op.describe(),
                    "expected": repr(expected),
                    "got": repr(got),
                }
            )
