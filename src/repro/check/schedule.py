"""Seeded schedule generation and replay.

A schedule is a deterministic function of its :class:`ScheduleSpec`:
identical specs produce identical operation lists, so the same schedule
can be replayed against all engine variants (differential testing) or
re-run from scratch to reconstruct an engine's exact state at any
operation index (crash recovery verification).  Keys are drawn with a
hot-range skew so caches actually fill, trims fire, and compactions
rewrite recently read data — the paper's mixed read/write shape.

``tick`` operations advance the virtual clock and call the engine's
per-second housekeeping hook, which is what drives LSbM's trim process
and HBase's scheduled major compactions inside a schedule.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

#: (operation, cumulative probability) — puts and gets dominate, with
#: enough deletes to exercise tombstone paths and enough ticks that
#: time-driven machinery (trim, major compactions) runs mid-schedule.
_OP_CDF = (
    ("put", 0.34),
    ("get", 0.68),
    ("delete", 0.80),
    ("scan", 0.92),
    ("tick", 1.0),
)


@dataclass(frozen=True)
class Op:
    """One schedule step; unused fields stay at their defaults."""

    name: str
    key: int = 0
    high: int = 0
    seconds: int = 0

    def describe(self) -> str:
        if self.name == "scan":
            return f"scan[{self.key}..{self.high}]"
        if self.name == "tick":
            return f"tick(+{self.seconds}s)"
        return f"{self.name}({self.key})"


@dataclass(frozen=True)
class ScheduleSpec:
    """Everything that determines a schedule, hence a whole run."""

    seed: int
    ops: int
    key_space: int = 2000
    scan_span: int = 32
    hot_fraction: float = 0.25
    hot_probability: float = 0.7


def generate_schedule(spec: ScheduleSpec) -> list[Op]:
    """The deterministic operation list of ``spec``."""
    rng = random.Random(spec.seed)
    hot_keys = max(1, int(spec.key_space * spec.hot_fraction))
    schedule: list[Op] = []

    def draw_key() -> int:
        if rng.random() < spec.hot_probability:
            return rng.randrange(hot_keys)
        return rng.randrange(spec.key_space)

    for _ in range(spec.ops):
        roll = rng.random()
        for name, ceiling in _OP_CDF:
            if roll <= ceiling:
                break
        if name == "scan":
            low = rng.randrange(spec.key_space)
            span = rng.randrange(1, spec.scan_span + 1)
            schedule.append(Op("scan", key=low, high=low + span))
        elif name == "tick":
            schedule.append(Op("tick", seconds=rng.randrange(1, 11)))
        else:
            schedule.append(Op(name, key=draw_key()))
    return schedule


def apply_op(engine, clock, op: Op):
    """Run one schedule step against ``engine``; returns its raw result.

    Shared by the differential runner and the crash harness so that
    "replay the first *i* operations" reconstructs bit-identical state.
    """
    if op.name == "put":
        return engine.put(op.key)
    if op.name == "delete":
        return engine.delete(op.key)
    if op.name == "get":
        return engine.get(op.key)
    if op.name == "scan":
        return engine.scan(op.key, op.high)
    if op.name == "tick":
        clock.advance(op.seconds)
        engine.tick(clock.now)
        return None
    raise ValueError(f"unknown schedule op: {op.name}")
