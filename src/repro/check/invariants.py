"""Event-driven invariant checkers.

Each checker subscribes to the substrate's event bus at engine
construction time and verifies one structural property continuously,
plus an optional ``sweep()`` that cross-checks whole-system state (the
differential runner sweeps periodically and once at the end):

* :class:`CacheCoherenceChecker` — every cached ``(file_id, block)``
  points at a live, readable block of a live file (Section I's
  compaction-induced invalidation, done *completely*);
* :class:`LedgerChecker` — the stream of FileCreated/FileDiscarded
  events reconciles exactly with the simulated disk's live footprint
  (no leaked extents, no double frees, no phantom files);
* :class:`TrimBoundChecker` — after every trim pass, every file still
  in a trimmable position of the compaction buffer meets Algorithm 2's
  cached-fraction threshold;
* :class:`BandwidthAttributionChecker` — the disk's per-cause traffic
  buckets sum to exactly the ``DiskStats`` sequential totals, with
  nothing left in the "unattributed" bucket (every KB of I/O names the
  stream — flush, per-level compaction, WAL, query — that issued it).

The OS page cache is deliberately exempt from coherence checking: it is
keyed by physical address, the allocator never reuses addresses, and so
stale pages of freed extents are unreachable by construction — the
behaviour Fig. 2 depends on.
"""

from __future__ import annotations

import math

from repro.check.reflect import live_files, unwrap
from repro.obs.events import FileCreated, FileDiscarded, TrimRun


class InvariantChecker:
    """Base checker: a named violation log with a bounded transcript."""

    name = "invariant"
    max_recorded = 25

    def __init__(self) -> None:
        self.checked = 0
        self.violation_count = 0
        self.violations: list[str] = []

    @property
    def ok(self) -> bool:
        return self.violation_count == 0

    def _violate(self, message: str) -> None:
        self.violation_count += 1
        if len(self.violations) < self.max_recorded:
            self.violations.append(message)

    def sweep(self) -> None:
        """Whole-state cross-check; event-only checkers keep it empty."""

    def report(self) -> dict:
        return {
            "checked": self.checked,
            "violations": self.violation_count,
            "examples": list(self.violations),
            "ok": self.ok,
        }


class CacheCoherenceChecker(InvariantChecker):
    """Cached DB-cache blocks always index live on-disk data."""

    name = "cache-coherence"

    def __init__(self, engine, cache, disk, bus) -> None:
        super().__init__()
        self._engine = engine
        self._cache = cache
        self._disk = disk
        bus.subscribe(FileDiscarded, self._on_discard)

    def _on_discard(self, event: FileDiscarded) -> None:
        self.checked += 1
        stale = self._cache.cached_blocks(event.file_id)
        if stale:
            self._violate(
                f"file {event.file_id} discarded ({event.reason}) with "
                f"{stale} blocks still cached"
            )

    def sweep(self) -> None:
        live = live_files(self._engine)
        for file_id in self._cache.resident_file_ids():
            self.checked += 1
            file = live.get(file_id)
            if file is None:
                self._violate(f"cache holds blocks of dead file {file_id}")
                continue
            if not self._disk.is_live(file.extent):
                self._violate(
                    f"cache holds blocks of file {file_id} whose extent "
                    "was freed"
                )
                continue
            for index in self._cache.resident_blocks(file_id):
                if index >= file.num_blocks:
                    self._violate(
                        f"cache holds out-of-range block {index} of file "
                        f"{file_id} ({file.num_blocks} blocks)"
                    )


class LedgerChecker(InvariantChecker):
    """File lifecycle events reconcile with the disk's live footprint."""

    name = "ledger"

    def __init__(self, disk, bus) -> None:
        super().__init__()
        self._disk = disk
        self._live: dict[int, int] = {}
        bus.subscribe(FileCreated, self._on_create)
        bus.subscribe(FileDiscarded, self._on_discard)

    def _on_create(self, event: FileCreated) -> None:
        self.checked += 1
        if event.file_id in self._live:
            self._violate(f"file {event.file_id} created twice")
        self._live[event.file_id] = event.size_kb

    def _on_discard(self, event: FileDiscarded) -> None:
        self.checked += 1
        size = self._live.pop(event.file_id, None)
        if size is None:
            self._violate(
                f"file {event.file_id} discarded but never created "
                "(or discarded twice)"
            )
        elif size != event.size_kb:
            self._violate(
                f"file {event.file_id} created with {size} KB but "
                f"discarded with {event.size_kb} KB"
            )

    def sweep(self) -> None:
        self.checked += 1
        ledger_kb = sum(self._live.values())
        if ledger_kb != self._disk.live_kb:
            self._violate(
                f"ledger says {ledger_kb} KB live, disk says "
                f"{self._disk.live_kb} KB"
            )
        if len(self._live) != self._disk.live_extents:
            self._violate(
                f"ledger says {len(self._live)} live files, disk says "
                f"{self._disk.live_extents} extents"
            )


class TrimBoundChecker(InvariantChecker):
    """After each trim pass, surviving trimmable files meet the bound.

    Algorithm 2 removes a compaction-buffer file when fewer than
    ``trim_threshold`` of its blocks are cache-resident, so immediately
    after a pass every file the pass could have considered must sit at
    or above the threshold.  On engines without a compaction buffer the
    checker never sees a TrimRun and stays trivially green.
    """

    name = "trim-bound"

    def __init__(self, engine, cache, config, bus) -> None:
        super().__init__()
        self._engine = engine
        self._cache = cache
        self._threshold = config.trim_threshold
        self.trim_runs = 0
        bus.subscribe(TrimRun, self._on_trim)

    def _on_trim(self, event: TrimRun) -> None:
        self.trim_runs += 1
        engine = unwrap(self._engine)
        buffer_levels = getattr(engine, "buffer", None)
        if buffer_levels is None or self._cache is None:
            return
        for level in buffer_levels[1:]:
            for table in level.trimmable_tables():
                for file in table:
                    if file.removed:
                        continue
                    self.checked += 1
                    cached = self._cache.cached_blocks(file.file_id)
                    if cached / file.num_blocks < self._threshold:
                        self._violate(
                            f"after trim run {event.run_index}, file "
                            f"{file.file_id} kept with {cached}/"
                            f"{file.num_blocks} cached blocks "
                            f"(threshold {self._threshold})"
                        )


class BandwidthAttributionChecker(InvariantChecker):
    """Per-cause disk traffic sum-reconciles with the DiskStats totals.

    Every KB the disk counts in ``stats.seq_read_kb``/``seq_write_kb``
    lands in exactly one cause bucket, so the buckets must sum back to
    the totals; a gap means some code path records I/O outside
    ``background_read``/``background_write``/``foreground_sequential_read``.
    A nonzero "unattributed" bucket is also a violation: it means an
    engine issues I/O without naming its stream, which would silently
    corrupt the per-cause bandwidth breakdown the profiling layer reports.
    """

    name = "bandwidth-attribution"
    #: Tolerance for float accumulation drift over millions of adds.
    abs_tol_kb = 1e-6

    def __init__(self, disk) -> None:
        super().__init__()
        self._disk = disk

    def sweep(self) -> None:
        stats = self._disk.stats
        for kind, buckets, total in (
            ("read", self._disk.cause_read_kb, stats.seq_read_kb),
            ("write", self._disk.cause_write_kb, stats.seq_write_kb),
        ):
            self.checked += 1
            attributed = sum(buckets.values())
            if not math.isclose(
                attributed, total, rel_tol=1e-9, abs_tol=self.abs_tol_kb
            ):
                self._violate(
                    f"per-cause {kind} buckets sum to {attributed:.3f} KB "
                    f"but DiskStats counts {total:.3f} KB"
                )
            self.checked += 1
            loose = buckets.get("unattributed", 0.0)
            if loose > self.abs_tol_kb:
                self._violate(
                    f"{loose:.3f} KB of {kind} traffic is unattributed"
                )


def attach_checkers(setup) -> dict[str, InvariantChecker]:
    """Wire the standard checkers onto a built engine.

    ``setup`` is a :class:`repro.sim.experiment.ExperimentSetup`; the
    checkers subscribe to its substrate's bus, so they must be attached
    before the first operation (file events are not replayable).
    """
    bus = setup.substrate.bus
    disk = setup.disk
    checkers: dict[str, InvariantChecker] = {
        "ledger": LedgerChecker(disk, bus),
        "trim-bound": TrimBoundChecker(
            setup.engine, setup.db_cache, setup.config, bus
        ),
        "bandwidth-attribution": BandwidthAttributionChecker(disk),
    }
    if setup.db_cache is not None:
        checkers["cache-coherence"] = CacheCoherenceChecker(
            setup.engine, setup.db_cache, disk, bus
        )
    return checkers
