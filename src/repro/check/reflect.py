"""Engine-shape reflection: enumerate every live on-disk file.

The invariant checkers need one question answered for any of the eleven
variants: *which SSTable files does the engine currently consider live?*
Each engine family keeps its runs in a different shape (single sorted
runs per level, C/C' pairs, lists of tables, a flat store, plus LSbM's
compaction buffer), so the traversal lives here rather than leaking
isinstance chains into the checkers.
"""

from __future__ import annotations

from repro.core.lsbm import LSbMTree
from repro.errors import ReproError
from repro.lsm.blsm import BLSMTree
from repro.lsm.composed import ComposedTree
from repro.lsm.leveldb import LevelDBTree
from repro.lsm.sm_tree import SMTree
from repro.sstable.sstable import SSTableFile
from repro.variants.hbase import HBaseStyleStore
from repro.variants.kv_store import KVCachedBLSM


def unwrap(engine):
    """The underlying LSM engine (the K-V cached variant wraps one)."""
    if isinstance(engine, KVCachedBLSM):
        return engine.engine
    return engine


def live_files(engine) -> dict[int, SSTableFile]:
    """Map ``file_id`` to every file the engine can still read.

    Files carrying LSbM's removed marker are excluded — their blocks are
    gone and queries treat them as absent (Algorithm 3's fallback).
    """
    e = unwrap(engine)
    files: dict[int, SSTableFile] = {}

    def add(iterable) -> None:
        for file in iterable:
            if not file.removed:
                files[file.file_id] = file

    if isinstance(e, LSbMTree):
        add(e.c0_prime)
        for level in range(1, e.num_levels + 1):
            add(e.c[level])
            if level < e.num_levels:
                add(e.cp[level])
        for buffer_level in e.buffer[1:]:
            add(buffer_level.live_files())
    elif isinstance(e, BLSMTree):  # Covers the warm-up variant too.
        add(e.c0_prime)
        for level in range(1, e.num_levels + 1):
            add(e.c[level])
            if level < e.num_levels:
                add(e.cp[level])
    elif isinstance(e, LevelDBTree):
        for level in range(1, e.num_levels + 1):
            add(e.levels[level])
    elif isinstance(e, SMTree):
        for level in range(1, e.num_levels + 1):
            for table in e.levels[level]:
                add(table)
    elif isinstance(e, ComposedTree):
        for level in range(1, e.num_levels + 1):
            for table in e.levels[level]:
                add(table)
        for buffer_level in e._buffer_levels:
            add(buffer_level.live_files())
    elif isinstance(e, HBaseStyleStore):
        for table in e.tables:
            add(table)
    else:
        raise ReproError(f"unknown engine shape: {type(e).__name__}")
    return files
