"""Crash/recovery fault injection.

Crash points are instrumented instants inside the storage layer
(:mod:`repro.storage.disk`) and the write-ahead log
(:mod:`repro.lsm.wal`): each calls its ``fault_hook`` with a point name,
and an armed :class:`FaultInjector` raises :class:`SimulatedCrash` on
the Nth hit — killing the process mid-flush, mid-compaction, or mid-log
append.

Verification uses deterministic replay instead of state snapshots.  The
whole simulation is a pure function of the schedule, so the state a
crashed process left on "disk" is reconstructed by replaying the
schedule prefix into a fresh engine; the durable artifact that survives
the crash — the WAL tail captured at the crash instant — is spliced in
with :meth:`~repro.lsm.wal.WriteAheadLog.restore_records`; then the
normal ``simulate_crash()`` + ``recover()`` path runs.  The recovered
state must equal the oracle's at the crash point, with exactly one
degree of freedom: the in-flight write is applied iff its log record
became durable before the crash (prefix consistency — anything else is
either lost-data or time-travel).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.check.oracle import KVOracle
from repro.check.reflect import unwrap
from repro.check.schedule import Op, ScheduleSpec, apply_op, generate_schedule
from repro.config import SystemConfig
from repro.sim.experiment import build_engine
from repro.sstable.entry import value_for

#: Every registered crash point, in rough write-path order.
CRASH_POINTS = (
    "wal.append.before",
    "wal.append.after",
    "disk.allocate",
    "disk.background_read",
    "disk.background_write",
    "disk.free",
)


class SimulatedCrash(RuntimeError):
    """Raised by an armed injector to kill the process at a crash point."""

    def __init__(self, point: str) -> None:
        super().__init__(f"simulated crash at {point}")
        self.point = point


class FaultInjector:
    """A one-shot fault: crash on the ``hits``-th visit to ``point``."""

    def __init__(self, point: str, hits: int = 1) -> None:
        if hits < 1:
            raise ValueError(f"hits must be >= 1, got {hits}")
        self.point = point
        self.remaining = hits
        self.fired = False

    def __call__(self, point: str) -> None:
        if self.fired or point != self.point:
            return
        self.remaining -= 1
        if self.remaining <= 0:
            self.fired = True
            raise SimulatedCrash(point)


def attach_injector(engine, injector: FaultInjector) -> None:
    """Install ``injector`` as the fault hook of an engine's disk and WAL."""
    inner = unwrap(engine)
    inner.disk.fault_hook = injector
    if inner.wal is not None:
        inner.wal.fault_hook = injector


@dataclass
class CrashOutcome:
    """Verdict of one (engine, crash point, hit count) experiment."""

    engine: str
    point: str
    hits: int
    seed: int
    fired: bool
    crash_op: int | None
    consistent: bool
    detail: str

    def to_json_dict(self) -> dict:
        return {
            "engine": self.engine,
            "point": self.point,
            "hits": self.hits,
            "seed": self.seed,
            "fired": self.fired,
            "crash_op": self.crash_op,
            "consistent": self.consistent,
            "detail": self.detail,
        }


class CrashRecoveryHarness:
    """Inject crashes into one engine's schedule and verify recovery."""

    def __init__(
        self,
        engine_name: str,
        spec: ScheduleSpec,
        config: SystemConfig | None = None,
    ) -> None:
        self.engine_name = engine_name
        self.spec = spec
        base = config if config is not None else SystemConfig.tiny()
        # Recovery without a log has nothing to replay; the harness only
        # makes sense for WAL-backed configurations.
        self.config = (
            base if base.wal_enabled else base.replace(wal_enabled=True)
        )

    # ------------------------------------------------------------------
    # One experiment.
    # ------------------------------------------------------------------
    def run_point(self, point: str, hits: int = 1) -> CrashOutcome:
        schedule = generate_schedule(self.spec)

        # Pass 1: run until the armed fault kills the process.
        setup = build_engine(self.engine_name, self.config)
        injector = FaultInjector(point, hits)
        attach_injector(setup.engine, injector)
        crash_op: int | None = None
        inflight: Op | None = None
        for index, op in enumerate(schedule):
            try:
                apply_op(setup.engine, setup.clock, op)
            except SimulatedCrash:
                crash_op = index
                inflight = op
                break
        if crash_op is None or inflight is None:
            return CrashOutcome(
                self.engine_name,
                point,
                hits,
                self.spec.seed,
                fired=False,
                crash_op=None,
                consistent=True,
                detail="crash point never reached by this schedule",
            )
        # The durable log image the crashed process left behind.
        captured = unwrap(setup.engine).wal.replay()

        # Pass 2: reconstruct the pre-crash on-disk state by replaying
        # the schedule prefix, then splice in the captured log and
        # recover.
        setup2 = build_engine(self.engine_name, self.config)
        oracle = KVOracle()
        for op in schedule[:crash_op]:
            result = apply_op(setup2.engine, setup2.clock, op)
            if op.name == "put":
                oracle.put(op.key, result)
            elif op.name == "delete":
                oracle.delete(op.key)
        pre_seq = setup2.engine.last_seq
        unwrap(setup2.engine).wal.restore_records(captured)
        setup2.engine.simulate_crash()
        setup2.engine.recover()

        return self._verify(
            setup2, oracle, inflight, captured, pre_seq, crash_op, point, hits
        )

    def _verify(
        self, setup, oracle, inflight, captured, pre_seq, crash_op, point, hits
    ) -> CrashOutcome:
        got = {
            e.key: e.value()
            for e in setup.engine.scan(0, self.spec.key_space).entries
        }
        expected = oracle.as_dict()
        # Prefix consistency: the in-flight write is recovered iff its
        # log record was durable at the crash instant — never partially,
        # never speculatively.
        if inflight.name in ("put", "delete") and any(
            r.seq > pre_seq for r in captured
        ):
            if inflight.name == "put":
                expected[inflight.key] = value_for(inflight.key, pre_seq + 1)
            else:
                expected.pop(inflight.key, None)
            required = "with the durable in-flight write applied"
        else:
            required = "with the in-flight write absent"

        if got == expected:
            return CrashOutcome(
                self.engine_name,
                point,
                hits,
                self.spec.seed,
                fired=True,
                crash_op=crash_op,
                consistent=True,
                detail=f"recovered state matches oracle {required}",
            )
        missing = sorted(set(expected) - set(got))[:5]
        phantom = sorted(set(got) - set(expected))[:5]
        wrong = sorted(
            k for k in set(got) & set(expected) if got[k] != expected[k]
        )[:5]
        return CrashOutcome(
            self.engine_name,
            point,
            hits,
            self.spec.seed,
            fired=True,
            crash_op=crash_op,
            consistent=False,
            detail=(
                f"crash at op {crash_op} ({inflight.describe()}): expected "
                f"oracle state {required}; missing keys {missing}, phantom "
                f"keys {phantom}, wrong values at {wrong}"
            ),
        )

    # ------------------------------------------------------------------
    # Sweeps.
    # ------------------------------------------------------------------
    def run_all(self, hits_list: tuple[int, ...] = (1,)) -> list[CrashOutcome]:
        return [
            self.run_point(point, hits)
            for point in CRASH_POINTS
            for hits in hits_list
        ]
