"""A monotonic virtual clock shared by the whole simulation.

The paper's experiments run for 20,000 wall-clock seconds; we replace wall
time with this clock.  One clock tick is one virtual second.  The driver
advances the clock; every other subsystem (disk bandwidth ledger, trim
scheduler, metric sampler) only reads it, which keeps time flow in exactly
one place and makes runs deterministic.
"""

from __future__ import annotations


class VirtualClock:
    """Integer-second simulated time.

    The clock only moves forward.  ``now`` is the current virtual second,
    starting at 0.
    """

    def __init__(self) -> None:
        self._now = 0

    @property
    def now(self) -> int:
        """The current virtual second."""
        return self._now

    def advance(self, seconds: int = 1) -> int:
        """Move time forward by ``seconds`` (>= 0) and return the new time."""
        if seconds < 0:
            raise ValueError(f"cannot move time backwards ({seconds=})")
        self._now += seconds
        return self._now

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._now})"
