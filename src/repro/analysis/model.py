"""Closed-form cost models from the paper's analysis sections.

Section II-B derives the compaction I/O of a balanced LSM-tree; Section V
derives how many extra sorted tables LSbM's compaction buffer adds to a
point lookup.  These analytic forms are used two ways:

* tests cross-check the simulator's measured write traffic against them
  (they must agree within the model's assumptions), and
* the size-ratio ablation bench reports model-vs-measured side by side.
"""

from __future__ import annotations

from repro.config import SystemConfig


def merge_cost_per_chunk(size_ratio: int) -> float:
    """Average I/O operations to push one chunk of data down one level.

    Section II-B: during one merge round the j-th sorted table of ``Ci``
    merges with ``j - 1`` chunks already in ``Ci+1``; averaging gives
    ``(r - 1) / 2`` chunk merges plus the chunk's own write:
    ``1 + (r - 1) / 2 = (r + 1) / 2``.
    """
    return (size_ratio + 1) / 2


def total_write_rate(size_ratio: int, num_levels: int, insert_rate: float) -> float:
    """Total disk write rate of a k-level balanced LSM-tree.

    Section II-B: ``(r + 1) / 2 * k * w0``.
    """
    return merge_cost_per_chunk(size_ratio) * num_levels * insert_rate


def write_amplification(size_ratio: int, num_levels: int) -> float:
    """Bytes written to disk per byte inserted (steady state)."""
    return merge_cost_per_chunk(size_ratio) * num_levels


def expected_extra_tables_per_lookup(size_ratio: int) -> float:
    """Extra sorted tables a point lookup checks in LSbM (Section V).

    A compaction buffer list holds between 0 and ``r`` sorted tables —
    ``r/2`` on average — and the target key is found on average halfway
    through them, so the expected number of additional tables checked is
    about ``r/4``.
    """
    return size_ratio / 4

def compaction_io_per_file(config: SystemConfig) -> float:
    """I/O operations to compact one file-sized chunk down one level.

    Section IV-C: compacting ``S`` data from level ``i`` to ``i+1`` with
    file size ``s`` needs up to ``(r + 1) * S / s`` input operations and
    the same number of output operations.
    """
    return float(config.size_ratio + 1)


def incremental_warmup_amplification(
    size_ratio: int, num_levels: int, level: int
) -> float:
    """Blocks loaded by one warmed read of level ``level`` (Section VI-C).

    "one read operation on level i will load as many as (r+1)^(k-i)
    blocks into buffer cache" once its block cascades down the tree.
    """
    return float((size_ratio + 1) ** (num_levels - level))
