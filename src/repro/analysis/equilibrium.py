"""Steady-state read-throughput equilibrium under cache invalidation.

The evaluation's central feedback loop can be written in closed form.
``T`` reader thread-seconds per second are spent on reads; a read costs
``hit_cost`` when served from the buffer cache and ``miss_cost`` from
disk; misses come from two sources — a fixed *cold* fraction ``c`` of
reads outside the cached working set, and the re-reads of the ``I``
blocks per second that compactions invalidate (each invalidated block
must be reloaded exactly once, provided the read rate revisits blocks
faster than they are churned).  At equilibrium::

    R = T / (hit_cost + m(R) * (miss_cost - hit_cost))
    m(R) = c + I / R

which solves linearly (substituting ``m·R = c·R + I``)::

    R = (T - I * (miss_cost - hit_cost)) / (hit_cost + c * (miss_cost - hit_cost))

The model explains the paper's Figure 9 quantitatively: plugging in
bLSM's invalidation rate reproduces its (0.81, 2440) operating point, and
setting ``I`` to the residual rate LSbM cannot avoid (the frozen last
level) reproduces its (0.95, 6899).  It also shows the cliff: when
``I * (miss_cost - hit_cost)`` approaches ``T``, the readers spend their
entire budget re-filling the cache and throughput collapses — the regime
SM-tree's range queries and the K-V cache hit in Figure 11.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EquilibriumInputs:
    """Parameters of the read/invalidation feedback loop."""

    reader_thread_seconds: float  # T: thread-seconds of reads per second.
    hit_cost_s: float  # Service time of a cache-served read.
    miss_cost_s: float  # Service time of a disk-served read.
    cold_fraction: float  # Reads outside the cacheable working set.
    invalidation_rate: float  # Blocks invalidated per second (I).

    def validate(self) -> None:
        if self.reader_thread_seconds <= 0:
            raise ValueError("reader budget must be positive")
        if not 0 < self.hit_cost_s <= self.miss_cost_s:
            raise ValueError("need 0 < hit cost <= miss cost")
        if not 0.0 <= self.cold_fraction < 1.0:
            raise ValueError("cold fraction must be in [0, 1)")
        if self.invalidation_rate < 0:
            raise ValueError("invalidation rate must be non-negative")


@dataclass(frozen=True)
class Equilibrium:
    """The solved operating point."""

    throughput_qps: float
    miss_fraction: float
    collapsed: bool  # True when invalidations exceed the read budget.

    @property
    def hit_ratio(self) -> float:
        return 1.0 - self.miss_fraction


def solve(inputs: EquilibriumInputs) -> Equilibrium:
    """Solve the feedback loop for the steady-state operating point."""
    inputs.validate()
    extra = inputs.miss_cost_s - inputs.hit_cost_s
    numerator = inputs.reader_thread_seconds - inputs.invalidation_rate * extra
    if numerator <= 0:
        # Re-filling invalidated blocks alone exceeds the read budget:
        # the cache cannot be sustained and reads degenerate to disk.
        rate = inputs.reader_thread_seconds / inputs.miss_cost_s
        return Equilibrium(
            throughput_qps=rate, miss_fraction=1.0, collapsed=True
        )
    denominator = inputs.hit_cost_s + inputs.cold_fraction * extra
    throughput = numerator / denominator
    miss_fraction = min(
        1.0, inputs.cold_fraction + inputs.invalidation_rate / throughput
    )
    return Equilibrium(
        throughput_qps=throughput,
        miss_fraction=miss_fraction,
        collapsed=False,
    )


def invalidation_rate_for(
    target_hit_ratio: float, inputs: EquilibriumInputs
) -> float:
    """Invert the model: the invalidation rate that yields a hit ratio.

    Useful for reading an invalidation budget off a measured hit-ratio
    target (e.g. "how much churn can we absorb and still hold 0.95?").
    """
    inputs.validate()
    if not 0.0 <= target_hit_ratio <= 1.0:
        raise ValueError("hit ratio must be in [0, 1]")
    miss = 1.0 - target_hit_ratio
    if miss < inputs.cold_fraction:
        raise ValueError("target beats the cold-read floor; unreachable")
    cost = inputs.hit_cost_s + miss * (inputs.miss_cost_s - inputs.hit_cost_s)
    throughput = inputs.reader_thread_seconds / cost
    return (miss - inputs.cold_fraction) * throughput
