"""Analytic cost models from the paper (Sections II-B, IV-C, V, VI-C)."""

from repro.analysis.model import (
    compaction_io_per_file,
    expected_extra_tables_per_lookup,
    incremental_warmup_amplification,
    merge_cost_per_chunk,
    total_write_rate,
    write_amplification,
)

__all__ = [
    "compaction_io_per_file",
    "expected_extra_tables_per_lookup",
    "incremental_warmup_amplification",
    "merge_cost_per_chunk",
    "total_write_rate",
    "write_amplification",
]

from repro.analysis.equilibrium import (  # noqa: E402
    Equilibrium,
    EquilibriumInputs,
    invalidation_rate_for,
    solve,
)

__all__ += [
    "Equilibrium",
    "EquilibriumInputs",
    "invalidation_rate_for",
    "solve",
]
