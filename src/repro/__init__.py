"""repro — a full reproduction of the LSbM-tree (ICDCS 2017).

LSbM-tree ("Log-Structured buffered-Merge tree", Teng et al.) re-enables
DB buffer caching under mixed read/write LSM workloads by keeping a small
on-disk *compaction buffer*: the input files of compactions are appended
to per-level buffer lists instead of being deleted, so the cached blocks
they back survive the merge that rewrote the same data inside the tree.

Public API tour
---------------
>>> from repro import SystemConfig, build_engine, preload
>>> setup = build_engine("lsbm", SystemConfig.paper_scaled(2048))
>>> preload(setup)
>>> _ = setup.engine.put(42)
>>> setup.engine.get(42).found
True

The package layout mirrors the system inventory in DESIGN.md:

* :mod:`repro.core` — the LSbM-tree itself (buffered merge, compaction
  buffer, trim process, Algorithms 1-4);
* :mod:`repro.lsm` — the from-scratch baselines: LevelDB-style leveled
  tree, bLSM gear scheduler, Stepped-Merge tree;
* :mod:`repro.variants` — the other compared solutions: K-V store cache,
  incremental warming up;
* :mod:`repro.sstable`, :mod:`repro.bloom` — blocks, files, super-files,
  sorted tables, Bloom filters;
* :mod:`repro.storage`, :mod:`repro.cache` — the simulated disk and the
  OS/DB/K-V caches;
* :mod:`repro.workload`, :mod:`repro.sim` — YCSB-style workloads and the
  mixed read/write measurement driver;
* :mod:`repro.obs`, :mod:`repro.substrate` — the observability core
  (metrics registry, event bus, JSONL traces) and the typed substrate
  every engine stack is built from;
* :mod:`repro.analysis` — the paper's closed-form cost models.
"""

from repro.config import SystemConfig
from repro.core.lsbm import LSbMTree
from repro.lsm.blsm import BLSMTree
from repro.lsm.leveldb import LevelDBTree
from repro.lsm.sm_tree import SMTree
from repro.obs.events import EventBus
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceRecorder
from repro.sim.driver import MixedReadWriteDriver
from repro.sim.experiment import (
    ENGINE_NAMES,
    ENGINE_SPECS,
    EngineSpec,
    build_engine,
    execute,
    preload,
    run_experiment,
)
from repro.sim.metrics import RunResult
from repro.sim.spec import ExperimentSpec
from repro.sim.sweep import SweepOutcome, expand_grid, run_sweep
from repro.substrate import Substrate
from repro.variants.kv_store import KVCachedBLSM
from repro.variants.warmup import WarmupBLSMTree
from repro.workload.ycsb import RangeHotWorkload

__version__ = "1.0.0"

__all__ = [
    "BLSMTree",
    "ENGINE_NAMES",
    "ENGINE_SPECS",
    "EngineSpec",
    "EventBus",
    "ExperimentSpec",
    "KVCachedBLSM",
    "LSbMTree",
    "LevelDBTree",
    "MetricsRegistry",
    "MixedReadWriteDriver",
    "RangeHotWorkload",
    "RunResult",
    "SMTree",
    "Substrate",
    "SweepOutcome",
    "SystemConfig",
    "TraceRecorder",
    "WarmupBLSMTree",
    "build_engine",
    "execute",
    "expand_grid",
    "preload",
    "run_experiment",
    "run_sweep",
]
