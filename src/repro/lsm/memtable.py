"""The in-memory write buffer C0.

New writes land here, sorted and deduplicated by key (a re-written key
replaces its older in-memory version, so the memtable's size is its count
of *unique* keys — matching how a skiplist memtable behaves).  When the
level-0 budget fills, the engine drains the memtable to disk.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.sstable.entry import Entry, Kind


class Memtable:
    """Sorted in-memory buffer of the newest version per key."""

    def __init__(self, pair_size_kb: int) -> None:
        self._pair_size_kb = pair_size_kb
        self._entries: dict[int, Entry] = {}

    def put(self, key: int, seq: int) -> None:
        self._entries[key] = Entry(key, seq, Kind.PUT)

    def delete(self, key: int, seq: int) -> None:
        """Record a tombstone for ``key``."""
        self._entries[key] = Entry(key, seq, Kind.DELETE)

    def get(self, key: int) -> Entry | None:
        return self._entries.get(key)

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    @property
    def size_kb(self) -> int:
        """Occupied size, in KB of key-value pairs."""
        return len(self._entries) * self._pair_size_kb

    def sorted_entries(self) -> list[Entry]:
        """All entries in key order (for a flush)."""
        return [self._entries[key] for key in sorted(self._entries)]

    def entries_in_range(self, low: int, high: int) -> list[Entry]:
        """Entries with ``low <= key <= high`` in key order."""
        keys = sorted(k for k in self._entries if low <= k <= high)
        return [self._entries[key] for key in keys]

    def clear(self) -> None:
        self._entries.clear()

    def __iter__(self) -> Iterator[Entry]:
        return iter(self.sorted_entries())
