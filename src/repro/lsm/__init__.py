"""LSM engines: shared base plus the paper's three baselines."""

from repro.lsm.base import (
    EngineStats,
    GetResult,
    LSMEngine,
    MergeOutcome,
    ReadCost,
    ScanResult,
)
from repro.lsm.blsm import BLSMTree
from repro.lsm.leveldb import LevelDBTree
from repro.lsm.memtable import Memtable
from repro.lsm.sm_tree import SMTree

__all__ = [
    "BLSMTree",
    "EngineStats",
    "GetResult",
    "LSMEngine",
    "LevelDBTree",
    "Memtable",
    "MergeOutcome",
    "ReadCost",
    "SMTree",
    "ScanResult",
]

from repro.lsm.wal import WriteAheadLog  # noqa: E402

__all__ += ["WriteAheadLog"]
