"""A LevelDB-style leveled LSM-tree (the paper's primary baseline).

Structure (Section VI-C, "LevelDB maintains only one sorted table at each
level"): each on-disk level is a single fully sorted run.  When the write
buffer fills it is flushed and merged into C1; when a level exceeds its
capacity, one file at a time is picked — round-robin through the key space
via a compaction cursor, as LevelDB does — and merged with the overlapping
files of the next level.  Every such merge rewrites the affected next-level
files at new disk locations, invalidating their cached blocks: the
compaction-induced cache invalidation of Fig. 1.
"""

from __future__ import annotations

from bisect import bisect_left

from repro.bloom.hashing import probe_mask
from repro.lsm.base import GetResult, LSMEngine, ReadCost, ScanResult
from repro.lsm.policy import LeveledCursorPolicy
from repro.sstable.block import _shared_filter
from repro.sstable.entry import Entry
from repro.sstable.iterator import merge_entries
from repro.sstable.sorted_table import SortedTable


class LevelDBTree(LSMEngine):
    """Leveled LSM-tree with one sorted run per on-disk level."""

    name = "leveldb"

    def __init__(
        self,
        config=None,
        clock=None,
        disk=None,
        db_cache=None,
        os_cache=None,
        *,
        substrate=None,
    ) -> None:
        super().__init__(
            config, clock, disk, db_cache, os_cache, substrate=substrate
        )
        self.num_levels = self.config.num_disk_levels
        #: levels[1..k]; index 0 is unused (C0 is the memtable).
        self.levels: list[SortedTable] = [
            SortedTable() for _ in range(self.num_levels + 1)
        ]
        #: LevelDB's design point; the policy owns the compaction cursor.
        self.policy = LeveledCursorPolicy(self.num_levels)

    # ------------------------------------------------------------------
    # Compactions (control flow in LeveledCursorPolicy; mechanism here).
    # ------------------------------------------------------------------
    def run_compactions(self) -> None:
        # Fast path: a pass only ever starts from a full memtable (the
        # per-level drains the policy runs always complete inside the
        # same pass), stalls share that threshold, and the WAL-truncate
        # marker is only non-zero inside a pass — so below S0 this is a
        # no-op.
        if (
            self.memtable.size_kb < self.memtable_budget_kb
            and not self._pending_wal_truncate_seq
        ):
            return
        super().run_compactions()

    def _flush_and_merge_into_c1(self) -> None:
        """Drain C0 to disk and merge the run into C1 file by file."""
        run_files = self._flush_memtable_to_files()
        last = self.num_levels == 1
        for file in run_files:
            self._merge_into_run([file], self.levels[1], last_level=last, level=0)

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    def get(self, key: int) -> GetResult:
        if self._closed:
            self._check_open()
        self.stats.gets += 1
        cost = ReadCost()
        cost.memtable_probes += 1
        entry = self.memtable.get(key)
        if entry is not None:
            return self._make_entry_result(entry, cost)
        # Inlined ``_search_table`` descent over levels 1..k with the
        # probe counters accumulated in locals (flushed to ``cost``
        # before any state-bearing step and at every exit) — identical
        # accounting without a method call per level.  The level tables
        # are only ever mutated in place, so indexing ``self.levels``
        # per level is the sole per-read structure access.
        levels = self.levels
        tables_checked = 0
        index_probes = 0
        bloom_probes = 0
        for level in range(1, self.num_levels + 1):
            table = levels[level]
            tables_checked += 1
            max_keys = table._max_keys
            position = bisect_left(max_keys, key)
            if position == len(max_keys):
                continue
            file = table._files[position]
            if file.min_key > key:  # bisect guarantees key <= file.max_key.
                continue
            index_probes += 1
            if file.removed:
                file._check_not_removed()
            block_keys = file._block_max_keys
            position = bisect_left(block_keys, key)
            if position == len(block_keys):
                continue
            block = file._blocks[position]
            if block.min_key > key:
                continue
            bloom_probes += 1
            bloom = block._bloom
            if bloom is None:
                bloom = block._bloom = _shared_filter(
                    tuple(block._keys), block._bits_per_key
                )
            mask = probe_mask(key, bloom._num_bits, bloom._num_hashes)
            if bloom._bits & mask != mask:
                continue
            cost.tables_checked += tables_checked
            cost.index_probes += index_probes
            cost.bloom_probes += bloom_probes
            tables_checked = 0
            index_probes = 0
            bloom_probes = 0
            self._read_block(file, block, cost)
            entry = block.get(key)
            if entry is None:
                cost.false_positive_blocks += 1
                continue
            return self._make_entry_result(entry, cost)
        cost.tables_checked += tables_checked
        cost.index_probes += index_probes
        cost.bloom_probes += bloom_probes
        return GetResult(False, None, cost)

    def scan(self, low: int, high: int) -> ScanResult:
        self._check_open()
        self.stats.scans += 1
        cost = ReadCost()
        sources: list[list[Entry]] = [self.memtable.entries_in_range(low, high)]
        for level in range(1, self.num_levels + 1):
            files = self.levels[level].files_overlapping(low, high)
            if not files:
                continue
            cost.tables_checked += 1
            sources.extend(self._scan_table_files(files, low, high, cost))
        entries = [
            e for e in merge_entries(sources) if not e.is_tombstone  # type: ignore[arg-type]
        ]
        return ScanResult(entries, cost)

    # ------------------------------------------------------------------
    # Bulk loading.
    # ------------------------------------------------------------------
    def bulk_load(self, entries: list[Entry]) -> None:
        """Preload sorted unique entries directly into the last level."""
        files = self.builder.build(iter(entries), cause="preload")
        for file in files:
            self.levels[self.num_levels].append(file)
        self._seq = max(self._seq, max((e.seq for e in entries), default=0))
