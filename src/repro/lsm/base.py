"""Shared machinery for every LSM engine in the reproduction.

All engines — LevelDB, bLSM, SM-tree and LSbM — are built over the same
typed :class:`~repro.substrate.Substrate` (simulated disk, DB and/or OS
buffer cache, configuration, metrics registry, event bus) and share the
same *costed* read primitives: every query returns not just its answer but
a :class:`ReadCost` describing the operation's shape (cache hits, random
disk blocks, sequential runs, Bloom probes).  The simulation driver
converts that shape into modeled service time; the engines themselves stay
purely logical.

Every structural state transition — flush, compaction, file creation and
discard — is published on the substrate's event bus (see
:mod:`repro.obs.events`), so observers can follow compaction behaviour
between the driver's per-second samples.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from bisect import bisect_left
from dataclasses import dataclass, field

from repro.cache.db_cache import DBBufferCache
from repro.cache.os_cache import OSBufferCache
from repro.config import SystemConfig
from repro.errors import EngineError
from repro.lsm.memtable import Memtable
from repro.lsm.policy import CompactionAxes, CompactionPolicy
from repro.lsm.wal import WriteAheadLog
from repro.obs.events import (
    CompactionEnd,
    CompactionStart,
    FileDiscarded,
    FlushDone,
    MemtableResized,
)
from repro.sstable.entry import Kind
from repro.bloom.hashing import probe_mask
from repro.clock import VirtualClock
from repro.sstable.block import Block, _shared_filter
from repro.sstable.builder import TableBuilder
from repro.sstable.entry import Entry
from repro.sstable.iterator import merge_with_obsolete_count
from repro.sstable.sorted_table import SortedTable
from repro.sstable.sstable import FileIdSource, SSTableFile
from repro.sstable.superfile import SuperFileIdSource
from repro.substrate import Substrate


def compaction_cause(level: int) -> str:
    """The bandwidth-attribution cause of a compaction at ``level``.

    ``compaction:L2`` for a source level, bare ``compaction`` when the
    engine has no levels (flat stores pass -1).
    """
    return f"compaction:L{level}" if level >= 0 else "compaction"


@dataclass(slots=True)
class ReadCost:
    """The I/O shape of one query (the driver prices it)."""

    memtable_probes: int = 0
    index_probes: int = 0
    bloom_probes: int = 0
    cache_hit_blocks: int = 0
    os_hit_blocks: int = 0
    disk_random_blocks: int = 0
    seq_runs: int = 0
    seq_kb: float = 0.0
    false_positive_blocks: int = 0
    tables_checked: int = 0

    def merge(self, other: "ReadCost") -> None:
        self.memtable_probes += other.memtable_probes
        self.index_probes += other.index_probes
        self.bloom_probes += other.bloom_probes
        self.cache_hit_blocks += other.cache_hit_blocks
        self.os_hit_blocks += other.os_hit_blocks
        self.disk_random_blocks += other.disk_random_blocks
        self.seq_runs += other.seq_runs
        self.seq_kb += other.seq_kb
        self.false_positive_blocks += other.false_positive_blocks
        self.tables_checked += other.tables_checked

    @property
    def block_reads(self) -> int:
        return self.cache_hit_blocks + self.os_hit_blocks + self.disk_random_blocks

    @property
    def cache_hit_ratio(self) -> float:
        """Block-level hit ratio of this single operation."""
        total = self.block_reads
        if not total:
            return 1.0  # Served entirely from memory structures.
        return self.cache_hit_blocks / total


class GetResult:
    """Outcome of a point lookup.

    ``value`` materializes lazily from the matched entry: the simulation
    kernel prices reads by ``cost`` alone and never reads the payload, so
    hit lookups skip building the value string until a caller (tests, the
    differential checker, the service layer) actually asks for it.
    """

    __slots__ = ("found", "cost", "_value", "_entry")

    def __init__(
        self,
        found: bool,
        value: str | None,
        cost: ReadCost,
        _entry: Entry | None = None,
    ) -> None:
        self.found = found
        self.cost = cost
        self._value = value
        self._entry = _entry

    @property
    def value(self) -> str | None:
        entry = self._entry
        if entry is not None:
            self._value = entry.value()
            self._entry = None
        return self._value

    def __repr__(self) -> str:
        return (
            f"GetResult(found={self.found}, value={self.value!r}, "
            f"cost={self.cost!r})"
        )


@dataclass(slots=True)
class ScanResult:
    """Outcome of a range query."""

    entries: list[Entry]
    cost: ReadCost


@dataclass
class EngineStats:
    """Cumulative engine-side counters."""

    puts: int = 0
    deletes: int = 0
    gets: int = 0
    scans: int = 0
    flushes: int = 0
    compactions: int = 0
    compaction_read_kb: float = 0.0
    compaction_write_kb: float = 0.0
    obsolete_entries_dropped: int = 0
    #: Cumulative virtual seconds writers spent blocked on a full write
    #: buffer (see :meth:`LSMEngine.run_compactions`); the single source
    #: both admission control and reports read write-stall pressure from.
    stall_seconds: float = 0.0


@dataclass
class MergeOutcome:
    """What one compaction step produced."""

    new_files: list[SSTableFile] = field(default_factory=list)
    obsolete_entries: int = 0
    read_kb: float = 0.0
    write_kb: float = 0.0


class LSMEngine(ABC):
    """Abstract base of all engines: substrate wiring + costed reads."""

    #: Human-readable engine name, overridden by subclasses.
    name = "lsm"

    def __init__(
        self,
        config: SystemConfig | None = None,
        clock: VirtualClock | None = None,
        disk=None,
        db_cache: DBBufferCache | None = None,
        os_cache: OSBufferCache | None = None,
        *,
        substrate: Substrate | None = None,
    ) -> None:
        """Wire the engine over ``substrate``.

        Callers either pass a ready :class:`~repro.substrate.Substrate`
        (the :mod:`repro.sim.experiment` path) or the loose
        ``(config, clock, disk, caches)`` pieces, from which a substrate —
        with its own registry and event bus — is assembled here.
        """
        if substrate is None:
            if config is None or clock is None or disk is None:
                raise EngineError(
                    "engine construction requires a Substrate or "
                    "(config, clock, disk)"
                )
            substrate = Substrate(
                config=config,
                clock=clock,
                disk=disk,
                db_cache=db_cache,
                os_cache=os_cache,
            )
        self.substrate = substrate
        self.config = substrate.config
        self.clock = substrate.clock
        self.disk = substrate.disk
        self.db_cache = substrate.db_cache
        self.os_cache = substrate.os_cache
        self.registry = substrate.registry
        self.bus = substrate.bus
        self.file_ids = FileIdSource()
        self.superfile_ids = SuperFileIdSource()
        self.builder = TableBuilder(
            self.config, self.disk, self.file_ids, self.superfile_ids, self.bus
        )
        self.memtable = Memtable(self.config.pair_size_kb)
        self.wal: WriteAheadLog | None = (
            WriteAheadLog(self.disk, self.config.pair_size_kb)
            if self.config.wal_enabled
            else None
        )
        self.stats = EngineStats()
        self._m_flushes = self.registry.counter("engine.flushes")
        self._m_compactions = self.registry.counter("engine.compactions")
        self._m_compaction_read_kb = self.registry.counter(
            "engine.compaction_read_kb"
        )
        self._m_compaction_write_kb = self.registry.counter(
            "engine.compaction_write_kb"
        )
        self._m_stall_seconds = self.registry.counter("engine.stall_seconds")
        # Deferred publication: hot paths bump ``self.stats`` plain
        # attributes; the registry instruments are synced only when a
        # snapshot asks for them (see :meth:`_publish_metrics`).  Offsets
        # absorb whatever the counters held before this engine bound.
        self._m_offsets = (
            self._m_flushes.value,
            self._m_compactions.value,
            self._m_compaction_read_kb.value,
            self._m_compaction_write_kb.value,
            self._m_stall_seconds.value,
        )
        self.registry.register_flush(self._publish_metrics)
        #: Live write-buffer budget in KB: the bound level 0 is held to by
        #: the flush/gear triggers and the write-stall threshold.  Starts
        #: at (and without a runtime controller stays forever equal to)
        #: ``config.level0_size_kb``; the adaptive controller's memory
        #: actuator moves it via :meth:`set_memtable_budget`.
        self.memtable_budget_kb = self.config.level0_size_kb
        self._seq = 0
        #: Highest flushed seq whose WAL prefix still awaits truncation.
        #: Truncation is deferred to the end of the compaction pass so a
        #: crash anywhere inside the pass leaves the full tail durable.
        self._pending_wal_truncate_seq = 0
        self._closed = False

    # ------------------------------------------------------------------
    # The typed engine protocol the simulation driver consumes.
    # ------------------------------------------------------------------
    @property
    def metric_cache(self) -> DBBufferCache | OSBufferCache | None:
        """The cache whose hit ratio forms an experiment's reported series.

        The DB buffer cache when the stack has one, else the OS page
        cache, else ``None`` — the rule the driver previously implemented
        by duck-probing engine attributes.
        """
        if self.db_cache is not None:
            return self.db_cache
        return self.os_cache

    @property
    def compaction_buffer_kb(self) -> int | None:
        """Live on-disk size of the compaction buffer; ``None`` without one.

        Only LSbM maintains a compaction buffer; every other engine
        reports ``None`` so samplers can skip the series entirely.
        """
        return None

    @property
    def l0_pressure(self) -> float:
        """Write-buffer fullness as a fraction of ``S0``.

        At 1.0 the buffer is full and the next write blocks behind the
        drain; gear-scheduled engines override this to count the on-disk
        ``C0'`` half of level 0 as well.
        """
        return self.memtable.size_kb / self.memtable_budget_kb

    @property
    def write_stalled(self) -> bool:
        """True when the write buffer is full and writes would block."""
        return self.l0_pressure >= 1.0

    def set_memtable_budget(self, budget_kb: int) -> None:
        """Move the live write-buffer budget (runtime-controller actuator).

        A larger budget lets level 0 absorb bursts before the gear
        trigger fires (fewer write stalls, at the cost of memory that
        could cache reads); a smaller one flushes earlier.  Floored at
        one file so a flush can always materialize.  Publishes
        :class:`~repro.obs.events.MemtableResized` when the budget
        actually moves.
        """
        budget_kb = max(int(budget_kb), self.config.file_size_kb)
        old = self.memtable_budget_kb
        if budget_kb == old:
            return
        self.memtable_budget_kb = budget_kb
        bus = self.bus
        if bus.active:
            if bus.counting_only:
                bus.count(MemtableResized)
            else:
                bus.emit(MemtableResized(old_kb=old, new_kb=budget_kb))

    # ------------------------------------------------------------------
    # Write path (shared).
    # ------------------------------------------------------------------
    def put(self, key: int) -> int:
        """Insert/overwrite ``key``; returns the assigned sequence number."""
        if self._closed:
            self._check_open()
        self._seq += 1
        if self.wal is not None:
            self.wal.append(key, self._seq, Kind.PUT)
        self.memtable.put(key, self._seq)
        self.stats.puts += 1
        self._maybe_schedule_compactions()
        return self._seq

    def delete(self, key: int) -> int:
        """Delete ``key`` (writes a tombstone)."""
        self._check_open()
        self._seq += 1
        if self.wal is not None:
            self.wal.append(key, self._seq, Kind.DELETE)
        self.memtable.delete(key, self._seq)
        self.stats.deletes += 1
        self._maybe_schedule_compactions()
        return self._seq

    def _maybe_schedule_compactions(self) -> None:
        """Run compaction work if the write buffer demands it.

        The default couples compactions directly to writes (the gear
        principle); engines with different trigger rules override this.
        """
        self.run_compactions()

    def adopt_entries(self, entries: list[Entry]) -> int:
        """Ingest entries from another engine, keeping their seqs.

        The receiving half of a live shard split: the source shard's
        newest live versions (from a range scan) enter through the normal
        write path — WAL first, then memtable — except that each entry
        keeps the sequence number the *source* assigned it, so values
        (``value_for(key, seq)``) survive the move byte-for-byte.  The
        local seq counter is bumped past the adopted maximum so writes
        dispatched here afterwards always win the merge.  Returns the
        number of entries adopted.
        """
        self._check_open()
        for entry in entries:
            if self.wal is not None:
                self.wal.append(entry.key, entry.seq, entry.kind)
            if entry.is_tombstone:
                self.memtable.delete(entry.key, entry.seq)
            else:
                self.memtable.put(entry.key, entry.seq)
            if entry.seq > self._seq:
                self._seq = entry.seq
        self._maybe_schedule_compactions()
        return len(entries)

    # ------------------------------------------------------------------
    # Abstract engine-specific behaviour.
    # ------------------------------------------------------------------
    @abstractmethod
    def get(self, key: int) -> GetResult:
        """Point lookup of the newest version of ``key``."""

    @abstractmethod
    def scan(self, low: int, high: int) -> ScanResult:
        """Range query over ``low <= key <= high`` (newest versions)."""

    def run_compactions(self) -> None:
        """Perform whatever compaction work current sizes demand.

        Concrete wrapper around the engine-specific
        :meth:`_do_compactions`: after the pass completes, the WAL prefix
        covering any data flushed during the pass is truncated.  Nothing
        is truncated mid-pass, so a crash at any point inside leaves a
        log that still covers every unflushed write (replay is idempotent
        — same key, same seq — even for records whose data did reach
        disk).

        When the pass starts with the write buffer at or over ``S0``
        (:attr:`write_stalled`), the writer that triggered it is blocked
        until the drain makes room — a *write stall*.  The pass's
        sequential device traffic at the background bandwidth is the
        modeled stall duration, accrued into ``stats.stall_seconds`` and
        the ``engine.stall_seconds`` counter so admission control, the
        driver's stall series and reports all read one source.
        """
        stalled = self.write_stalled
        if stalled:
            disk_stats = self.disk.stats
            before_kb = disk_stats.seq_read_kb + disk_stats.seq_write_kb
        self._do_compactions()
        if stalled:
            moved_kb = (
                disk_stats.seq_read_kb + disk_stats.seq_write_kb - before_kb
            )
            if moved_kb > 0:
                stall_s = moved_kb / self.config.seq_bandwidth_kb_per_s
                self.stats.stall_seconds += stall_s
        self._apply_pending_wal_truncate()

    #: The engine's :class:`~repro.lsm.policy.CompactionPolicy` — the
    #: declarative design-space point whose control flow drives this
    #: engine's compaction passes.  Every concrete engine assigns one in
    #: its constructor; the policy calls back into engine hooks for the
    #: mechanism (flush, merge, install, accounting).
    policy: CompactionPolicy | None = None

    def _do_compactions(self) -> None:
        """One compaction pass: delegate to the engine's policy."""
        policy = self.policy
        if policy is None:
            raise EngineError(
                f"{type(self).__name__} assigned no compaction policy"
            )
        policy.run(self)

    @property
    def compaction_axes(self) -> CompactionAxes | None:
        """The design-space point this engine realizes (None if unset)."""
        return self.policy.axes if self.policy is not None else None

    @abstractmethod
    def bulk_load(self, entries: list[Entry]) -> None:
        """Preload sorted unique entries directly into the last level."""

    def tick(self, now: int) -> None:
        """Once-per-virtual-second housekeeping hook."""
        self.run_compactions()

    @property
    def db_size_kb(self) -> int:
        """On-disk footprint (the paper's database-size metric)."""
        return self.disk.live_kb

    # ------------------------------------------------------------------
    # Costed read primitives (shared by every engine's query path).
    # ------------------------------------------------------------------
    def _read_block(self, file: SSTableFile, block: Block, cost: ReadCost) -> None:
        """Charge one block read through the configured cache hierarchy."""
        if self.db_cache is not None:
            if self.db_cache.access(file.file_id, block.index):
                cost.cache_hit_blocks += 1
                return
        if self.os_cache is not None:
            address = file.extent.start + block.index * self.config.block_size_kb
            if self.os_cache.read(address):
                # A page-cache hit: dearer than a DB-cache hit (syscall +
                # copy), far cheaper than the disk.
                cost.os_hit_blocks += 1
                return
        cost.disk_random_blocks += 1
        self.disk.foreground_random_read(1)

    def _probe_file(
        self, file: SSTableFile, key: int, cost: ReadCost
    ) -> Entry | None:
        """Index + Bloom + block read of one file; ``None`` if absent."""
        cost.index_probes += 1
        block = file.find_block(key)
        if block is None:
            return None
        cost.bloom_probes += 1
        if not block.may_contain(key):
            return None
        self._read_block(file, block, cost)
        entry = block.get(key)
        if entry is None:
            cost.false_positive_blocks += 1
        return entry

    def _search_table(
        self, table: SortedTable, key: int, cost: ReadCost
    ) -> Entry | None:
        """Point lookup in one sorted run (no removed-marker handling).

        This is the hottest chain under every engine's ``get`` (several
        calls per read), so the index walk and Bloom gate are fused here
        — the same steps as ``SortedTable.find_file`` +
        :meth:`_probe_file`, with identical cost accounting, minus the
        per-level method dispatch.
        """
        cost.tables_checked += 1
        max_keys = table._max_keys
        position = bisect_left(max_keys, key)
        if position == len(max_keys):
            return None
        file = table._files[position]
        if file.min_key > key:  # bisect guarantees key <= file.max_key.
            return None
        cost.index_probes += 1
        if file.removed:
            file._check_not_removed()
        block_keys = file._block_max_keys
        position = bisect_left(block_keys, key)
        if position == len(block_keys):
            return None
        block = file._blocks[position]
        if block.min_key > key:
            return None
        cost.bloom_probes += 1
        bloom = block._bloom
        if bloom is None:
            bloom = block._bloom = _shared_filter(
                tuple(block._keys), block._bits_per_key
            )
        mask = probe_mask(key, bloom._num_bits, bloom._num_hashes)
        if bloom._bits & mask != mask:
            return None
        self._read_block(file, block, cost)
        entry = block.get(key)
        if entry is None:
            cost.false_positive_blocks += 1
        return entry

    def _scan_file(
        self, file: SSTableFile, low: int, high: int, cost: ReadCost
    ) -> tuple[list[Entry], int]:
        """Read ``file``'s entries in range; returns (entries, uncached).

        Blocks are pulled through the cache; the caller aggregates the
        uncached blocks of one *sorted table* into a single sequential run
        (:meth:`_charge_scan_run`) — files of a run sit contiguously, so a
        range query pays one seek per sorted table touched, the cost model
        behind the paper's range-query analysis (Section III).
        """
        blocks = file.blocks_overlapping(low, high)
        if not blocks:
            return [], 0
        entries: list[Entry] = []
        uncached = 0
        for block in blocks:
            if self.db_cache is not None:
                if self.db_cache.access(file.file_id, block.index):
                    cost.cache_hit_blocks += 1
                else:
                    uncached += 1
            elif self.os_cache is not None:
                address = (
                    file.extent.start + block.index * self.config.block_size_kb
                )
                if self.os_cache.read(address):
                    cost.os_hit_blocks += 1
                else:
                    uncached += 1
            else:
                uncached += 1
            entries.extend(block.entries_in_range(low, high))
        return entries, uncached

    def _charge_scan_run(self, uncached_blocks: int, cost: ReadCost) -> None:
        """Charge one sorted table's uncached scan blocks: 1 seek + stream."""
        if uncached_blocks <= 0:
            return
        cost.seq_runs += 1
        size_kb = uncached_blocks * self.config.block_size_kb
        cost.seq_kb += size_kb
        self.disk.foreground_sequential_read(size_kb, seeks=1)

    def _scan_table_files(
        self,
        files: list[SSTableFile],
        low: int,
        high: int,
        cost: ReadCost,
    ) -> list[list[Entry]]:
        """Scan one sorted table's overlapping files as a single disk run."""
        sources: list[list[Entry]] = []
        uncached_total = 0
        for file in files:
            entries, uncached = self._scan_file(file, low, high, cost)
            uncached_total += uncached
            if entries:
                sources.append(entries)
        self._charge_scan_run(uncached_total, cost)
        return sources

    # ------------------------------------------------------------------
    # Compaction primitives (shared).
    # ------------------------------------------------------------------
    def _merge_into_run(
        self,
        source_files: list[SSTableFile],
        target: SortedTable,
        last_level: bool,
        dispose_sources: bool = True,
        level: int = -1,
    ) -> MergeOutcome:
        """Merge ``source_files`` into the sorted run ``target``.

        The overlapping target files are read, merged with the sources
        (newest version wins, tombstones dropped at the last level), and
        replaced by freshly built files.  Inputs are charged as sequential
        compaction reads; the builder charges the writes.  Sources are
        disposed (extent freed, cached blocks invalidated) unless the
        caller takes ownership — LSbM's buffered merge passes
        ``dispose_sources=False`` and appends them to the compaction
        buffer instead, which is the paper's zero-extra-I/O trick.
        """
        if not source_files:
            raise EngineError("merge requires at least one source file")
        low = min(f.min_key for f in source_files)
        high = max(f.max_key for f in source_files)
        overlapping = target.files_overlapping(low, high)

        read_kb = float(
            sum(f.size_kb for f in source_files)
            + sum(f.size_kb for f in overlapping)
        )
        bus = self.bus
        if bus.active:
            if bus.counting_only:
                bus.count(CompactionStart)
            else:
                bus.emit(
                    CompactionStart(
                        level=level,
                        input_files=len(source_files) + len(overlapping),
                        input_kb=read_kb,
                    )
                )

        sources: list[list[Entry]] = [f.entry_list() for f in source_files]
        sources.extend(f.entry_list() for f in overlapping)
        merged, obsolete = merge_with_obsolete_count(
            sources, drop_tombstones=last_level
        )

        cause = compaction_cause(level)
        self._charge_compaction_read(source_files + overlapping, cause=cause)

        new_files = self.builder.build(iter(merged), cause=cause)
        self._on_compaction_output(new_files)
        write_kb = float(sum(f.size_kb for f in new_files))

        dying = (list(source_files) if dispose_sources else []) + overlapping
        self._pre_install_hook(dying, new_files)
        target.replace_range(overlapping, new_files)
        for file in overlapping:
            self._discard_file(file)
        if dispose_sources:
            for file in source_files:
                self._discard_file(file)

        self._account_compaction(read_kb, write_kb, obsolete)
        if bus.active:
            if bus.counting_only:
                bus.count(CompactionEnd)
            else:
                bus.emit(
                    CompactionEnd(
                        level=level,
                        read_kb=read_kb,
                        write_kb=write_kb,
                        output_files=len(new_files),
                        obsolete_entries=obsolete,
                    )
                )
        return MergeOutcome(
            new_files=new_files,
            obsolete_entries=obsolete,
            read_kb=read_kb,
            write_kb=write_kb,
        )

    def _account_compaction(
        self, read_kb: float, write_kb: float, obsolete: int
    ) -> None:
        """Book one finished compaction into the stats and the registry."""
        stats = self.stats
        stats.compactions += 1
        stats.compaction_read_kb += read_kb
        stats.compaction_write_kb += write_kb
        stats.obsolete_entries_dropped += obsolete

    def _publish_metrics(self) -> None:
        """Copy the engine counters into the registry instruments."""
        stats = self.stats
        flushes, compactions, read_kb, write_kb, stall_s = self._m_offsets
        self._m_flushes.value = flushes + stats.flushes
        self._m_compactions.value = compactions + stats.compactions
        self._m_compaction_read_kb.value = read_kb + stats.compaction_read_kb
        self._m_compaction_write_kb.value = write_kb + stats.compaction_write_kb
        self._m_stall_seconds.value = stall_s + stats.stall_seconds

    def _pre_install_hook(
        self, old_files: list[SSTableFile], new_files: list[SSTableFile]
    ) -> None:
        """Subclass hook invoked before a compaction's install step.

        The incremental-warming-up variant overrides this to transplant
        cache residency from the dying files onto the new ones.
        """

    def _on_compaction_output(self, new_files: list[SSTableFile]) -> None:
        """Subclass hook for freshly written compaction output files."""
        if self.os_cache is not None:
            for file in new_files:
                self.os_cache.write_allocate(file.extent.start, file.size_kb)

    def _charge_compaction_read(
        self, files: list[SSTableFile], cause: str = "unattributed"
    ) -> None:
        for file in files:
            self.disk.background_read(file.size_kb, cause=cause)
            if self.os_cache is not None:
                self.os_cache.read_for_compaction(file.extent.start, file.size_kb)

    def _discard_file(self, file: SSTableFile) -> None:
        """Delete a file: free its extent, invalidate its cached blocks."""
        if self.db_cache is not None:
            self.db_cache.invalidate_file(file.file_id)
        self.disk.free(file.extent)
        bus = self.bus
        if bus.active:
            if bus.counting_only:
                bus.count(FileDiscarded)
            else:
                bus.emit(
                    FileDiscarded(file_id=file.file_id, size_kb=file.size_kb)
                )

    def _flush_memtable_to_files(self) -> list[SSTableFile]:
        """Write the memtable out as on-disk files (charged sequentially).

        Files are built *before* the memtable is cleared, and the WAL
        prefix is only marked for truncation — the actual truncate runs
        at the end of the enclosing compaction pass (see
        :meth:`run_compactions`), so a crash mid-flush or mid-compaction
        never loses the log records of data whose files were not yet
        durable.
        """
        entries = self.memtable.sorted_entries()
        files = self.builder.build(iter(entries), cause="flush")
        self._on_compaction_output(files)
        self.memtable.clear()
        if self.wal is not None and entries:
            self._pending_wal_truncate_seq = max(
                self._pending_wal_truncate_seq, max(e.seq for e in entries)
            )
        self.stats.flushes += 1
        bus = self.bus
        if bus.active:
            if bus.counting_only:
                bus.count(FlushDone)
            else:
                bus.emit(
                    FlushDone(
                        entries=len(entries),
                        files=len(files),
                        size_kb=float(sum(f.size_kb for f in files)),
                    )
                )
        return files

    def _apply_pending_wal_truncate(self) -> None:
        """Truncate the WAL prefix of data flushed this compaction pass."""
        if self.wal is not None and self._pending_wal_truncate_seq:
            self.wal.truncate_through(self._pending_wal_truncate_seq)
            self._pending_wal_truncate_seq = 0

    # ------------------------------------------------------------------
    # Crash simulation and recovery (WAL-backed engines only).
    # ------------------------------------------------------------------
    def simulate_crash(self) -> int:
        """Drop the volatile memtable, as a process crash would.

        Returns how many in-memory entries were lost from the memtable's
        point of view; with the WAL enabled, :meth:`recover` gets every
        one of them back.
        """
        lost = len(self.memtable)
        self.memtable.clear()
        # The pending-truncate marker is process state: it dies too.
        self._pending_wal_truncate_seq = 0
        return lost

    def recover(self) -> int:
        """Rebuild the memtable from the write-ahead log's tail.

        Returns the number of log records replayed.  Requires
        ``config.wal_enabled``; without a log there is nothing to replay
        and the lost writes are simply gone (the trade-off the WAL
        exists to prevent).
        """
        if self.wal is None:
            raise EngineError("recovery requires wal_enabled=True")
        records = self.wal.replay()
        for record in records:
            if record.kind == Kind.DELETE:
                self.memtable.delete(record.key, record.seq)
            else:
                self.memtable.put(record.key, record.seq)
            self._seq = max(self._seq, record.seq)
        return len(records)

    # ------------------------------------------------------------------
    # Misc.
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise EngineError(f"engine {self.name} is closed")

    def close(self) -> None:
        self._closed = True

    @property
    def last_seq(self) -> int:
        return self._seq

    def _make_entry_result(self, entry: Entry | None, cost: ReadCost) -> GetResult:
        """Standard translation of a search outcome to a GetResult."""
        if entry is None or entry.is_tombstone:
            return GetResult(False, None, cost)
        return GetResult(True, None, cost, _entry=entry)
