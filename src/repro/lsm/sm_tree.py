"""The Stepped-Merge tree (Jagadish et al., VLDB '97) — SM-tree baseline.

Section I-A / VI-D: data is organized in exponentially growing levels like
an LSM-tree, but "data objects in a level are not fully sorted and only be
read out and sorted when they are moved to the next level."  Each level
holds 0..r independent sorted tables; when the write buffer fills it is
appended to level 1 as a new table, and when level ``i`` fills, *all* its
tables are merged together and appended to level ``i+1`` as one table.

This slashes compaction traffic (and therefore cache invalidation), but the
paper shows the two prices paid:

* range queries must seek into every table of every level (228 QPS in
  Fig. 11), and
* obsolete versions pile up in the last level until it fills, inflating the
  database size by ~50% with periodic whole-level merge bursts
  (Figs. 12/13).
"""

from __future__ import annotations

from repro.lsm.base import (
    GetResult,
    LSMEngine,
    ReadCost,
    ScanResult,
    compaction_cause,
)
from repro.lsm.policy import SteppedMergePolicy
from repro.obs.events import CompactionEnd, CompactionStart
from repro.sstable.entry import Entry
from repro.sstable.iterator import merge_entries, merge_with_obsolete_count
from repro.sstable.sorted_table import SortedTable


class SMTree(LSMEngine):
    """Stepped-merge LSM variant: multiple sorted tables per level."""

    name = "sm"

    def __init__(
        self,
        config=None,
        clock=None,
        disk=None,
        db_cache=None,
        os_cache=None,
        *,
        substrate=None,
    ) -> None:
        super().__init__(
            config, clock, disk, db_cache, os_cache, substrate=substrate
        )
        self.num_levels = self.config.num_disk_levels
        #: levels[1..k]: newest table last.
        self.levels: list[list[SortedTable]] = [
            [] for _ in range(self.num_levels + 1)
        ]
        #: The SM-tree's design point (control flow lives in the policy).
        self.policy = SteppedMergePolicy()

    # ------------------------------------------------------------------
    # Sizes.
    # ------------------------------------------------------------------
    def level_size_kb(self, level: int) -> int:
        return sum(table.size_kb for table in self.levels[level])

    # ------------------------------------------------------------------
    # Compactions (lazy stepped merges, driven by SteppedMergePolicy).
    # ------------------------------------------------------------------
    def _merge_whole_level(self, level: int) -> None:
        """Merge every table of ``level`` into one table one level down.

        For the last level the merged result stays in place — this is the
        only moment obsolete versions (and expired tombstones) are finally
        dropped, which is why they accumulate in between.
        """
        tables = self.levels[level]
        if not tables:
            return
        input_files = [file for table in tables for file in table.files]
        input_kb = float(sum(f.size_kb for f in input_files))
        sources = [list(file.entries()) for file in input_files]
        target_level = min(level + 1, self.num_levels)
        # Tombstones may only be dropped by the in-place collapse of the
        # last level itself: a merge of level k-1 *into* level k appends a
        # new table next to existing last-level tables, and one of those
        # can still hold an older live version of a deleted key — dropping
        # the tombstone there would resurrect it on the next read.
        drop = level == self.num_levels
        bus = self.bus
        if bus.active:
            if bus.counting_only:
                bus.count(CompactionStart)
            else:
                bus.emit(
                    CompactionStart(
                        level=level,
                        input_files=len(input_files),
                        input_kb=input_kb,
                        kind="whole-level",
                    )
                )
        merged, obsolete = merge_with_obsolete_count(sources, drop_tombstones=drop)

        cause = compaction_cause(level)
        self._charge_compaction_read(input_files, cause=cause)
        new_files = self.builder.build(iter(merged), cause=cause)
        self._on_compaction_output(new_files)
        output_kb = float(sum(f.size_kb for f in new_files))
        # Inputs and output coexist until the install completes; this is
        # the transient space behind Fig. 12's bursts.
        self.disk.note_temp_space(input_kb)

        self.levels[level] = []
        self.levels[target_level].append(SortedTable(new_files))
        for file in input_files:
            self._discard_file(file)

        self._account_compaction(input_kb, output_kb, obsolete)
        if bus.active:
            if bus.counting_only:
                bus.count(CompactionEnd)
            else:
                bus.emit(
                    CompactionEnd(
                        level=level,
                        read_kb=input_kb,
                        write_kb=output_kb,
                        output_files=len(new_files),
                        obsolete_entries=obsolete,
                        kind="whole-level",
                    )
                )

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    def get(self, key: int) -> GetResult:
        self._check_open()
        self.stats.gets += 1
        cost = ReadCost()
        cost.memtable_probes += 1
        entry = self.memtable.get(key)
        if entry is not None:
            return self._make_entry_result(entry, cost)
        for level in range(1, self.num_levels + 1):
            for table in reversed(self.levels[level]):  # Newest first.
                entry = self._search_table(table, key, cost)
                if entry is not None:
                    return self._make_entry_result(entry, cost)
        return GetResult(False, None, cost)

    def scan(self, low: int, high: int) -> ScanResult:
        self._check_open()
        self.stats.scans += 1
        cost = ReadCost()
        sources: list[list[Entry]] = [self.memtable.entries_in_range(low, high)]
        for level in range(1, self.num_levels + 1):
            for table in self.levels[level]:
                overlapping = table.files_overlapping(low, high)
                if not overlapping:
                    continue
                cost.tables_checked += 1
                sources.extend(
                    self._scan_table_files(overlapping, low, high, cost)
                )
        entries = [e for e in merge_entries(sources) if not e.is_tombstone]  # type: ignore[arg-type]
        return ScanResult(entries, cost)

    # ------------------------------------------------------------------
    # Bulk loading.
    # ------------------------------------------------------------------
    def bulk_load(self, entries: list[Entry]) -> None:
        files = self.builder.build(iter(entries), cause="preload")
        self.levels[self.num_levels].append(SortedTable(files))
        self._seq = max(self._seq, max((e.seq for e in entries), default=0))
