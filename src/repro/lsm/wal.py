"""Write-ahead logging and crash recovery.

An LSM-tree's memtable is volatile: production engines (LevelDB included)
append every write to a sequential log first, and replay the log's tail
after a crash to rebuild the memtable.  The paper's evaluation does not
exercise crashes, so the engines keep the WAL *optional*
(``SystemConfig.wal_enabled``, default off) to leave the calibrated write
traffic untouched; with it enabled, every put/delete adds one pair-sized
sequential log write, the log is truncated at each flush (the flushed
data is durable in level-0 files), and :meth:`WriteAheadLog.replay`
reconstructs the unflushed tail.

The log models durability bookkeeping, not bytes: records are kept
in-memory (this is a simulator), disk traffic is charged to the
simulated disk, and "crash" means discarding the memtable.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.sstable.entry import Entry, Kind


@dataclass(frozen=True)
class LogRecord:
    """One durable write: (key, seq, kind)."""

    key: int
    seq: int
    kind: Kind

    def to_entry(self) -> Entry:
        return Entry(self.key, self.seq, self.kind)


class WriteAheadLog:
    """Sequential redo log with truncate-on-flush semantics."""

    def __init__(self, disk, pair_size_kb: int) -> None:
        self._disk = disk
        self._pair_size_kb = pair_size_kb
        self._records: list[LogRecord] = []
        self._truncated_through_seq = 0
        self.bytes_logged_kb = 0.0
        #: Crash-point hook (see :mod:`repro.check.crash`): called with a
        #: point name at instrumented instants; an armed injector raises.
        self.fault_hook: Callable[[str], None] | None = None

    # ------------------------------------------------------------------
    # Writing.
    # ------------------------------------------------------------------
    def append(self, key: int, seq: int, kind: Kind) -> None:
        """Durably record one write before it enters the memtable."""
        if self.fault_hook is not None:
            self.fault_hook("wal.append.before")
        self._records.append(LogRecord(key, seq, kind))
        # A log append is a small sequential write (group commit amortizes
        # the seek, so charge transfer only).
        self._disk.background_write(self._pair_size_kb, seeks=0, cause="wal")
        self.bytes_logged_kb += self._pair_size_kb
        if self.fault_hook is not None:
            self.fault_hook("wal.append.after")

    def truncate_through(self, seq: int) -> int:
        """Drop records with ``seq <= seq`` (their data was flushed).

        Returns how many records were discarded.
        """
        before = len(self._records)
        self._records = [r for r in self._records if r.seq > seq]
        self._truncated_through_seq = max(self._truncated_through_seq, seq)
        return before - len(self._records)

    # ------------------------------------------------------------------
    # Recovery.
    # ------------------------------------------------------------------
    def replay(self) -> list[LogRecord]:
        """The surviving tail, in write order (for memtable rebuild)."""
        return list(self._records)

    def restore_records(self, records: list[LogRecord]) -> None:
        """Overwrite the tail with a captured durable log image.

        The crash-recovery harness snapshots ``replay()`` at the crash
        instant and splices it into a rebuilt engine before ``recover()``
        — the in-memory equivalent of re-opening the log file a crashed
        process left behind.
        """
        self._records = list(records)

    @property
    def tail_records(self) -> int:
        return len(self._records)

    @property
    def truncated_through_seq(self) -> int:
        return self._truncated_through_seq
