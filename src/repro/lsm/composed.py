"""The generic design-space engine: any axis combination, one tree.

The legacy engine classes each realize *one* point of the Sarkar
compaction design space (see :mod:`repro.lsm.policy`).  ComposedTree
interprets an arbitrary :class:`~repro.lsm.policy.CompactionAxes` value
instead, so the sweep and tune layers can explore points the paper's
baselines never shipped — tiering with partial merges, lazy-leveling,
and any of them combined with the LSbM compaction buffer
(``movement="lazy-adoption"``).

Data layout is uniform: ``levels[1..k]`` each hold a list of sorted
tables, oldest first.  Under ``leveling`` every level is pinned to a
single run (one table); under ``tiering`` every level holds up to
``size_ratio`` independent tables; ``lazy-leveling`` mixes the two —
tiering everywhere except a single-run last level.

Movement ``lazy-adoption`` generalizes LSbM's buffered merge beyond the
gear scheduler: every merge's input files are *re-referenced* into a
per-level :class:`~repro.core.compaction_buffer.BufferLevel` instead of
being deleted, and point reads check the buffer (newest table first)
before the level's own tables, falling back to the tree the moment a
removed-file marker covers the key — the same safety rule as LSbM's
Algorithm 3.  Three things keep the buffer honest:

* the periodic :class:`~repro.core.trim.TrimProcess` removes files whose
  cached-block fraction fell below the threshold (Algorithm 2);
* per level, the buffer is bounded both by the level's capacity and by a
  table-count cap (``size_ratio`` tables), evicting oldest-first —
  evicting or pruning only the *oldest* table is what makes dropping its
  removed markers safe: no older table remains that a stopped search
  could incorrectly fall through to;
* the in-place collapse of a tiering last level never adopts (it is a
  rewrite of the level onto itself, not data newly arriving at a level).

Range scans bypass the buffer entirely and read the level tables — the
buffer holds copies, so the tables alone are always complete.  This is a
deliberate simplification versus LSbM's Algorithm 4 (scans there can be
served from buffered blocks); the differential tests in
``tests/test_design_space.py`` hold the whole engine to the KVOracle
regardless of axes.
"""

from __future__ import annotations

from repro.core.compaction_buffer import BufferLevel
from repro.core.trim import TrimProcess
from repro.lsm.base import (
    GetResult,
    LSMEngine,
    ReadCost,
    ScanResult,
    compaction_cause,
)
from repro.lsm.policy import CompactionAxes, ComposedPolicy
from repro.obs.events import CompactionEnd, CompactionStart, FileDiscarded
from repro.sstable.entry import Entry
from repro.sstable.iterator import merge_entries, merge_with_obsolete_count
from repro.sstable.sorted_table import SortedTable
from repro.sstable.sstable import SSTableFile


class ComposedTree(LSMEngine):
    """An LSM engine assembled from declarative compaction axes."""

    name = "design"

    def __init__(
        self,
        config=None,
        clock=None,
        disk=None,
        db_cache=None,
        os_cache=None,
        axes: CompactionAxes | None = None,
        *,
        substrate=None,
    ) -> None:
        super().__init__(
            config, clock, disk, db_cache, os_cache, substrate=substrate
        )
        #: The design point; defaults to the config's four axis fields.
        self.axes = axes if axes is not None else CompactionAxes.from_config(
            self.config
        )
        self.num_levels = self.config.num_disk_levels
        #: levels[1..k]: sorted tables, oldest first.  A single-run level
        #: always holds exactly one table; index 0 is unused.
        self.levels: list[list[SortedTable]] = [
            [SortedTable()] if self._single_run(level) else []
            for level in range(self.num_levels + 1)
        ]
        #: Per-level key cursor for leveling + partial granularity
        #: (LevelDB-style round-robin through the key space).
        self._cursor: dict[int, int | None] = {
            i: None for i in range(1, self.num_levels)
        }
        self.policy = ComposedPolicy(self.axes)
        self.buffer_files_appended = 0
        self.buffer_files_removed = 0
        if self.axes.movement == "lazy-adoption":
            #: buffer[1..k]; index 0 unused (level 0 lives in DRAM).
            self.buffer: list[BufferLevel] = [
                BufferLevel(level) for level in range(self.num_levels + 1)
            ]
            self._buffer_levels = self.buffer[1:]
            #: Per-level cap on completed buffer tables: bounds the extra
            #: index probes a point read pays at ~one tiering level.
            self._buffer_max_tables = self.config.size_ratio
            # Zero-I/O causes, reported explicitly (paper's claim).
            self.disk.record_cause("buffer-append")
            self.disk.record_cause("trim")
            self.trim: TrimProcess | None = TrimProcess(
                self.config,
                cached_blocks=self._cached_blocks_of,
                remove_file=self._remove_buffer_file,
                bus=self.bus,
            )
        else:
            self._buffer_levels = []
            self.trim = None

    # ------------------------------------------------------------------
    # Layout queries.
    # ------------------------------------------------------------------
    def _single_run(self, level: int) -> bool:
        """Is ``level`` pinned to one sorted run under the layout axis?"""
        layout = self.axes.layout
        if layout == "leveling":
            return True
        if layout == "lazy-leveling":
            return level == self.num_levels
        return False

    def level_size_kb(self, level: int) -> int:
        return sum(table.size_kb for table in self.levels[level])

    # ------------------------------------------------------------------
    # Compaction mechanism (control flow in ComposedPolicy).
    # ------------------------------------------------------------------
    def run_compactions(self) -> None:
        # Fast path (same reasoning as LevelDB's): a pass only ever
        # starts from a full memtable — the policy's per-level drains
        # complete inside the pass — and the WAL-truncate check only
        # matters right after a flush.
        if (
            self.memtable.size_kb < self.memtable_budget_kb
            and not self._pending_wal_truncate_seq
        ):
            return
        super().run_compactions()

    def _flush_pass(self) -> None:
        """Flush the write buffer into level 1 per the layout axis."""
        files = self._flush_memtable_to_files()
        if not files:
            return
        if self._single_run(1):
            adopt = self.axes.movement == "lazy-adoption"
            run = self.levels[1][0]
            last = self.num_levels == 1
            for file in files:
                self._merge_into_run(
                    [file], run, last_level=last,
                    dispose_sources=not adopt, level=0,
                )
            if adopt:
                self._adopt(1, files)
        else:
            self.levels[1].append(SortedTable(files))

    def _compact_level_once(self, level: int) -> bool:
        """Move one granularity-sized unit from ``level`` down.

        Returns whether anything moved (guards the policy's drain loop).
        """
        full = self.axes.granularity == "full-level"
        if self._single_run(level):
            run = self.levels[level][0]
            if not run:
                return False
            if full:
                groups = [run.files]
                self.levels[level][0] = SortedTable()
            else:
                file = self._pick_by_cursor(level)
                self._cursor[level] = file.max_key
                run.remove(file)
                groups = [[file]]
        else:
            tables = self.levels[level]
            if not tables:
                return False
            # Oldest-first: full granularity takes the whole level,
            # partial takes the two oldest tables (the classic tiered
            # "merge the oldest runs" increment).
            count = len(tables) if full else min(2, len(tables))
            picked, self.levels[level] = tables[:count], tables[count:]
            groups = [table.files for table in picked]
        self._move_down(level, groups)
        return True

    def _pick_by_cursor(self, level: int) -> SSTableFile:
        """LevelDB's round-robin pick inside a single-run level."""
        files = self.levels[level][0].files
        cursor = self._cursor[level]
        if cursor is not None:
            for file in files:
                if file.min_key > cursor:
                    return file
        return files[0]  # Wrap around the key space.

    def _move_down(self, level: int, groups: list[list[SSTableFile]]) -> None:
        """Merge file ``groups`` (one per source table) into ``level + 1``.

        The movement axis decides the inputs' fate: ``merge`` disposes
        them inside the merge; ``lazy-adoption`` re-references them into
        the target level's compaction buffer — group by group, because
        files from *different* source tables may overlap and a buffer
        table must stay a sorted, non-overlapping run.
        """
        target = level + 1
        adopt = self.axes.movement == "lazy-adoption"
        sources = [file for group in groups for file in group]
        if self._single_run(target):
            self._merge_into_run(
                sources,
                self.levels[target][0],
                last_level=target == self.num_levels,
                dispose_sources=not adopt,
                level=level,
            )
        else:
            self._merge_to_new_table(level, sources, dispose=not adopt)
        if adopt:
            for group in groups:
                self._adopt(target, group)

    def _merge_to_new_table(
        self, level: int, input_files: list[SSTableFile], dispose: bool
    ) -> None:
        """Merge ``input_files`` into one fresh table at ``level + 1``.

        The tiering move: the target level's existing tables are not
        read.  Tombstones are kept — the new table lands *next to* other
        tables, and one of those can still hold an older live version of
        a deleted key (the SM-tree's resurrection hazard).
        """
        input_kb = float(sum(f.size_kb for f in input_files))
        bus = self.bus
        if bus.active:
            if bus.counting_only:
                bus.count(CompactionStart)
            else:
                bus.emit(
                    CompactionStart(
                        level=level,
                        input_files=len(input_files),
                        input_kb=input_kb,
                        kind="tier",
                    )
                )
        sources = [f.entry_list() for f in input_files]
        merged, obsolete = merge_with_obsolete_count(
            sources, drop_tombstones=False
        )
        cause = compaction_cause(level)
        self._charge_compaction_read(input_files, cause=cause)
        new_files = self.builder.build(iter(merged), cause=cause)
        self._on_compaction_output(new_files)
        output_kb = float(sum(f.size_kb for f in new_files))
        self.disk.note_temp_space(input_kb)
        if new_files:
            self.levels[level + 1].append(SortedTable(new_files))
        if dispose:
            for file in input_files:
                self._discard_file(file)
        self._account_compaction(input_kb, output_kb, obsolete)
        if bus.active:
            if bus.counting_only:
                bus.count(CompactionEnd)
            else:
                bus.emit(
                    CompactionEnd(
                        level=level,
                        read_kb=input_kb,
                        write_kb=output_kb,
                        output_files=len(new_files),
                        obsolete_entries=obsolete,
                        kind="tier",
                    )
                )

    def _collapse_last_level(self) -> None:
        """Merge the tiering last level into one table, in place.

        The only tombstone-dropping moment for multi-run last levels.
        Inputs are always disposed, whatever the movement axis: this is
        a rewrite of the level onto itself, not data arriving at a new
        level, so adopting would buffer bytes whose hotness the rewrite
        preserves anyway.
        """
        level = self.num_levels
        tables = self.levels[level]
        input_files = [f for table in tables for f in table.files]
        if not input_files:
            return
        input_kb = float(sum(f.size_kb for f in input_files))
        bus = self.bus
        if bus.active:
            if bus.counting_only:
                bus.count(CompactionStart)
            else:
                bus.emit(
                    CompactionStart(
                        level=level,
                        input_files=len(input_files),
                        input_kb=input_kb,
                        kind="collapse",
                    )
                )
        sources = [f.entry_list() for f in input_files]
        merged, obsolete = merge_with_obsolete_count(
            sources, drop_tombstones=True
        )
        cause = compaction_cause(level)
        self._charge_compaction_read(input_files, cause=cause)
        new_files = self.builder.build(iter(merged), cause=cause)
        self._on_compaction_output(new_files)
        output_kb = float(sum(f.size_kb for f in new_files))
        self.disk.note_temp_space(input_kb)
        self.levels[level] = [SortedTable(new_files)] if new_files else []
        for file in input_files:
            self._discard_file(file)
        self._account_compaction(input_kb, output_kb, obsolete)
        if bus.active:
            if bus.counting_only:
                bus.count(CompactionEnd)
            else:
                bus.emit(
                    CompactionEnd(
                        level=level,
                        read_kb=input_kb,
                        write_kb=output_kb,
                        output_files=len(new_files),
                        obsolete_entries=obsolete,
                        kind="collapse",
                    )
                )

    # ------------------------------------------------------------------
    # Lazy adoption: the compaction buffer generalized beyond the gear.
    # ------------------------------------------------------------------
    def _adopt(self, level: int, files: list[SSTableFile]) -> None:
        """Re-reference one merge group into ``buffer[level]``'s Bi^0.

        Within a group files are key-ordered, but *across* calls (e.g.
        a wrapped compaction cursor) they need not be — an overlap with
        the incoming tail closes it and opens a fresh one.
        """
        buf = self.buffer[level]
        for file in files:
            tail = buf.incoming.max_key
            if tail is not None and file.min_key <= tail:
                buf.finalize_incoming()
            buf.incoming.append(file)
            self.buffer_files_appended += 1

    def _seal_adoptions(self) -> None:
        """End-of-pass buffer upkeep: close Bi^0, enforce the bounds."""
        for buf in self._buffer_levels:
            buf.finalize_incoming()
            self._enforce_buffer_bounds(buf)

    def _enforce_buffer_bounds(self, buf: BufferLevel) -> None:
        """Capacity + table-count bound, evicting oldest tables whole.

        Only ever the oldest table goes: with no older table left behind
        it, dropping its removed markers cannot expose a stale version
        to a newest-first search.
        """
        capacity = self.config.level_capacity_kb(buf.level)
        tables = buf.tables
        while tables and (
            buf.live_kb > capacity or len(tables) > self._buffer_max_tables
        ):
            for file in tables.pop():
                if not file.removed:
                    self._remove_buffer_file(file)

    def _prune_removed_tails(self) -> None:
        """Drop fully-trimmed oldest buffer tables (markers and all)."""
        for buf in self._buffer_levels:
            tables = buf.tables
            while tables and all(file.removed for file in tables[-1]):
                tables.pop()

    def _cached_blocks_of(self, file_id: int) -> int:
        if self.db_cache is None:
            return 0
        return self.db_cache.cached_blocks(file_id)

    def _remove_buffer_file(self, file: SSTableFile) -> None:
        """Free a buffer file; its key-range marker stays in its table."""
        if self.db_cache is not None:
            self.db_cache.invalidate_file(file.file_id)
        self.disk.free(file.extent)
        file.mark_removed()
        self.buffer_files_removed += 1
        bus = self.bus
        if bus.active:
            if bus.counting_only:
                bus.count(FileDiscarded)
            else:
                bus.emit(
                    FileDiscarded(
                        file_id=file.file_id,
                        size_kb=file.size_kb,
                        reason="buffer",
                    )
                )

    @property
    def compaction_buffer_kb(self) -> int | None:
        if not self._buffer_levels:
            return None
        return sum(buf.total_live_kb for buf in self._buffer_levels)

    def tick(self, now: int) -> None:
        super().tick(now)
        if self.trim is not None:
            self.trim.maybe_run(now, self._buffer_levels)
            self._prune_removed_tails()

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    def get(self, key: int) -> GetResult:
        self._check_open()
        self.stats.gets += 1
        cost = ReadCost()
        cost.memtable_probes += 1
        entry = self.memtable.get(key)
        if entry is not None:
            return self._make_entry_result(entry, cost)
        buffered = bool(self._buffer_levels)
        for level in range(1, self.num_levels + 1):
            # Buffer first: its newest table holds the freshest copy of
            # whatever was last merged into this level, likely still
            # cache-resident.  A removed marker stops the buffer check
            # and the level's own tables answer (Algorithm 3's rule).
            if buffered:
                entry = self._search_buffer_tables(
                    self.buffer[level].tables, key, cost
                )
                if entry is not None:
                    return self._make_entry_result(entry, cost)
            for table in reversed(self.levels[level]):  # Newest first.
                entry = self._search_table(table, key, cost)
                if entry is not None:
                    return self._make_entry_result(entry, cost)
        return GetResult(False, None, cost)

    def _search_buffer_tables(
        self, tables: list[SortedTable], key: int, cost: ReadCost
    ) -> Entry | None:
        """Newest-table-first probe of one level's completed buffer lists.

        A removed marker covering the key ends the whole check: the
        newest buffered version might have been in the removed file, so
        only the level's own tables can answer safely.
        """
        for table in tables:
            file = table.find_file(key)
            if file is None:
                continue
            if file.removed:
                return None
            entry = self._probe_file(file, key, cost)
            if entry is not None:
                return entry
        return None

    def scan(self, low: int, high: int) -> ScanResult:
        self._check_open()
        self.stats.scans += 1
        cost = ReadCost()
        sources: list[list[Entry]] = [self.memtable.entries_in_range(low, high)]
        for level in range(1, self.num_levels + 1):
            for table in self.levels[level]:
                overlapping = table.files_overlapping(low, high)
                if not overlapping:
                    continue
                cost.tables_checked += 1
                sources.extend(
                    self._scan_table_files(overlapping, low, high, cost)
                )
        entries = [e for e in merge_entries(sources) if not e.is_tombstone]  # type: ignore[arg-type]
        return ScanResult(entries, cost)

    # ------------------------------------------------------------------
    # Bulk loading.
    # ------------------------------------------------------------------
    def bulk_load(self, entries: list[Entry]) -> None:
        files = self.builder.build(iter(entries), cause="preload")
        last = self.num_levels
        if self._single_run(last):
            for file in files:
                self.levels[last][0].append(file)
        else:
            self.levels[last].append(SortedTable(files))
        self._seq = max(self._seq, max((e.seq for e in entries), default=0))
