"""bLSM-style gear-scheduled LSM-tree (Sears & Ramakrishnan), Section IV-A.

Each level ``i < k`` is split into ``Ci`` and ``Ci'``: ``Ci`` receives data
merged down from above while ``Ci'`` drains into the next level.  The paper
simplifies bLSM's in/out-progress regulation by bounding ``|Ci| + |Ci'|``
by the level capacity ``Si``: whenever the bound is exceeded at level 0,
one compaction *pass* walks the full-level prefix and moves one compaction
unit (a super-file) at each full level — so compaction progress everywhere
is geared to the insertion rate, and writes see predictable latency.

This engine is both the bLSM baseline of the evaluation and the structural
base class of :class:`~repro.core.lsbm.LSbMTree`, which overrides the
rotation and per-unit compaction steps to feed its compaction buffer.
"""

from __future__ import annotations

from bisect import bisect_left

from repro.bloom.hashing import probe_mask
from repro.errors import EngineError
from repro.lsm.base import GetResult, LSMEngine, MergeOutcome, ReadCost, ScanResult
from repro.lsm.policy import GearPolicy
from repro.sstable.block import _shared_filter
from repro.sstable.entry import Entry
from repro.sstable.iterator import merge_entries
from repro.sstable.sorted_table import SortedTable
from repro.sstable.sstable import SSTableFile
from repro.sstable.superfile import group_into_superfiles


class BLSMTree(LSMEngine):
    """Gear-scheduled leveled LSM-tree with Ci/Ci' per level."""

    name = "blsm"

    def __init__(
        self,
        config=None,
        clock=None,
        disk=None,
        db_cache=None,
        os_cache=None,
        *,
        substrate=None,
    ) -> None:
        super().__init__(
            config, clock, disk, db_cache, os_cache, substrate=substrate
        )
        self.num_levels = self.config.num_disk_levels
        #: C[1..k] — the receiving run of each on-disk level.
        self.c: list[SortedTable] = [
            SortedTable() for _ in range(self.num_levels + 1)
        ]
        #: Cp[1..k-1] — the draining run (C') of each gear level.
        self.cp: list[SortedTable] = [
            SortedTable() for _ in range(self.num_levels + 1)
        ]
        #: C0' — the flushed, on-disk image of the write buffer.
        self.c0_prime = SortedTable()
        #: bLSM's design point.  Subclasses that flip the data-movement
        #: axis through the gear hooks (LSbM) reassign this with the
        #: matching axes.
        self.policy = GearPolicy()
        self._rebuild_descent()

    def _rebuild_descent(self) -> None:
        """Recompute the read path's run order (C0', C1, C1', ..., Ck).

        The descent is cached as a flat tuple so ``get`` iterates it
        without per-read list indexing; it must be rebuilt whenever a
        rotation *replaces* a run object (in-place mutation of a run's
        files is fine — the tuple holds the tables, not their contents).
        """
        descent = [self.c0_prime]
        for level in range(1, self.num_levels + 1):
            descent.append(self.c[level])
            if level < self.num_levels:
                descent.append(self.cp[level])
        self._descent = tuple(descent)

    # ------------------------------------------------------------------
    # Sizes.
    # ------------------------------------------------------------------
    def level_total_kb(self, level: int) -> int:
        """``|Ci| + |Ci'|`` (level 0: memtable + C0')."""
        if level == 0:
            return self.memtable.size_kb + self.c0_prime.size_kb
        return self.c[level].size_kb + self.cp[level].size_kb

    def _source(self, level: int) -> SortedTable:
        """The draining run of ``level`` (C0' for level 0, else Ci')."""
        return self.c0_prime if level == 0 else self.cp[level]

    @property
    def l0_pressure(self) -> float:
        """Gear level 0 counts both the memtable and the C0' run."""
        return self.level_total_kb(0) / self.memtable_budget_kb

    # ------------------------------------------------------------------
    # The gear scheduler.  Algorithm 1's control flow lives in
    # :class:`~repro.lsm.policy.GearPolicy`; the hooks below are the
    # mechanism it drives (and the seam LSbM overrides to add the
    # compaction-buffer lines).
    # ------------------------------------------------------------------
    def run_compactions(self) -> None:
        # Fast path for the by-far common case: level 0 is below S0, so a
        # pass would move nothing, no stall can accrue (``write_stalled``
        # is the same threshold) and no WAL truncate is pending (the
        # marker is only ever non-zero *inside* a pass that flushed).
        # Every put calls this, so skipping the full wrapper matters.
        if (
            self.memtable.size_kb + self.c0_prime.size_kb
            < self.memtable_budget_kb
            and not self._pending_wal_truncate_seq
        ):
            return
        super().run_compactions()

    def _rotate(self, level: int) -> None:
        """Start a merge round: move Ci into Ci' (flush C0 for level 0)."""
        if level == 0:
            if self.c0_prime:
                raise EngineError("rotating level 0 while C0' is non-empty")
            files = self._flush_memtable_to_files()
            group_into_superfiles(
                files, self.config.superfile_files, self.superfile_ids
            )
            self.c0_prime = SortedTable(files)
        else:
            if self.cp[level]:
                raise EngineError(f"rotating level {level} while C{level}' drains")
            self.cp[level] = self.c[level]
            self.c[level] = SortedTable()
        self._rebuild_descent()

    def _pop_unit(self, source: SortedTable) -> list[SSTableFile]:
        """Pop the next compaction unit: one super-file's member files.

        Section IV-C: the super-file is the basic operation unit of the
        underlying LSM-tree.  Files built together share a super-file id
        and sit contiguously at the low-key end of the draining run.
        """
        first = source.pop_first()
        unit = [first]
        while source and source.files[0].superfile_id == first.superfile_id:
            if first.superfile_id is None:
                break  # Ungrouped files compact one at a time.
            unit.append(source.pop_first())
        return unit

    def _compact_unit(self, level: int, unit: list[SSTableFile]) -> MergeOutcome:
        """Merge one unit from ``level`` into C(level+1)."""
        target = level + 1
        outcome = self._merge_into_run(
            unit,
            self.c[target],
            last_level=target == self.num_levels,
            level=level,
        )
        group_into_superfiles(
            outcome.new_files, self.config.superfile_files, self.superfile_ids
        )
        return outcome

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    def get(self, key: int) -> GetResult:
        if self._closed:
            self._check_open()
        self.stats.gets += 1
        cost = ReadCost()
        cost.memtable_probes += 1
        entry = self.memtable.get(key)
        if entry is not None:
            return self._make_entry_result(entry, cost)
        # The descent inlines ``_search_table`` over the cached run order
        # with the probe counters accumulated in locals — identical cost
        # accounting (the counters are flushed to ``cost`` before any
        # state-bearing step and at every exit), without a method call
        # per run; over half the per-run searches end at the index gate.
        tables_checked = 0
        index_probes = 0
        bloom_probes = 0
        for table in self._descent:
            tables_checked += 1
            max_keys = table._max_keys
            position = bisect_left(max_keys, key)
            if position == len(max_keys):
                continue
            file = table._files[position]
            if file.min_key > key:  # bisect guarantees key <= file.max_key.
                continue
            index_probes += 1
            if file.removed:
                file._check_not_removed()
            block_keys = file._block_max_keys
            position = bisect_left(block_keys, key)
            if position == len(block_keys):
                continue
            block = file._blocks[position]
            if block.min_key > key:
                continue
            bloom_probes += 1
            bloom = block._bloom
            if bloom is None:
                bloom = block._bloom = _shared_filter(
                    tuple(block._keys), block._bits_per_key
                )
            mask = probe_mask(key, bloom._num_bits, bloom._num_hashes)
            if bloom._bits & mask != mask:
                continue
            cost.tables_checked += tables_checked
            cost.index_probes += index_probes
            cost.bloom_probes += bloom_probes
            tables_checked = 0
            index_probes = 0
            bloom_probes = 0
            self._read_block(file, block, cost)
            entry = block.get(key)
            if entry is None:
                cost.false_positive_blocks += 1
                continue
            return self._make_entry_result(entry, cost)
        cost.tables_checked += tables_checked
        cost.index_probes += index_probes
        cost.bloom_probes += bloom_probes
        return GetResult(False, None, cost)

    def scan(self, low: int, high: int) -> ScanResult:
        self._check_open()
        self.stats.scans += 1
        cost = ReadCost()
        sources: list[list[Entry]] = [self.memtable.entries_in_range(low, high)]
        for table in self._all_runs():
            overlapping = table.files_overlapping(low, high)
            if not overlapping:
                continue
            cost.tables_checked += 1
            sources.extend(self._scan_table_files(overlapping, low, high, cost))
        entries = [e for e in merge_entries(sources) if not e.is_tombstone]  # type: ignore[arg-type]
        return ScanResult(entries, cost)

    def _all_runs(self) -> list[SortedTable]:
        """Every on-disk sorted run, newest data first."""
        runs = [self.c0_prime]
        for level in range(1, self.num_levels + 1):
            runs.append(self.c[level])
            if level < self.num_levels:
                runs.append(self.cp[level])
        return runs

    # ------------------------------------------------------------------
    # Bulk loading.
    # ------------------------------------------------------------------
    def bulk_load(self, entries: list[Entry]) -> None:
        files, _ = self.builder.build_grouped(iter(entries), cause="preload")
        for file in files:
            self.c[self.num_levels].append(file)
        self._seq = max(self._seq, max((e.seq for e in entries), default=0))
