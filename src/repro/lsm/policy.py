"""The compaction design space as declarative, composable policy axes.

Sarkar et al. ("Constructing and Analyzing the LSM Compaction Design
Space", VLDB '21) decompose any LSM compaction strategy into four
orthogonal knobs; :class:`CompactionAxes` makes them first-class values:

* **trigger** — what makes a level due for compaction: its *size* versus
  the size-ratio capacity curve (``size-ratio``), or the *count* of
  independent runs it holds (``level-saturation``, HBase's
  ``max_store_files`` and the classic tiered ``T`` bound);
* **layout** — how a level organizes data: one fully sorted run
  (``leveling``), several independent runs (``tiering``), or tiering
  everywhere except a single-run last level (``lazy-leveling``,
  Dayan & Idreos' Dostoevsky);
* **granularity** — how much a single compaction moves: everything the
  trigger selected (``full-level``) or an incremental slice chosen by a
  cursor / age window (``partial``);
* **movement** — what happens to the bytes a merge consumed: the input
  files die with the merge (``merge``) or they are adopted into the
  paper's compaction buffer and linger for cache-friendly reads until
  trimmed (``lazy-adoption``, the LSbM-tree's contribution).

A :class:`CompactionPolicy` is the executable counterpart: it owns the
*control flow* a compaction pass runs (what to compact next, in which
order, until which bound) while the engine keeps the *mechanism* (how to
flush, merge, install and account one unit of work).  Every engine's
``_do_compactions`` body is one of the policies below; the engine classes
supply hooks the policies drive.  The policies are deliberately
bit-identical extractions — ``tests/test_design_space.py`` proves each
legacy engine's event stream unchanged against pinned golden digests —
and :class:`~repro.lsm.composed.ComposedTree` interprets arbitrary axis
combinations beyond the legacy points.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.sstable.sorted_table import SortedTable
from repro.sstable.sstable import SSTableFile

TRIGGERS = ("size-ratio", "level-saturation")
LAYOUTS = ("leveling", "tiering", "lazy-leveling")
GRANULARITIES = ("partial", "full-level")
MOVEMENTS = ("merge", "lazy-adoption")


@dataclass(frozen=True)
class CompactionAxes:
    """One point in the four-knob compaction design space."""

    trigger: str = "size-ratio"
    layout: str = "leveling"
    granularity: str = "partial"
    movement: str = "merge"

    def __post_init__(self) -> None:
        for field_name, value, allowed in (
            ("trigger", self.trigger, TRIGGERS),
            ("layout", self.layout, LAYOUTS),
            ("granularity", self.granularity, GRANULARITIES),
            ("movement", self.movement, MOVEMENTS),
        ):
            if value not in allowed:
                raise ConfigError(
                    f"compaction {field_name} must be one of {allowed}, "
                    f"got {value!r}"
                )
        if self.trigger == "level-saturation" and self.layout == "leveling":
            # A leveled level is always exactly one run, so a run-count
            # trigger could never fire.
            raise ConfigError(
                "trigger 'level-saturation' needs a layout with multiple "
                "runs per level (tiering or lazy-leveling), not 'leveling'"
            )

    @classmethod
    def from_config(cls, config) -> CompactionAxes:
        """The axes a :class:`~repro.config.SystemConfig` declares."""
        return cls(
            trigger=config.compaction_trigger,
            layout=config.compaction_layout,
            granularity=config.compaction_granularity,
            movement=config.compaction_movement,
        )

    def to_dict(self) -> dict[str, str]:
        return {
            "trigger": self.trigger,
            "layout": self.layout,
            "granularity": self.granularity,
            "movement": self.movement,
        }

    def describe(self) -> str:
        """Compact one-line rendering for tables and logs."""
        return (
            f"{self.layout}/{self.granularity} ({self.trigger}, "
            f"{self.movement})"
        )


class CompactionPolicy(ABC):
    """Control flow of one compaction pass over an engine's hooks."""

    #: The design-space point this policy realizes.
    axes: CompactionAxes

    @abstractmethod
    def run(self, engine) -> None:
        """One full compaction pass (the engine's ``_do_compactions``)."""


class LeveledCursorPolicy(CompactionPolicy):
    """LevelDB's design point: leveling, partial merges by key cursor.

    A full write buffer is flushed and merged into C1 file by file; then
    every level over its size-ratio capacity moves one file at a time —
    round-robin through the key space via a per-level compaction cursor —
    into the next level.  The cursor is *policy* state (it encodes what
    to compact next, not what the tree contains), so it lives here.
    """

    axes = CompactionAxes(
        trigger="size-ratio",
        layout="leveling",
        granularity="partial",
        movement="merge",
    )

    def __init__(self, num_levels: int) -> None:
        #: Per-level compaction cursor: max key of the last compacted file.
        self._cursor: dict[int, int | None] = {
            i: None for i in range(1, num_levels)
        }

    def run(self, engine) -> None:
        if engine.memtable.size_kb >= engine.memtable_budget_kb:
            engine._flush_and_merge_into_c1()
        for level in range(1, engine.num_levels):
            capacity = engine.config.level_capacity_kb(level)
            while engine.levels[level].size_kb > capacity:
                self._compact_one_file(engine, level)

    def _compact_one_file(self, engine, level: int) -> None:
        """Move one file from ``level`` to ``level + 1`` (cursor order)."""
        file = self._pick_by_cursor(engine, level)
        self._cursor[level] = file.max_key
        engine.levels[level].remove(file)
        last = level + 1 == engine.num_levels
        engine._merge_into_run(
            [file], engine.levels[level + 1], last_level=last, level=level
        )

    def _pick_by_cursor(self, engine, level: int) -> SSTableFile:
        files = engine.levels[level].files
        cursor = self._cursor[level]
        if cursor is not None:
            for file in files:
                if file.min_key > cursor:
                    return file
        return files[0]  # Wrap around the key space.


class GearPolicy(CompactionPolicy):
    """bLSM's design point: gear-scheduled leveling with C/C' pairs.

    Whenever level 0 (memtable + C0') exceeds S0, one *pass* walks the
    full-level prefix and moves one compaction unit (a super-file) at
    each full level, so compaction progress everywhere is geared to the
    insertion rate.  The engine supplies the gear mechanism as hooks —
    ``level_total_kb`` / ``_source`` / ``_rotate`` / ``_pop_unit`` /
    ``_compact_unit`` — which is exactly the seam the LSbM-tree overrides
    to adopt merge inputs into its compaction buffer: same policy, the
    ``movement`` axis flipped by the hooks underneath it.
    """

    def __init__(self, movement: str = "merge") -> None:
        self.axes = CompactionAxes(
            trigger="size-ratio",
            layout="leveling",
            granularity="partial",
            movement=movement,
        )

    def run(self, engine) -> None:
        while engine.level_total_kb(0) >= engine.memtable_budget_kb:
            if not self._one_pass(engine):
                break

    def _one_pass(self, engine) -> bool:
        """One gear pass: compact one unit at every full level in the prefix.

        Returns whether any unit moved (guards against livelock when the
        write buffer alone exceeds S0 but holds nothing flushable).
        """
        progressed = False
        for level in range(engine.num_levels):  # i from 0 to k-1.
            # Level 0's capacity is the *live* write-buffer budget (equal
            # to S0 unless a runtime controller moved it); deeper levels
            # keep the configured size-ratio curve.
            capacity = (
                engine.memtable_budget_kb
                if level == 0
                else engine.config.level_capacity_kb(level)
            )
            if engine.level_total_kb(level) < capacity:
                break
            source = engine._source(level)
            if not source:
                engine._rotate(level)
                source = engine._source(level)
            if not source:
                break  # Nothing materialized (e.g. an empty memtable).
            unit = engine._pop_unit(source)
            engine._compact_unit(level, unit)
            progressed = True
        return progressed


class SteppedMergePolicy(CompactionPolicy):
    """The SM-tree's design point: tiering with whole-level merges.

    A full write buffer is appended to level 1 as an independent table;
    a level at its size-ratio capacity has *all* its tables merged into
    one table appended to the next level (the last level collapses in
    place — the only moment obsolete versions are dropped).
    """

    axes = CompactionAxes(
        trigger="size-ratio",
        layout="tiering",
        granularity="full-level",
        movement="merge",
    )

    def run(self, engine) -> None:
        if engine.memtable.size_kb >= engine.memtable_budget_kb:
            files = engine._flush_memtable_to_files()
            engine.levels[1].append(SortedTable(files))
        for level in range(1, engine.num_levels + 1):
            if engine.level_size_kb(level) >= engine.config.level_capacity_kb(
                level
            ):
                engine._merge_whole_level(level)


class FlatStorePolicy(CompactionPolicy):
    """HBase's design point: a flat store with saturation-triggered minors.

    A full write buffer flushes to one new table; while the store holds
    more than ``max_store_files`` tables, the cheapest contiguous-by-age
    window is minor-compacted.  (The store's periodic *major* compaction
    is time-triggered and therefore lives on the engine's ``tick``, not
    in the pass.)
    """

    axes = CompactionAxes(
        trigger="level-saturation",
        layout="tiering",
        granularity="partial",
        movement="merge",
    )

    def run(self, engine) -> None:
        if engine.memtable.size_kb >= engine.memtable_budget_kb:
            files = engine._flush_memtable_to_files()
            engine.tables.append(SortedTable(files))
        while len(engine.tables) > engine.max_store_files:
            engine._minor_compaction()


class ComposedPolicy(CompactionPolicy):
    """The generic interpreter: any :class:`CompactionAxes` point.

    Drives :class:`~repro.lsm.composed.ComposedTree`'s hooks — flush,
    per-level "one unit of work", last-level collapse — with the trigger
    axis deciding *when* a level is due and the engine mechanism deciding
    *what* one unit moves (layout + granularity) and what happens to the
    inputs (movement).  The legacy policies above stay as bit-identical
    fixed points; this one covers the rest of the space.
    """

    def __init__(self, axes: CompactionAxes) -> None:
        self.axes = axes

    def run(self, engine) -> None:
        if engine.memtable.size_kb >= engine.memtable_budget_kb:
            engine._flush_pass()
        last = engine.num_levels
        for level in range(1, last + 1):
            if level == last:
                # Only a multi-run last level has anywhere to go: it
                # collapses in place (the sole tombstone-dropping moment
                # for those layouts).  Single collapse per pass — a level
                # whose *live* data exceeds its capacity would otherwise
                # rewrite itself forever.
                if not engine._single_run(level) and self._due(engine, level):
                    engine._collapse_last_level()
                break
            while self._due(engine, level):
                if not engine._compact_level_once(level):
                    break
        engine._seal_adoptions()

    def _due(self, engine, level: int) -> bool:
        """Is ``level`` due for compaction under the trigger axis?"""
        if level == engine.num_levels and len(engine.levels[level]) <= 1:
            return False  # Collapsing a single table is a no-op rewrite.
        if self.axes.trigger == "level-saturation" and not engine._single_run(
            level
        ):
            return len(engine.levels[level]) > engine.config.size_ratio
        return engine.level_size_kb(level) > engine.config.level_capacity_kb(
            level
        )
