"""repro.obs — the observability core shared by every layer.

Three pieces, used together by :class:`~repro.substrate.Substrate`:

* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of typed counters,
  gauges and histograms with a zero-cost disabled mode;
* :mod:`repro.obs.events` — an :class:`EventBus` carrying structured
  engine events (flushes, compactions, file lifecycle, cache
  invalidations, trim runs, buffer freezes);
* :mod:`repro.obs.trace` — a :class:`TraceRecorder` exporting the event
  stream as a replayable, diffable JSONL log;
* :mod:`repro.obs.prof` — a :class:`SpanProfiler` sampling per-read span
  traces into the event stream, with a zero-cost disabled path;
* :mod:`repro.obs.diagnose` — dip diagnosis, attributing hit-ratio dips
  to the causal events in their windows.
"""

from repro.obs.diagnose import (
    DipDiagnosis,
    DipReport,
    diagnose_dips,
    find_dips,
    format_dip_report,
)
from repro.obs.events import (
    BufferFrozen,
    BufferUnfrozen,
    CacheInvalidated,
    CompactionEnd,
    CompactionStart,
    Event,
    EventBus,
    EventTally,
    FileCreated,
    FileDiscarded,
    FlushDone,
    ReadSpan,
    RequestShed,
    TrimRun,
    WriteDeferred,
)
from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Reservoir,
)
from repro.obs.prof import NULL_PROFILER, SpanProfiler
from repro.obs.trace import TraceRecorder, read_jsonl

__all__ = [
    "NULL_PROFILER",
    "NULL_REGISTRY",
    "BufferFrozen",
    "BufferUnfrozen",
    "CacheInvalidated",
    "CompactionEnd",
    "CompactionStart",
    "Counter",
    "DipDiagnosis",
    "DipReport",
    "Event",
    "EventBus",
    "EventTally",
    "FileCreated",
    "FileDiscarded",
    "FlushDone",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ReadSpan",
    "RequestShed",
    "Reservoir",
    "SpanProfiler",
    "TraceRecorder",
    "TrimRun",
    "WriteDeferred",
    "diagnose_dips",
    "find_dips",
    "format_dip_report",
    "read_jsonl",
]
