"""repro.obs — the observability core shared by every layer.

Three pieces, used together by :class:`~repro.substrate.Substrate`:

* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of typed counters,
  gauges and histograms with a zero-cost disabled mode;
* :mod:`repro.obs.events` — an :class:`EventBus` carrying structured
  engine events (flushes, compactions, file lifecycle, cache
  invalidations, trim runs, buffer freezes);
* :mod:`repro.obs.trace` — a :class:`TraceRecorder` exporting the event
  stream as a replayable, diffable JSONL log;
* :mod:`repro.obs.prof` — a :class:`SpanProfiler` sampling per-read span
  traces into the event stream, with a zero-cost disabled path;
* :mod:`repro.obs.diagnose` — dip diagnosis, attributing hit-ratio dips
  to the causal events in their windows;
* :mod:`repro.obs.tracing` — end-to-end request tracing: deterministic
  trace ids, tail-based exemplar span trees that reconcile exactly with
  the serve decomposition, and an anomaly-triggered flight recorder;
* :mod:`repro.obs.expo` — OpenMetrics-style text exposition of registry
  snapshots.
"""

from repro.obs.diagnose import (
    DipDiagnosis,
    DipReport,
    diagnose_dips,
    diagnose_shard_dips,
    find_dips,
    format_dip_report,
)
from repro.obs.events import (
    BufferFrozen,
    BufferUnfrozen,
    CacheInvalidated,
    CompactionEnd,
    CompactionStart,
    Event,
    EventBus,
    EventTally,
    FileCreated,
    FileDiscarded,
    FlushDone,
    ReadSpan,
    RequestShed,
    TrimRun,
    WriteDeferred,
)
from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Reservoir,
)
from repro.obs.expo import (
    render_openmetrics,
    render_openmetrics_many,
    sanitize_metric_name,
)
from repro.obs.prof import NULL_PROFILER, SpanProfiler
from repro.obs.trace import TraceRecorder, read_jsonl
from repro.obs.tracing import (
    TRACE_MODES,
    FlightPolicy,
    FlightRecorder,
    RequestTracer,
    exemplar_summary,
    make_trace_id,
    reconciliation_error_s,
    span_tree,
    stage_sum_s,
    validate_exemplar,
    validate_trace_jsonl,
    write_exemplars_jsonl,
)

__all__ = [
    "NULL_PROFILER",
    "NULL_REGISTRY",
    "TRACE_MODES",
    "BufferFrozen",
    "BufferUnfrozen",
    "CacheInvalidated",
    "CompactionEnd",
    "CompactionStart",
    "Counter",
    "DipDiagnosis",
    "DipReport",
    "Event",
    "EventBus",
    "EventTally",
    "FileCreated",
    "FileDiscarded",
    "FlightPolicy",
    "FlightRecorder",
    "FlushDone",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ReadSpan",
    "RequestShed",
    "RequestTracer",
    "Reservoir",
    "SpanProfiler",
    "TraceRecorder",
    "TrimRun",
    "WriteDeferred",
    "diagnose_dips",
    "diagnose_shard_dips",
    "exemplar_summary",
    "find_dips",
    "format_dip_report",
    "make_trace_id",
    "read_jsonl",
    "reconciliation_error_s",
    "render_openmetrics",
    "render_openmetrics_many",
    "sanitize_metric_name",
    "span_tree",
    "stage_sum_s",
    "validate_exemplar",
    "validate_trace_jsonl",
    "write_exemplars_jsonl",
]
