"""repro.obs — the observability core shared by every layer.

Three pieces, used together by :class:`~repro.substrate.Substrate`:

* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of typed counters,
  gauges and histograms with a zero-cost disabled mode;
* :mod:`repro.obs.events` — an :class:`EventBus` carrying structured
  engine events (flushes, compactions, file lifecycle, cache
  invalidations, trim runs, buffer freezes);
* :mod:`repro.obs.trace` — a :class:`TraceRecorder` exporting the event
  stream as a replayable, diffable JSONL log.
"""

from repro.obs.events import (
    BufferFrozen,
    BufferUnfrozen,
    CacheInvalidated,
    CompactionEnd,
    CompactionStart,
    Event,
    EventBus,
    EventTally,
    FileCreated,
    FileDiscarded,
    FlushDone,
    TrimRun,
)
from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import TraceRecorder, read_jsonl

__all__ = [
    "NULL_REGISTRY",
    "BufferFrozen",
    "BufferUnfrozen",
    "CacheInvalidated",
    "CompactionEnd",
    "CompactionStart",
    "Counter",
    "Event",
    "EventBus",
    "EventTally",
    "FileCreated",
    "FileDiscarded",
    "FlushDone",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TraceRecorder",
    "TrimRun",
    "read_jsonl",
]
