"""Dip diagnosis: attribute hit-ratio dips to the events that caused them.

The paper's Fig. 2/8 narrative is causal — compaction-induced cache
invalidation *causes* the periodic hit-ratio dips — but a sampled series
alone only shows the dips.  This module closes the loop: given a
hit-ratio :class:`~repro.sim.metrics.TimeSeries` and the event records of
the same run (live ``TraceRecorder.records`` or a loaded JSONL trace),
:func:`diagnose_dips` finds every downward crossing of the threshold
(exactly the crossings ``TimeSeries.dips_below`` counts, the metric
EXPERIMENTS.md reports) and searches a causal window before each one for
the events that can explain it: ``CacheInvalidated``, ``CompactionEnd``,
``TrimRun`` and ``BufferFrozen``.

The result is a :class:`DipReport` — fraction of dips explained, cause
tallies, top offending levels — which turns "the dips line up with
compactions" from a plotted impression into an asserted, quantified
artifact (the Fig. 8 acceptance test requires >= 80% attribution for the
LevelDB run).
"""

from __future__ import annotations

from bisect import bisect_right
from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # repro.sim imports repro.obs — keep this one-way.
    from repro.sim.metrics import TimeSeries

#: Event types that can causally explain a hit-ratio dip.
#: ``RangeMigrated`` joined with the cluster tier: a shard that adopts
#: (or loses) a key range mid-run serves a cold slice of the keyspace,
#: which dips its cache exactly like an invalidation does.  The control
#: events joined with the adaptive runtime controller: a shrink evicts
#: resident hot blocks (``CacheResized``), a memory rebalance shifts the
#: miss budget (``MemtableResized``), and the decision record itself
#: (``ControlDecision``) lets attribution name the controller rather
#: than misblame a coincident compaction.
CAUSAL_EVENT_TYPES = (
    "CacheInvalidated",
    "CompactionEnd",
    "TrimRun",
    "BufferFrozen",
    "RangeMigrated",
    "CacheResized",
    "MemtableResized",
    "ControlDecision",
)

#: How many example events each diagnosis transcribes (tallies stay full).
_MAX_RECORDED_EVENTS = 8


@dataclass(frozen=True)
class Dip:
    """One downward crossing of the threshold: (sample time, value)."""

    time: int
    value: float


def find_dips(
    series: TimeSeries, threshold: float, skip: int = 0
) -> list[Dip]:
    """The downward crossings of ``threshold`` with their sample times.

    Same crossing semantics as :meth:`TimeSeries.dips_below` (which only
    counts them), after skipping ``skip`` warm-up samples.
    """
    dips: list[Dip] = []
    above: bool | None = None
    for time, value in zip(series.times[skip:], series.values[skip:]):
        is_above = value >= threshold
        if above is True and not is_above:
            dips.append(Dip(time, value))
        above = is_above
    return dips


@dataclass
class DipDiagnosis:
    """One dip with the causal events found in its window."""

    dip: Dip
    window_start: int
    #: Events-per-type tally over the full window.
    cause_counts: dict[str, int] = field(default_factory=dict)
    #: Compaction/freeze events per source level over the full window.
    level_counts: dict[int, int] = field(default_factory=dict)
    #: A bounded transcript of the window's causal events.
    examples: list[dict] = field(default_factory=list)

    @property
    def explained(self) -> bool:
        return bool(self.cause_counts)

    def to_json_dict(self) -> dict:
        return {
            "time": self.dip.time,
            "value": self.dip.value,
            "window_start": self.window_start,
            "explained": self.explained,
            "cause_counts": dict(self.cause_counts),
            "level_counts": {
                str(level): count for level, count in self.level_counts.items()
            },
            "examples": list(self.examples),
        }


@dataclass
class DipReport:
    """The run-level attribution summary ``diagnose_dips`` produces."""

    threshold: float
    window_s: int
    diagnoses: list[DipDiagnosis] = field(default_factory=list)

    @property
    def total_dips(self) -> int:
        return len(self.diagnoses)

    @property
    def explained_dips(self) -> int:
        return sum(1 for d in self.diagnoses if d.explained)

    @property
    def fraction_explained(self) -> float:
        """Attributed fraction; 1.0 for a dip-free (fully stable) series."""
        if not self.diagnoses:
            return 1.0
        return self.explained_dips / self.total_dips

    def cause_counts(self) -> dict[str, int]:
        """Causal events per type, aggregated over every dip window."""
        tally: Counter[str] = Counter()
        for diagnosis in self.diagnoses:
            tally.update(diagnosis.cause_counts)
        return dict(tally)

    def top_levels(self, n: int = 3) -> list[tuple[int, int]]:
        """The levels whose compactions show up in the most dip windows.

        Returns ``(level, event_count)`` pairs, worst offender first —
        the "which level's compactions hurt the cache" answer.
        """
        tally: Counter[int] = Counter()
        for diagnosis in self.diagnoses:
            tally.update(diagnosis.level_counts)
        return tally.most_common(n)

    def to_json_dict(self) -> dict:
        return {
            "threshold": self.threshold,
            "window_s": self.window_s,
            "total_dips": self.total_dips,
            "explained_dips": self.explained_dips,
            "fraction_explained": self.fraction_explained,
            "cause_counts": self.cause_counts(),
            "top_levels": [
                {"level": level, "events": count}
                for level, count in self.top_levels()
            ],
            "dips": [d.to_json_dict() for d in self.diagnoses],
        }


def diagnose_dips(
    series: TimeSeries,
    records: list[dict],
    threshold: float = 0.7,
    window_s: int | None = None,
    skip: int = 0,
) -> DipReport:
    """Correlate each dip of ``series`` with the causal events before it.

    ``records`` are timestamped event dicts (``{"t": ..., "event": ...}``)
    — a live recorder's ``records`` list or a loaded JSONL trace.  A dip
    sampled at ``t`` is searched over ``(t - window_s, t]``; the default
    window is five sampling intervals of the series.  One interval covers
    the dip sample's own miss-aggregation window; the rest cover the
    re-warm tail — an invalidation's damage keeps surfacing for several
    windows afterwards, as evicted hot keys are touched for the first
    time since and miss, so a cache still refilling can re-cross the
    threshold with no *fresh* event in the dip's immediate window.
    """
    if window_s is None:
        times = series.times
        spacing = times[1] - times[0] if len(times) >= 2 else 20
        window_s = 5 * max(1, spacing)
    causal = [
        record
        for record in records
        if record.get("event") in CAUSAL_EVENT_TYPES
    ]
    causal_times = [int(record["t"]) for record in causal]

    report = DipReport(threshold=threshold, window_s=window_s)
    for dip in find_dips(series, threshold, skip=skip):
        window_start = dip.time - window_s
        lo = bisect_right(causal_times, window_start)
        hi = bisect_right(causal_times, dip.time, lo=lo)
        diagnosis = DipDiagnosis(dip=dip, window_start=window_start)
        for record in causal[lo:hi]:
            name = str(record["event"])
            diagnosis.cause_counts[name] = (
                diagnosis.cause_counts.get(name, 0) + 1
            )
            level = record.get("level")
            if isinstance(level, int):
                diagnosis.level_counts[level] = (
                    diagnosis.level_counts.get(level, 0) + 1
                )
            if len(diagnosis.examples) < _MAX_RECORDED_EVENTS:
                diagnosis.examples.append(dict(record))
        report.diagnoses.append(diagnosis)
    return report


def diagnose_shard_dips(
    shard_series: list["TimeSeries"],
    shard_records: list[list[dict]],
    threshold: float = 0.7,
    window_s: int | None = None,
    skip: int = 0,
) -> dict[int, DipReport]:
    """Per-shard dip attribution over a cluster run.

    ``shard_series[i]`` is shard ``i``'s hit-ratio series and
    ``shard_records[i]`` its event records (a per-shard trace
    recorder's ``records`` or a flight-recorder dump window).  Returns
    one :class:`DipReport` per shard index, so a split's cold-range
    dip on the target shard shows up attributed to the
    ``RangeMigrated``/``CacheInvalidated`` events in its window.
    """
    if len(shard_series) != len(shard_records):
        raise ValueError(
            f"series/records length mismatch: "
            f"{len(shard_series)} vs {len(shard_records)}"
        )
    return {
        shard: diagnose_dips(
            series, records, threshold=threshold,
            window_s=window_s, skip=skip,
        )
        for shard, (series, records) in enumerate(
            zip(shard_series, shard_records)
        )
    }


def format_dip_report(report: DipReport) -> str:
    """Human-readable rendering of a :class:`DipReport`."""
    lines = [
        f"dip diagnosis (threshold {report.threshold:g}, "
        f"window {report.window_s}s)",
        f"  dips: {report.total_dips}  explained: {report.explained_dips}"
        f"  ({report.fraction_explained:.0%})",
    ]
    causes = report.cause_counts()
    if causes:
        rendered = ", ".join(
            f"{name}x{count}"
            for name, count in sorted(
                causes.items(), key=lambda item: -item[1]
            )
        )
        lines.append(f"  causes in windows: {rendered}")
    top = report.top_levels()
    if top:
        rendered = ", ".join(f"L{level} ({count})" for level, count in top)
        lines.append(f"  top offending levels: {rendered}")
    unexplained = [d for d in report.diagnoses if not d.explained]
    if unexplained:
        times = ", ".join(f"t={d.dip.time}" for d in unexplained[:10])
        lines.append(f"  unexplained dips: {times}")
    return "\n".join(lines)
