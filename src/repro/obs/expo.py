"""OpenMetrics-style text exposition of MetricsRegistry snapshots.

Renders the dict shape :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`
produces — plain floats for counters/gauges, ``{count, sum, min, max,
mean, p50, p95, p99}`` dicts for histograms — as the text format
scrapers and humans both read: ``# TYPE`` headers, one sample per line,
label sets in ``{key="value"}`` form, ``# EOF`` terminator.  Histogram
snapshots render as summaries (quantile-labeled samples plus
``_count``/``_sum``).

:func:`render_openmetrics_many` merges several labeled snapshots (e.g.
one per cluster shard) into one exposition with a single ``# TYPE``
header per metric family, which is what ``repro top --metrics-out``
writes.
"""

from __future__ import annotations

import re

#: Quantile labels emitted for histogram snapshots, mapped to the
#: snapshot keys that carry them.
_QUANTILES = (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99"))

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str) -> str:
    """Registry names (dotted) to exposition names (underscored)."""
    cleaned = _INVALID_CHARS.sub("_", name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_set(labels: dict[str, str] | None) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label(str(value))}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    return repr(float(value))


def render_openmetrics_many(
    entries: list[tuple[dict[str, str] | None, dict]],
    prefix: str = "repro_",
) -> str:
    """Render labeled snapshots as one OpenMetrics text exposition.

    ``entries`` is a list of ``(labels, snapshot)`` pairs; samples for
    the same metric from different label sets share one ``# TYPE``
    header, in sorted metric order and entry order within a metric.
    """
    families: dict[str, list[tuple[dict[str, str] | None, object]]] = {}
    for labels, snapshot in entries:
        for name in sorted(snapshot):
            families.setdefault(name, []).append((labels, snapshot[name]))
    lines: list[str] = []
    for name in sorted(families):
        metric = prefix + sanitize_metric_name(name)
        samples = families[name]
        is_summary = any(isinstance(value, dict) for _, value in samples)
        lines.append(f"# TYPE {metric} {'summary' if is_summary else 'gauge'}")
        for labels, value in samples:
            if isinstance(value, dict):
                for quantile, key in _QUANTILES:
                    quantile_labels = dict(labels or {})
                    quantile_labels["quantile"] = quantile
                    lines.append(
                        f"{metric}{_label_set(quantile_labels)} "
                        f"{_format_value(value[key])}"
                    )
                lines.append(
                    f"{metric}_count{_label_set(labels)} "
                    f"{_format_value(value['count'])}"
                )
                lines.append(
                    f"{metric}_sum{_label_set(labels)} "
                    f"{_format_value(value['sum'])}"
                )
            else:
                lines.append(
                    f"{metric}{_label_set(labels)} {_format_value(value)}"
                )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def render_openmetrics(
    snapshot: dict, labels: dict[str, str] | None = None,
    prefix: str = "repro_",
) -> str:
    """Render one registry snapshot as OpenMetrics text."""
    return render_openmetrics_many([(labels, snapshot)], prefix=prefix)
