"""Typed metric instruments and the registry every layer publishes into.

Prior to the observability refactor each subsystem grew its own ad-hoc
counter bundle (``EngineStats``, ``CacheStats``, ``DiskStats``) and the
driver had to know where each one lived.  The registry keeps those typed
dataclasses — they remain the cheapest way to difference snapshots — but
gives every layer one place to *also* publish named instruments, so a
whole engine stack can be inspected (or exported) uniformly:

>>> registry = MetricsRegistry()
>>> flushes = registry.counter("engine.flushes")
>>> flushes.inc()
>>> registry.snapshot()["engine.flushes"]
1.0

Instruments come in three types, mirroring the usual registries
(Prometheus, OpenTelemetry):

* :class:`Counter` — monotonically increasing float;
* :class:`Gauge` — a settable point-in-time value;
* :class:`Histogram` — count/sum/min/max plus reservoir-sampled
  percentiles of observations.

A disabled registry (``MetricsRegistry(enabled=False)``, or the shared
:data:`NULL_REGISTRY`) hands out shared no-op instruments and records
nothing, so instrumented hot paths cost one dynamic dispatch and no
allocation when observability is off.
"""

from __future__ import annotations

import random


class Reservoir:
    """Uniform fixed-size sample of a value stream (Vitter's Algorithm R).

    The first ``capacity`` observations fill the reservoir, after which
    observation ``n`` replaces a random slot with probability
    ``capacity / n`` — every observation ends up retained with equal
    probability, so percentiles over the reservoir estimate the stream's
    percentiles without holding the stream.  This is the single sampling
    implementation shared by :class:`Histogram` and the driver's latency
    reservoir (``repro.sim.metrics.LatencyReservoir`` is an alias).

    ``len()`` reports the number of values *observed* (the stream length),
    not the number retained; iteration yields the retained sample.  The
    RNG is privately seeded, so a reservoir's retained sample is a
    deterministic function of the stream.
    """

    __slots__ = ("capacity", "count", "_rng", "_samples")

    def __init__(self, capacity: int = 8192, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._rng = random.Random(seed)
        self._samples: list[float] = []
        self.count = 0

    def append(self, value: float) -> None:
        """Observe one value (list-compatible name for the drivers)."""
        self.count += 1
        if len(self._samples) < self.capacity:
            self._samples.append(value)
            return
        slot = self._rng.randrange(self.count)
        if slot < self.capacity:
            self._samples[slot] = value

    add = append

    def extend(self, values) -> None:
        """Observe each value of ``values`` in order.

        Exactly equivalent to calling :meth:`append` per value — same
        retained sample, same RNG consumption — but with the per-call
        attribute lookups hoisted out of the loop, so batched recorders
        (the read kernel flushes one tick's latencies at once) pay the
        sampling cost once per batch instead of once per value.
        """
        samples = self._samples
        capacity = self.capacity
        count = self.count
        randrange = self._rng.randrange
        for value in values:
            count += 1
            if len(samples) < capacity:
                samples.append(value)
            else:
                slot = randrange(count)
                if slot < capacity:
                    samples[slot] = value
        self.count = count

    @property
    def samples(self) -> list[float]:
        """A copy of the retained sample (at most ``capacity`` values)."""
        return list(self._samples)

    def __len__(self) -> int:
        return self.count

    def __bool__(self) -> bool:
        return self.count > 0

    def __iter__(self):
        return iter(self._samples)

    def percentile(self, percentile: float) -> float:
        """Estimated stream percentile (e.g. 50, 99) from the sample."""
        if not 0.0 <= percentile <= 100.0:
            raise ValueError(f"percentile must be in [0, 100]: {percentile}")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = min(
            len(ordered) - 1, max(0, round(percentile / 100 * (len(ordered) - 1)))
        )
        return ordered[rank]

    def __eq__(self, other: object) -> bool:
        """Equal iff the retained sample and stream length agree.

        RNG state is deliberately excluded: a reservoir restored by
        :meth:`from_dict` compares equal to its source.
        """
        if not isinstance(other, Reservoir):
            return NotImplemented
        return (
            self.capacity == other.capacity
            and self.count == other.count
            and self._samples == other._samples
        )

    def to_dict(self) -> dict[str, object]:
        """JSON-friendly state: capacity, stream length, retained sample."""
        return {
            "capacity": self.capacity,
            "count": self.count,
            "samples": self.samples,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Reservoir":
        """Rebuild a reservoir from :meth:`to_dict` output.

        The retained sample and stream length are restored exactly (so
        percentiles and the round-trip are lossless); the replacement RNG
        restarts from its seed, which only matters if the restored
        reservoir keeps observing — transport happens on finished runs.
        """
        reservoir = cls(capacity=int(payload["capacity"]))
        reservoir._samples = [float(value) for value in payload["samples"]]
        reservoir.count = int(payload["count"])
        return reservoir


class Counter:
    """A monotonically increasing metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount=})")
        self.value += amount


class Gauge:
    """A point-in-time value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


#: Retained sample size of one histogram — smaller than the driver's
#: latency reservoir (a registry may hold many histograms).
_HISTOGRAM_RESERVOIR_CAPACITY = 1024


class Histogram:
    """Aggregate statistics of a stream of observations.

    Tracks count/sum/min/max exactly and holds a bounded
    :class:`Reservoir` for percentile estimates (p50/p95/p99 in
    snapshots), so a histogram's memory stays constant regardless of
    stream length.
    """

    __slots__ = ("name", "count", "total", "min", "max", "reservoir")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.reservoir = Reservoir(_HISTOGRAM_RESERVOIR_CAPACITY)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.reservoir.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, percentile: float) -> float:
        """Estimated stream percentile (e.g. 50, 99) from the reservoir."""
        return self.reservoir.percentile(percentile)


class _NullCounter(Counter):
    """Shared do-nothing counter handed out by a disabled registry."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter("null")
_NULL_GAUGE = _NullGauge("null")
_NULL_HISTOGRAM = _NullHistogram("null")


class MetricsRegistry:
    """Name-keyed home of every instrument one engine stack publishes.

    Instruments are created on first request and shared on repeat requests
    (so two layers asking for the same name increment the same counter —
    asking for an existing name with a *different* type is an error).
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self._flushers: list = []

    def register_flush(self, callback) -> None:
        """Register a deferred-publication source.

        Hot paths that cannot afford per-operation ``inc`` calls keep
        their counts in plain ints and register a callback here that
        copies them into their instruments.  Callbacks run on
        :meth:`flush`, which :meth:`snapshot` always performs first — so
        a snapshot is never stale, while the hot path pays nothing.
        Disabled registries ignore registrations (zero-cost path).
        """
        if self.enabled:
            self._flushers.append(callback)

    def flush(self) -> None:
        """Run every deferred-publication callback."""
        for callback in self._flushers:
            callback()

    def _get(self, name: str, cls, null_instance):
        if not self.enabled:
            return null_instance
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls(name)
            self._instruments[name] = instrument
        elif type(instrument) is not cls:
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {cls.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, _NULL_COUNTER)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, _NULL_GAUGE)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram, _NULL_HISTOGRAM)

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def snapshot(self) -> dict[str, float | dict[str, float]]:
        """Every instrument's current value, keyed by name.

        Counters and gauges flatten to a float; histograms become a
        ``{count, sum, min, max, mean, p50, p95, p99}`` dict (empty
        histograms report zeroed bounds so the snapshot stays
        JSON-friendly).  Deferred sources are flushed first, so the
        snapshot reflects every hot-path count up to this instant.
        """
        self.flush()
        out: dict[str, float | dict[str, float]] = {}
        for name, instrument in self._instruments.items():
            if isinstance(instrument, Histogram):
                empty = instrument.count == 0
                out[name] = {
                    "count": float(instrument.count),
                    "sum": instrument.total,
                    "min": 0.0 if empty else instrument.min,
                    "max": 0.0 if empty else instrument.max,
                    "mean": instrument.mean,
                    "p50": instrument.percentile(50),
                    "p95": instrument.percentile(95),
                    "p99": instrument.percentile(99),
                }
            else:
                out[name] = instrument.value
        return out


#: Shared disabled registry: layers constructed without a substrate bind to
#: this, making their instrumentation free until somebody cares.
NULL_REGISTRY = MetricsRegistry(enabled=False)
