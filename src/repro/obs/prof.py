"""Read-path span profiling: sampled per-read traces with durations.

The driver prices every read from its :class:`~repro.lsm.base.ReadCost`,
but a priced total cannot say *where* a slow read spent its time — in
Bloom probes, in the cache hierarchy, or queued behind compaction I/O on
the disk.  :class:`SpanProfiler` closes that gap: every ``sample_every``-th
read is decomposed, stage by stage and with the exact arithmetic of
:meth:`~repro.sim.driver.MixedReadWriteDriver.price_read`, into a
:class:`~repro.obs.events.ReadSpan` event carrying per-stage virtual-time
durations (memtable/CPU → Bloom → DB cache → OS cache → random disk →
sequential runs) plus the read's shape counters.  Spans travel the normal
event bus, so the existing :class:`~repro.obs.trace.TraceRecorder` writes
them into the same JSONL trace as compactions and invalidations — a dip
and the reads that suffered it end up on one timeline.

Mirroring :data:`~repro.obs.metrics.NULL_REGISTRY`, the shared
:data:`NULL_PROFILER` is permanently disabled: ``record_read`` returns
immediately, emitting no events, touching no counters and allocating
nothing, so the driver hook is free when nobody profiles.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config import SystemConfig
from repro.obs.events import EventBus, ReadSpan
from repro.storage.iomodel import IOCostModel

if TYPE_CHECKING:  # repro.lsm.base imports repro.obs — keep this one-way.
    from repro.lsm.base import ReadCost

#: Default sampling period: one span per this many reads.
DEFAULT_SAMPLE_EVERY = 32


class SpanProfiler:
    """Samples reads into :class:`~repro.obs.events.ReadSpan` events."""

    __slots__ = (
        "enabled",
        "sample_every",
        "reads_seen",
        "spans_emitted",
        "_bus",
        "_config",
        "_cost_model",
    )

    def __init__(
        self,
        bus: EventBus | None = None,
        config: SystemConfig | None = None,
        sample_every: int = DEFAULT_SAMPLE_EVERY,
        enabled: bool = True,
    ) -> None:
        if enabled and (bus is None or config is None):
            raise ValueError("an enabled SpanProfiler needs a bus and a config")
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self.enabled = enabled
        self.sample_every = sample_every
        self.reads_seen = 0
        self.spans_emitted = 0
        self._bus = bus
        self._config = config
        self._cost_model = IOCostModel(config) if config is not None else None

    def record_read(
        self,
        cost: ReadCost,
        utilization: float,
        pairs_returned: int = 0,
        is_scan: bool = False,
    ) -> None:
        """Observe one completed read; emit a span if it is sampled."""
        if not self.enabled:
            return
        self.reads_seen += 1
        if self.reads_seen % self.sample_every:
            return
        span = self.decompose(
            cost,
            utilization,
            pairs_returned=pairs_returned,
            is_scan=is_scan,
            sample_index=self.reads_seen,
        )
        self.spans_emitted += 1
        self._bus.emit(span)

    def decompose(
        self,
        cost: ReadCost,
        utilization: float,
        pairs_returned: int = 0,
        is_scan: bool = False,
        sample_index: int = 0,
    ) -> ReadSpan:
        """Split one read's modeled time into per-stage durations.

        The stage sum equals the driver's priced per-real-read latency
        (``price_read / ops_scale``) exactly — asserted by the profiler
        tests — so span traces reconcile with the latency reservoir.
        """
        config = self._config
        model = self._cost_model
        cpu_s = config.cache_hit_s + pairs_returned * config.scan_pair_cpu_s
        if is_scan:
            cpu_s += cost.tables_checked * config.scan_table_cpu_s
        bloom_s = model.bloom_probe_s(cost.bloom_probes)
        db_cache_s = cost.cache_hit_blocks * config.block_hit_s
        os_cache_s = cost.os_hit_blocks * config.os_hit_s
        disk_random_s = 0.0
        if cost.disk_random_blocks:
            disk_random_s = model.random_read_s(
                cost.disk_random_blocks, utilization
            )
        disk_seq_s = 0.0
        if cost.seq_runs or cost.seq_kb:
            disk_seq_s = model.sequential_s(
                cost.seq_kb, seeks=cost.seq_runs, utilization=utilization
            )
        total_s = (
            cpu_s + bloom_s + db_cache_s + os_cache_s + disk_random_s + disk_seq_s
        )
        return ReadSpan(
            op="scan" if is_scan else "get",
            sample_index=sample_index,
            total_s=total_s,
            cpu_s=cpu_s,
            bloom_s=bloom_s,
            db_cache_s=db_cache_s,
            os_cache_s=os_cache_s,
            disk_random_s=disk_random_s,
            disk_seq_s=disk_seq_s,
            memtable_probes=cost.memtable_probes,
            index_probes=cost.index_probes,
            bloom_probes=cost.bloom_probes,
            tables_checked=cost.tables_checked,
            db_hit_blocks=cost.cache_hit_blocks,
            os_hit_blocks=cost.os_hit_blocks,
            disk_blocks=cost.disk_random_blocks,
            seq_kb=cost.seq_kb,
            utilization=utilization,
        )


def span_queueing_split(record: dict) -> dict[str, float]:
    """Split one ReadSpan record into queueing delay vs base service time.

    The cost model inflates a span's disk stages by the M/M/1 factor
    ``f = queueing_factor(utilization)``; the *base* device time is the
    inflated time divided by ``f``, and the difference is time the read
    spent queued behind compaction I/O.  CPU, Bloom and cache stages
    never queue, so ``queueing_s + service_s == total_s`` exactly — the
    reconciliation ``repro report`` asserts when rendering the
    decomposition.

    ``record`` is a trace record (or ``dataclasses.asdict`` form) of a
    :class:`~repro.obs.events.ReadSpan`.
    """
    factor = IOCostModel.queueing_factor(record["utilization"])
    disk_s = record["disk_random_s"] + record["disk_seq_s"]
    queueing_s = disk_s * (1.0 - 1.0 / factor)
    return {
        "queueing_s": queueing_s,
        "service_s": record["total_s"] - queueing_s,
        "total_s": record["total_s"],
        "queueing_factor": factor,
    }


#: Shared disabled profiler: the driver binds to this when nobody asked
#: for spans, making the per-read hook one attribute check and a return.
NULL_PROFILER = SpanProfiler(enabled=False)
