"""JSONL event-trace export: a replayable, diffable log of one run.

A :class:`TraceRecorder` subscribes to an :class:`~repro.obs.events.EventBus`
and timestamps every event with the virtual clock.  The result serializes
to JSON Lines — one event per line, so two runs can be compared with
``diff`` and a log can be replayed (or grepped) without loading it whole:

    {"t": 12, "event": "CompactionStart", "level": 0, "input_files": 2, ...}
    {"t": 12, "event": "FileCreated", "file_id": 31, "size_kb": 8, ...}
    ...
    {"t": 300, "event": "TraceEnd", "live_kb": 6144, ...}

The final ``TraceEnd`` record (appended by :meth:`TraceRecorder.finalize`)
carries the closing disk and engine state, so the file-lifecycle ledger in
a trace can be reconciled against the run's end state from the file alone.
``python -m repro.cli trace`` wires this up for any figure run.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import asdict
from pathlib import Path

from repro.clock import VirtualClock
from repro.obs.events import Event, EventBus


class TraceRecorder:
    """Collects timestamped events for JSONL export."""

    def __init__(self, clock: VirtualClock, bus: EventBus | None = None) -> None:
        self._clock = clock
        self.records: list[dict[str, object]] = []
        if bus is not None:
            self.attach(bus)

    def attach(self, bus: EventBus) -> None:
        bus.subscribe_all(self._on_event)

    def _on_event(self, event: Event) -> None:
        record: dict[str, object] = {
            "t": self._clock.now,
            "event": type(event).__name__,
        }
        record.update(asdict(event))
        self.records.append(record)

    def finalize(self, **closing_state: object) -> None:
        """Append the ``TraceEnd`` footer with the run's closing state."""
        record: dict[str, object] = {"t": self._clock.now, "event": "TraceEnd"}
        record.update(closing_state)
        self.records.append(record)

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def counts(self) -> dict[str, int]:
        """Number of recorded events per type name."""
        tally: Counter[str] = Counter(str(r["event"]) for r in self.records)
        return dict(tally)

    # ------------------------------------------------------------------
    # Serialization.
    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """The whole trace as JSON Lines text (trailing newline included)."""
        lines = [json.dumps(r, separators=(",", ":")) for r in self.records]
        return "\n".join(lines) + "\n" if lines else ""

    def write_jsonl(self, path: str | Path) -> int:
        """Write the trace to ``path``; returns the number of records."""
        Path(path).write_text(self.to_jsonl())
        return len(self.records)


def read_jsonl(path: str | Path) -> list[dict[str, object]]:
    """Load a trace written by :meth:`TraceRecorder.write_jsonl`."""
    records: list[dict[str, object]] = []
    for line in Path(path).read_text().splitlines():
        if line.strip():
            records.append(json.loads(line))
    return records
