"""Structured engine events and the bus that carries them.

Per-second sampling (the paper's measurement granularity) cannot explain
*why* a hit-ratio series dips: the causes — a compaction deleting a hot
file, a trim pass emptying a buffer level, a freeze — happen between
samples.  Luo & Carey's performance-stability study makes the same point
for real LSM systems: diagnosing them requires event-level traces.

Every state transition an engine performs is therefore published as one
frozen dataclass on an :class:`EventBus`:

========================= ==================================================
event                     emitted when
========================= ==================================================
:class:`FlushDone`        the memtable was written out as level-0 files
:class:`CompactionStart`  a merge's inputs are chosen, before any I/O
:class:`CompactionEnd`    a merge installed its outputs
:class:`FileCreated`      the table builder allocated one on-disk file
:class:`FileDiscarded`    a file's extent was freed (with the reason)
:class:`CacheInvalidated` a cache dropped a deleted file's resident blocks
:class:`TrimRun`          LSbM's trim pass finished (Algorithm 2)
:class:`BufferFrozen`     a compaction-buffer level froze (repeated data)
:class:`BufferUnfrozen`   a frozen level rotated and resumed buffering
:class:`ReadSpan`         the span profiler sampled one read's path
:class:`RequestShed`      the service layer dropped a request (admission)
:class:`WriteDeferred`    admission control deferred a write with retry-after
:class:`RangeMigrated`    a cluster split moved a key range between shards
:class:`CacheResized`     a runtime controller changed a cache's capacity
:class:`MemtableResized`  a runtime controller moved the write-buffer budget
:class:`ControlDecision`  the runtime controller actuated one knob
========================= ==================================================

The file events form a *ledger*: every ``FileCreated`` must eventually be
matched by a ``FileDiscarded`` or correspond to a live file, and the summed
sizes reconcile with ``disk.live_kb`` — the invariant the engine
conformance tests assert for every engine variant.

A bus with no subscribers short-circuits in ``emit`` and emitters can skip
event construction entirely by checking :attr:`EventBus.active`.
"""

from __future__ import annotations

from collections import Counter as _TallyCounter
from collections.abc import Callable
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class FlushDone:
    """The memtable was flushed into ``files`` level-0 files."""

    entries: int
    files: int
    size_kb: float


@dataclass(frozen=True, slots=True)
class CompactionStart:
    """A merge is about to read its inputs.

    ``level`` is the source level (-1 when the engine has no levels, e.g.
    the flat HBase store); ``kind`` distinguishes merge flavours
    ("merge", "whole-level", "minor", "major").
    """

    level: int
    input_files: int
    input_kb: float
    kind: str = "merge"


@dataclass(frozen=True, slots=True)
class CompactionEnd:
    """A merge installed its outputs and retired its inputs."""

    level: int
    read_kb: float
    write_kb: float
    output_files: int
    obsolete_entries: int
    kind: str = "merge"


@dataclass(frozen=True, slots=True)
class FileCreated:
    """The builder allocated one on-disk file."""

    file_id: int
    size_kb: int
    extent_start: int


@dataclass(frozen=True, slots=True)
class FileDiscarded:
    """A file's extent was freed.

    ``reason`` is "compaction" for normal retirement of merged inputs and
    rewritten outputs, "buffer" for LSbM's compaction-buffer removals
    (trim, pace-removal, freeze).
    """

    file_id: int
    size_kb: int
    reason: str = "compaction"


@dataclass(frozen=True, slots=True)
class CacheInvalidated:
    """A cache dropped the resident blocks of a deleted file."""

    cache: str
    file_id: int
    blocks: int


@dataclass(frozen=True, slots=True)
class TrimRun:
    """One pass of LSbM's trim process completed."""

    removed: int
    run_index: int


@dataclass(frozen=True, slots=True)
class BufferFrozen:
    """A compaction-buffer level stopped accepting appends."""

    level: int


@dataclass(frozen=True, slots=True)
class BufferUnfrozen:
    """A frozen level rotated; buffering resumed."""

    level: int


@dataclass(frozen=True, slots=True)
class ReadSpan:
    """One sampled read's span over the read path (see ``repro.obs.prof``).

    The ``*_s`` fields are modeled per-real-read virtual-time durations,
    decomposed stage by stage exactly as the driver prices the read:
    memtable/CPU work, Bloom probes, DB-cache block hits, OS-page-cache
    hits, random disk blocks, sequential runs.  ``total_s`` is their sum.
    The counters carry the read's shape (how many tables were checked per
    level descent, how many blocks hit which cache), so a trace can say
    *where* a slow read spent its time.
    """

    op: str
    sample_index: int
    total_s: float
    cpu_s: float
    bloom_s: float
    db_cache_s: float
    os_cache_s: float
    disk_random_s: float
    disk_seq_s: float
    memtable_probes: int
    index_probes: int
    bloom_probes: int
    tables_checked: int
    db_hit_blocks: int
    os_hit_blocks: int
    disk_blocks: int
    seq_kb: float
    utilization: float


@dataclass(frozen=True, slots=True)
class RequestShed:
    """The service layer dropped one request instead of queueing it.

    ``reason`` says why: "queue-full" when the bounded scheduler queue
    rejected it, "queue-pressure" or "write-stall" when admission control
    gave up on a write that exhausted its retries.
    """

    klass: str
    op: str
    reason: str
    retries: int = 0


@dataclass(frozen=True, slots=True)
class WriteDeferred:
    """Admission control pushed a write back with a retry-after time.

    The client class is told to re-present the write at ``retry_at_s``
    (virtual seconds); ``reason`` is the backpressure signal that fired
    ("queue-pressure" or "write-stall").
    """

    klass: str
    retry_at_s: float
    reason: str
    retries: int = 0


@dataclass(frozen=True, slots=True)
class RangeMigrated:
    """A live shard split moved the keys ``low <= key < high``.

    Emitted on both shards' buses: ``direction`` is "out" on the source
    and "in" on the target, ``peer`` the other shard's index, ``entries``
    the number of live entries handed over.
    """

    low: int
    high: int
    entries: int
    direction: str
    peer: int


@dataclass(frozen=True, slots=True)
class CacheResized:
    """A runtime controller changed a cache's capacity mid-run.

    ``cache`` names the resized cache ("db_cache" or "os_cache"),
    capacities are in the cache's own units (blocks or pages), and
    ``evicted`` counts the entries dropped to fit a shrink (0 on grow —
    a grown cache adopts incrementally through normal inserts).
    """

    cache: str
    old_capacity: int
    new_capacity: int
    evicted: int = 0


@dataclass(frozen=True, slots=True)
class MemtableResized:
    """A runtime controller moved the engine's write-buffer budget.

    The budget bounds level 0 (memtable + C0') for the gear trigger and
    the write-stall threshold; both budgets are in KB.
    """

    old_kb: int
    new_kb: int


@dataclass(frozen=True, slots=True)
class ControlDecision:
    """The runtime controller actuated one knob.

    ``controller`` is the policy name ("rules", "gradient", ...),
    ``action`` a short verb ("grow-cache", "shed-writes", ...), ``knob``
    the actuated parameter, with its ``old`` and ``new`` values and the
    sensor ``reason`` that drove the decision.
    """

    controller: str
    action: str
    knob: str
    old: float
    new: float
    reason: str


#: Union of every event type, for subscribers that want static typing.
Event = (
    FlushDone
    | CompactionStart
    | CompactionEnd
    | FileCreated
    | FileDiscarded
    | CacheInvalidated
    | TrimRun
    | BufferFrozen
    | BufferUnfrozen
    | ReadSpan
    | RequestShed
    | WriteDeferred
    | RangeMigrated
    | CacheResized
    | MemtableResized
    | ControlDecision
)

Handler = Callable[[Event], None]


class EventBus:
    """Synchronous publish/subscribe fan-out of engine events.

    Handlers run inline on ``emit`` in subscription order, type-specific
    subscribers before catch-all ones.  Handlers must not raise: an engine
    mid-compaction is in no position to unwind observer errors.

    Buffered publication: a driver tick may bracket its work in
    :meth:`begin_buffer`/:meth:`flush_buffer` to deliver the tick's
    events in one amortized pass instead of one call chain per emit.
    Delivery order is preserved exactly (the buffer is a FIFO drained
    through the normal dispatch).  Buffering only engages when *every*
    subscriber declared itself deferrable (``deferrable=True`` at
    subscription): handlers that inspect engine state at emit time —
    invariant checkers, trace recorders — keep their synchronous
    delivery, and the bus silently stays synchronous for everyone.
    """

    __slots__ = (
        "_by_type",
        "_all",
        "active",
        "_buffer",
        "_sync_subscribers",
        "_tallies",
        "counting_only",
    )

    def __init__(self) -> None:
        self._by_type: dict[type, list[Handler]] = {}
        self._all: list[Handler] = []
        #: True once anything subscribed; emitters may skip building
        #: events entirely while this is False.
        self.active = False
        self._buffer: list[Event] | None = None
        self._sync_subscribers = 0
        self._tallies: list["EventTally"] = []
        #: True while every subscriber is an :class:`EventTally`.  Tallies
        #: only look at an event's *type*, so emit sites may then skip
        #: constructing the event object entirely and call :meth:`count`
        #: with the class instead — the observable counts are identical.
        self.counting_only = False

    def subscribe(
        self, event_type: type, handler: Handler, deferrable: bool = False
    ) -> None:
        """Receive every future event of exactly ``event_type``.

        ``deferrable`` promises the handler does not read emitter state
        at delivery time, so end-of-tick batched delivery is equivalent.
        """
        self._by_type.setdefault(event_type, []).append(handler)
        self.active = True
        self.counting_only = False
        if not deferrable:
            self._sync_subscribers += 1

    def subscribe_all(self, handler: Handler, deferrable: bool = False) -> None:
        """Receive every future event of any type (trace recorders)."""
        self._all.append(handler)
        self.active = True
        if isinstance(handler, EventTally):
            self._tallies.append(handler)
            self.counting_only = (
                not self._by_type and len(self._tallies) == len(self._all)
            )
        else:
            self.counting_only = False
        if not deferrable:
            self._sync_subscribers += 1

    def count(self, event_type: type) -> None:
        """Tally one occurrence of ``event_type`` without a payload.

        Only meaningful while :attr:`counting_only` is true; emit sites
        use it to skip event construction when nobody would read the
        fields.  Delivery timing does not matter to a tally, so counting
        happens immediately even inside a buffered tick.
        """
        name = event_type.__name__
        for tally in self._tallies:
            tally.counts[name] += 1

    @property
    def deferrable(self) -> bool:
        """True when every subscriber accepts end-of-tick delivery."""
        return self._sync_subscribers == 0

    def begin_buffer(self) -> bool:
        """Start queueing emits for one batched :meth:`flush_buffer`.

        Returns ``False`` — and stays fully synchronous — if any
        subscriber requires emit-time delivery or a buffer is already
        open; callers flush only when this returned ``True``.
        """
        if self._sync_subscribers or self._buffer is not None:
            return False
        self._buffer = []
        return True

    def flush_buffer(self) -> None:
        """Deliver every queued event in emit order and close the buffer."""
        buffer = self._buffer
        if buffer is None:
            return
        self._buffer = None
        for event in buffer:
            self._dispatch(event)

    def emit(self, event: Event) -> None:
        if not self.active:
            return
        if self._buffer is not None:
            self._buffer.append(event)
            return
        self._dispatch(event)

    def _dispatch(self, event: Event) -> None:
        for handler in self._by_type.get(type(event), ()):
            handler(event)
        for handler in self._all:
            handler(event)


class EventTally:
    """A subscriber counting events by type name (the cheapest observer)."""

    def __init__(self, bus: EventBus | None = None) -> None:
        self.counts: _TallyCounter[str] = _TallyCounter()
        if bus is not None:
            # Counting is order- and time-insensitive, so the tally never
            # forces the bus out of buffered delivery.
            bus.subscribe_all(self, deferrable=True)

    def __call__(self, event: Event) -> None:
        self.counts[type(event).__name__] += 1

    def as_dict(self) -> dict[str, int]:
        return dict(self.counts)
