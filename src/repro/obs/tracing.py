"""End-to-end request tracing for the serve/cluster tier.

Three pieces, all off by default and all deterministic:

* **Trace identity** — :func:`make_trace_id` derives a request's trace
  id from ``(seed, seq)`` alone.  Arrival seqs are assigned on the
  *global* merged stream before any shard filtering
  (:func:`~repro.serve.arrivals.generate_arrivals`), so the same
  request carries the same trace id in a single-engine run, a 1-shard
  cluster, and an N-shard cluster at any ``--jobs`` — cross-layer
  identity without any runtime coordination.

* **Tail-based exemplars** — :class:`RequestTracer` watches every
  completed request but *keeps* full span trees only for the worst
  ``tail_k`` requests by total latency (a min-heap over totals) plus a
  small uniform sample (every ``uniform_every``-th completion), or for
  everything in ``"full"`` mode.  A kept exemplar's service stages come
  from :meth:`~repro.sim.kernel.ReadPricer.stage_terms` — the pricer's
  own addends in its own expression order — so the left-to-right float
  sum of the stages reproduces the recorded service time *bitwise* and
  ``queue + Σstages == total`` holds with reconciliation error exactly
  ``0.0`` (see :func:`reconciliation_error_s`).

* **Flight recorder** — :class:`FlightRecorder` keeps a bounded ring of
  the most recent bus events per shard and dumps the window to JSONL
  when an anomaly trigger fires: a request total above the SLO bound,
  a per-tick stall spike, or a cache hit-ratio sample under the dip
  threshold (the same default threshold the diagnose layer uses).  The
  dumped window is exactly the evidence
  :func:`~repro.obs.diagnose.diagnose_dips` attributes from.

When tracing is off the serve loop holds no tracer and no flight
recorder (plain ``None`` checks, mirroring ``NULL_PROFILER``), the bus
keeps its counting-only amortization, and the hot path is unchanged.
"""

from __future__ import annotations

import heapq
import json
import re
from collections import deque
from dataclasses import asdict, dataclass
from pathlib import Path

from hashlib import blake2b

#: Valid tracing modes for specs and CLI flags.
TRACE_MODES = ("off", "exemplar", "full")

#: Worst-by-total-latency exemplars retained per shard in exemplar mode.
DEFAULT_TAIL_K = 16

#: Uniform-sample period (prime, so it doesn't phase-lock with load).
DEFAULT_UNIFORM_EVERY = 101

#: Hard cap on retained exemplars (guards ``"full"`` mode memory).
DEFAULT_MAX_EXEMPLARS = 10_000

#: Operation kinds a request can carry.
_OPS = ("read", "scan", "write")


def make_trace_id(seed: int, seq: int) -> str:
    """Deterministic 16-hex-digit trace id for request ``seq`` of ``seed``.

    Depends only on the run seed and the request's global sequence
    number, both of which are invariant under shard count and worker
    count — the identity that ties a request's hops together.
    """
    return blake2b(f"{seed}/req/{seq}".encode(), digest_size=8).hexdigest()


def stage_sum_s(stages: list[dict]) -> float:
    """Left-to-right float sum of stage durations (NOT ``math.fsum``).

    Exactness contract: the stages of an exemplar are the pricer's own
    addends in the pricer's own evaluation order, so this plain
    accumulation reproduces the recorded ``service_s`` bit for bit.
    """
    total = 0.0
    for stage in stages:
        total += stage["duration_s"]
    return total


def reconciliation_error_s(exemplar: dict) -> float:
    """|queue_delay + Σ service stages − total| for one exemplar.

    Zero — exactly zero, not merely small — for every exemplar the
    tracer emits: the stage sum equals ``service_s`` bitwise and
    ``total_s`` was computed as ``queue_delay_s + service_s``.
    """
    service = stage_sum_s(exemplar["stages"])
    return abs(exemplar["queue_delay_s"] + service - exemplar["total_s"])


def span_tree(exemplar: dict) -> dict:
    """The nested span-tree view of one exemplar record.

    ``request`` → (``queue``, ``service`` → per-stage leaves).  Derived
    deterministically from the flat record, so comparing exemplar lists
    compares span trees.
    """
    return {
        "name": "request",
        "trace_id": exemplar["trace_id"],
        "start_s": exemplar["arrival_s"],
        "duration_s": exemplar["total_s"],
        "children": [
            {
                "name": "queue",
                "duration_s": exemplar["queue_delay_s"],
                "children": [],
            },
            {
                "name": "service",
                "duration_s": exemplar["service_s"],
                "children": [
                    {"name": stage["stage"], "duration_s": stage["duration_s"]}
                    for stage in exemplar["stages"]
                ],
            },
        ],
    }


def exemplar_summary(exemplar: dict) -> dict:
    """Compact one-line digest of an exemplar for reports and payloads."""
    candidates = [
        {"stage": "queue", "duration_s": exemplar["queue_delay_s"]}
    ] + list(exemplar["stages"])
    top = max(candidates, key=lambda stage: stage["duration_s"])
    return {
        "trace_id": exemplar["trace_id"],
        "seq": exemplar["seq"],
        "shard": exemplar.get("shard"),
        "klass": exemplar["klass"],
        "op": exemplar["op"],
        "sampled": exemplar["sampled"],
        "total_ms": exemplar["total_s"] * 1000.0,
        "queue_ms": exemplar["queue_delay_s"] * 1000.0,
        "service_ms": exemplar["service_s"] * 1000.0,
        "top_stage": top["stage"],
        "top_stage_ms": top["duration_s"] * 1000.0,
    }


def safe_label(text: str) -> str:
    """A label reduced to filename-safe characters."""
    return re.sub(r"[^A-Za-z0-9._-]+", "-", text).strip("-")


class RequestTracer:
    """Tail-biased exemplar sampler over one serve loop's completions.

    The admission decision per completed request is O(1) against the
    current tail heap; a span tree is only *built* for requests that
    are actually kept, so exemplar mode's cost is dominated by the heap
    compare, not by span construction.
    """

    __slots__ = (
        "mode",
        "seed",
        "shard",
        "tail_k",
        "uniform_every",
        "max_exemplars",
        "offered",
        "dropped",
        "_pricer",
        "_cache_hit_s",
        "_tail_heap",
        "_tail",
        "_uniform",
        "_full",
    )

    def __init__(
        self,
        mode: str,
        seed: int,
        shard: int | None = None,
        tail_k: int = DEFAULT_TAIL_K,
        uniform_every: int = DEFAULT_UNIFORM_EVERY,
        max_exemplars: int = DEFAULT_MAX_EXEMPLARS,
    ) -> None:
        if mode not in TRACE_MODES or mode == "off":
            raise ValueError(
                f"tracer mode must be one of {TRACE_MODES[1:]}, got {mode!r}"
            )
        if tail_k < 1:
            raise ValueError(f"tail_k must be >= 1, got {tail_k}")
        if uniform_every < 1:
            raise ValueError(
                f"uniform_every must be >= 1, got {uniform_every}"
            )
        self.mode = mode
        self.seed = seed
        self.shard = shard
        self.tail_k = tail_k
        self.uniform_every = uniform_every
        self.max_exemplars = max_exemplars
        self.offered = 0
        self.dropped = 0
        self._pricer = None
        self._cache_hit_s = 0.0
        #: Min-heap of (total_s, seq) over the retained tail exemplars.
        self._tail_heap: list[tuple[float, int]] = []
        self._tail: dict[int, dict] = {}
        self._uniform: list[dict] = []
        self._full: list[dict] = []

    def bind_pricer(self, pricer) -> None:
        """Adopt the serve loop's pricer (the source of stage terms)."""
        self._pricer = pricer
        self._cache_hit_s = pricer.config.cache_hit_s

    # ------------------------------------------------------------------
    # Sampling decisions.
    # ------------------------------------------------------------------
    def _admit(self, total_s: float, seq: int) -> str | None:
        """Keep this completion?  Returns its sample tag, or ``None``."""
        if self.mode == "full":
            if len(self._full) >= self.max_exemplars:
                self.dropped += 1
                return None
            return "full"
        if (
            (self.offered - 1) % self.uniform_every == 0
            and len(self._uniform) < self.max_exemplars
        ):
            return "uniform"
        heap = self._tail_heap
        if len(heap) < self.tail_k or (total_s, seq) > heap[0]:
            return "tail"
        return None

    def _keep(
        self,
        request,
        queue_delay_s: float,
        service_s: float,
        total_s: float,
        stages: list[dict],
        tag: str,
        extra: dict,
    ) -> None:
        record = {
            "trace_id": make_trace_id(self.seed, request.seq),
            "seq": request.seq,
            "klass": request.klass,
            "op": request.op,
            "shard": self.shard,
            "sampled": tag,
            "retries": request.retries,
            "arrival_s": request.arrival_s,
            "queue_delay_s": queue_delay_s,
            "service_s": service_s,
            "total_s": total_s,
            "stages": stages,
        }
        record.update(extra)
        if tag == "tail":
            if len(self._tail_heap) >= self.tail_k:
                _, evicted = heapq.heapreplace(
                    self._tail_heap, (total_s, request.seq)
                )
                del self._tail[evicted]
            else:
                heapq.heappush(self._tail_heap, (total_s, request.seq))
            self._tail[request.seq] = record
        elif tag == "uniform":
            self._uniform.append(record)
        else:
            self._full.append(record)

    # ------------------------------------------------------------------
    # Completion hooks (called by the serve loop's dispatch).
    # ------------------------------------------------------------------
    def offer_read(
        self,
        request,
        queue_delay_s: float,
        service_s: float,
        total_s: float,
        cost,
        pairs: int,
        utilization: float,
        is_scan: bool,
    ) -> None:
        """Offer a completed read/scan; build its span tree if kept."""
        self.offered += 1
        tag = self._admit(total_s, request.seq)
        if tag is None:
            return
        # Zero-duration terms are dropped for compactness: removing a
        # ``+0.0`` addend from a positive left-to-right sum is bitwise
        # identity (the leading cpu term is always > 0), so the stage
        # sum still equals service_s exactly.
        stages = [
            {"stage": name, "duration_s": seconds}
            for name, seconds in self._pricer.stage_terms(
                cost, pairs, utilization, is_scan
            )
            if seconds != 0.0
        ]
        self._keep(
            request,
            queue_delay_s,
            service_s,
            total_s,
            stages,
            tag,
            {"utilization": utilization},
        )

    def offer_write(
        self,
        request,
        queue_delay_s: float,
        service_s: float,
        total_s: float,
        stall_s: float,
    ) -> None:
        """Offer a completed write: engine ingest plus any stall block."""
        self.offered += 1
        tag = self._admit(total_s, request.seq)
        if tag is None:
            return
        # service_s was computed as cache_hit_s + stall_s, in that
        # order, so these two stages sum to it bitwise (and dropping a
        # zero stall term preserves the sum exactly).
        stages = [{"stage": "engine_write", "duration_s": self._cache_hit_s}]
        if stall_s != 0.0:
            stages.append({"stage": "write_stall", "duration_s": stall_s})
        self._keep(
            request,
            queue_delay_s,
            service_s,
            total_s,
            stages,
            tag,
            {"stall_s": stall_s},
        )

    # ------------------------------------------------------------------
    # Harvest.
    # ------------------------------------------------------------------
    def exemplars(self) -> list[dict]:
        """Every kept exemplar, in global request order."""
        records = self._full + self._uniform + list(self._tail.values())
        return sorted(records, key=lambda record: record["seq"])

    def summary(self) -> dict:
        return {
            "mode": self.mode,
            "offered": self.offered,
            "kept": len(self._full) + len(self._uniform) + len(self._tail),
            "dropped": self.dropped,
            "tail_k": self.tail_k,
            "uniform_every": self.uniform_every,
        }


# ----------------------------------------------------------------------
# Flight recorder.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FlightPolicy:
    """When the flight recorder dumps, and how much it remembers.

    The defaults line up with the rest of the stack: ``dip_threshold``
    matches :func:`~repro.obs.diagnose.diagnose_dips`'s default, and
    ``stall_spike_s`` matches the admission controller's default
    per-window stall budget.
    """

    capacity: int = 512
    slo_total_s: float = 1.0
    stall_spike_s: float = 0.25
    dip_threshold: float = 0.7
    cooldown_s: float = 120.0
    max_dumps: int = 8


class FlightRecorder:
    """Bounded ring of recent events, dumped to JSONL on anomalies.

    Subscribes to the shard's bus (which switches the bus out of
    counting-only mode — the price of having the evidence on hand) and
    timestamps each event with the engine clock.  Triggers are checked
    by the serve loop (``observe_latency`` per completion,
    ``observe_stall`` per tick, ``observe_hit_ratio`` per cache
    sample); each trigger kind has its own cooldown so one sustained
    anomaly doesn't flood the dump budget.
    """

    def __init__(
        self,
        clock,
        bus=None,
        policy: FlightPolicy = FlightPolicy(),
        shard: int | None = None,
        out_dir: str | Path | None = None,
        label: str = "",
    ) -> None:
        self.policy = policy
        self.clock = clock
        self.shard = shard
        self.out_dir = None if out_dir is None else Path(out_dir)
        self.label = safe_label(label) if label else ""
        self.dumps: list[dict] = []
        self.dropped_dumps = 0
        self._ring: deque[dict] = deque(maxlen=policy.capacity)
        self._last_trigger: dict[str, float] = {}
        if bus is not None:
            bus.subscribe_all(self._on_event)

    def _on_event(self, event) -> None:
        record = {"t": self.clock.now, "event": type(event).__name__}
        record.update(asdict(event))
        self._ring.append(record)

    def note(self, t: float, event: str, **fields) -> None:
        """Append a synthetic record (request breadcrumbs, markers)."""
        record = {"t": t, "event": event}
        record.update(fields)
        self._ring.append(record)

    # ------------------------------------------------------------------
    # Trigger checks.
    # ------------------------------------------------------------------
    def observe_latency(
        self, t: float, total_s: float, seq: int, klass: str
    ) -> None:
        if total_s > self.policy.slo_total_s:
            self._trigger(
                "slo-breach",
                t,
                total_s,
                self.policy.slo_total_s,
                {"seq": seq, "klass": klass},
            )

    def observe_stall(self, t: float, stall_tick_s: float) -> None:
        if stall_tick_s > self.policy.stall_spike_s:
            self._trigger(
                "stall-spike", t, stall_tick_s, self.policy.stall_spike_s
            )

    def observe_hit_ratio(self, t: float, ratio: float) -> None:
        if ratio < self.policy.dip_threshold:
            self._trigger(
                "hit-ratio-dip", t, ratio, self.policy.dip_threshold
            )

    def _trigger(
        self,
        kind: str,
        t: float,
        value: float,
        threshold: float,
        detail: dict | None = None,
    ) -> None:
        last = self._last_trigger.get(kind)
        if last is not None and t - last < self.policy.cooldown_s:
            return
        self._last_trigger[kind] = t
        if len(self.dumps) >= self.policy.max_dumps:
            self.dropped_dumps += 1
            return
        dump = {
            "trigger": kind,
            "t": t,
            "value": value,
            "threshold": threshold,
            "shard": self.shard,
            "records": list(self._ring),
        }
        if detail:
            dump.update(detail)
        self.dumps.append(dump)
        if self.out_dir is not None:
            self._write(dump)

    def _write(self, dump: dict) -> None:
        self.out_dir.mkdir(parents=True, exist_ok=True)
        shard_part = "" if self.shard is None else f"_shard{self.shard}"
        name = (
            f"flight_{self.label}{shard_part}"
            f"_{dump['trigger']}_t{dump['t']}.jsonl"
        )
        header = {
            key: value for key, value in dump.items() if key != "records"
        }
        header["event"] = "FlightDump"
        lines = [json.dumps(header, sort_keys=True)]
        lines.extend(
            json.dumps(record, sort_keys=True) for record in dump["records"]
        )
        (self.out_dir / name).write_text("\n".join(lines) + "\n")

    def summary(self) -> dict:
        return {
            "dumps": len(self.dumps),
            "dropped_dumps": self.dropped_dumps,
            "triggers": sorted({dump["trigger"] for dump in self.dumps}),
        }


# ----------------------------------------------------------------------
# JSONL export and schema validation.
# ----------------------------------------------------------------------
def write_exemplars_jsonl(path: str | Path, exemplars: list[dict]) -> int:
    """One exemplar record per line; returns how many were written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = [json.dumps(record, sort_keys=True) for record in exemplars]
    path.write_text("\n".join(lines) + "\n" if lines else "")
    return len(lines)


def validate_exemplar(record: dict) -> None:
    """Schema check for one exemplar record; raises ``ValueError``.

    Also enforces the exactness contract: the record's stage sum must
    reconcile with its queueing-delay + service-time decomposition with
    error exactly ``0.0``.
    """

    def fail(message: str):
        return ValueError(f"invalid exemplar: {message}: {record!r}")

    trace_id = record.get("trace_id")
    if not isinstance(trace_id, str) or not re.fullmatch(
        r"[0-9a-f]{16}", trace_id
    ):
        raise fail("trace_id must be 16 lowercase hex digits")
    if not isinstance(record.get("seq"), int) or record["seq"] < 0:
        raise fail("seq must be a non-negative int")
    if record.get("op") not in _OPS:
        raise fail(f"op must be one of {_OPS}")
    if record.get("sampled") not in ("tail", "uniform", "full"):
        raise fail("sampled must be tail|uniform|full")
    if not isinstance(record.get("klass"), str):
        raise fail("klass must be a string")
    for key in ("arrival_s", "queue_delay_s", "service_s", "total_s"):
        value = record.get(key)
        if not isinstance(value, (int, float)) or value < 0:
            raise fail(f"{key} must be a non-negative number")
    stages = record.get("stages")
    if not isinstance(stages, list) or not stages:
        raise fail("stages must be a non-empty list")
    for stage in stages:
        if not isinstance(stage, dict) or not isinstance(
            stage.get("stage"), str
        ):
            raise fail("each stage needs a 'stage' name")
        duration = stage.get("duration_s")
        if not isinstance(duration, (int, float)) or duration < 0:
            raise fail("each stage needs a non-negative duration_s")
    if reconciliation_error_s(record) != 0.0:
        raise fail("stage durations do not reconcile exactly")


def validate_flight_record(record: dict) -> None:
    """Schema check for one flight-ring or dump-header record."""
    if not isinstance(record.get("t"), (int, float)):
        raise ValueError(f"flight record needs a numeric 't': {record!r}")
    if not isinstance(record.get("event"), str):
        raise ValueError(f"flight record needs an 'event' name: {record!r}")
    if record["event"] == "FlightDump":
        if record.get("trigger") not in (
            "slo-breach",
            "stall-spike",
            "hit-ratio-dip",
        ):
            raise ValueError(f"unknown flight trigger: {record!r}")
        for key in ("value", "threshold"):
            if not isinstance(record.get(key), (int, float)):
                raise ValueError(
                    f"flight dump header needs numeric {key!r}: {record!r}"
                )


def validate_trace_jsonl(path: str | Path) -> int:
    """Validate every line of a trace/flight JSONL file; returns count.

    Exemplar files hold exemplar records (keyed by ``trace_id``);
    flight files hold a ``FlightDump`` header followed by the ring
    window's event records.  Raises ``ValueError`` on the first bad
    line.
    """
    count = 0
    for lineno, line in enumerate(
        Path(path).read_text().splitlines(), start=1
    ):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
            if "trace_id" in record:
                validate_exemplar(record)
            else:
                validate_flight_record(record)
        except ValueError as exc:
            raise ValueError(f"{path}:{lineno}: {exc}") from exc
        count += 1
    if count == 0:
        raise ValueError(f"{path}: empty trace file")
    return count
