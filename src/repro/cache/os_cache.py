"""The OS buffer cache: a page cache over *physical* disk addresses.

Section I distinguishes the OS buffer cache from the DB buffer cache by one
property: "the OS buffer cache is also temporarily used to cache the data
blocks read for compactions, while the DB buffer cache is not."  Every
disk read — query or compaction — passes through it, and compaction writes
are write-allocated too.  With a bounded capacity, the stream of compaction
pages continuously evicts query pages, producing the capacity-miss churn of
Fig. 2's dashed line.

Pages are keyed by physical KB address (extent start + offset), so a block
that a compaction rewrites to a new extent is, correctly, a different page.
"""

from __future__ import annotations

from repro.cache.policy import LRUPolicy, ReplacementPolicy
from repro.cache.stats import CacheStats
from repro.obs.events import CacheResized, EventBus
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry


class OSBufferCache:
    """Bounded page cache keyed by physical page address."""

    def __init__(
        self,
        capacity_pages: int,
        page_size_kb: int = 4,
        policy: ReplacementPolicy | None = None,
    ) -> None:
        if capacity_pages < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity_pages}")
        if page_size_kb < 1:
            raise ValueError(f"page size must be >= 1, got {page_size_kb}")
        self._capacity = capacity_pages
        self._page_size_kb = page_size_kb
        self._policy = policy if policy is not None else LRUPolicy()
        self.stats = CacheStats()
        #: Pages touched by compaction streams (pollution traffic), kept
        #: as a plain int on the hot path and published on flush.
        self._compaction_pages = 0
        self.bind_observability(NULL_REGISTRY, None, "os")

    def bind_observability(
        self,
        registry: MetricsRegistry,
        bus: EventBus | None,
        name: str,
    ) -> None:
        """Publish page-cache counters through ``registry``.

        The page cache is keyed by physical address, not file, so it has
        no file-level invalidations to report on ``bus``; compaction churn
        shows up in its eviction counter instead.

        Publication is deferred (see
        :meth:`~repro.cache.db_cache.DBBufferCache.bind_observability`):
        the hot paths bump plain ints, flushed into the counters on every
        registry flush/snapshot.
        """
        self._obs_name = name
        self._bus = bus
        self._m_hits = registry.counter(f"cache.{name}.hits")
        self._m_misses = registry.counter(f"cache.{name}.misses")
        self._m_evictions = registry.counter(f"cache.{name}.evictions")
        self._m_compaction_pages = registry.counter(
            f"cache.{name}.compaction_pages"
        )
        self._m_offsets = (
            self._m_hits.value - self.stats.hits,
            self._m_misses.value - self.stats.misses,
            self._m_evictions.value - self.stats.evictions,
            self._m_compaction_pages.value - self._compaction_pages,
        )
        registry.register_flush(self._publish_metrics)

    def _publish_metrics(self) -> None:
        """Copy the hot-path ints into the registry counters."""
        stats = self.stats
        hits, misses, evictions, compaction_pages = self._m_offsets
        self._m_hits.value = hits + stats.hits
        self._m_misses.value = misses + stats.misses
        self._m_evictions.value = evictions + stats.evictions
        self._m_compaction_pages.value = (
            compaction_pages + self._compaction_pages
        )

    @property
    def capacity_pages(self) -> int:
        return self._capacity

    @property
    def page_size_kb(self) -> int:
        return self._page_size_kb

    def __len__(self) -> int:
        return len(self._policy)

    @property
    def usage(self) -> float:
        return len(self._policy) / self._capacity

    def _page_of(self, address_kb: int) -> int:
        return address_kb // self._page_size_kb

    def resize(self, capacity_pages: int) -> int:
        """Change the page cache's capacity; returns pages evicted.

        Same contract as :meth:`DBBufferCache.resize`: a shrink evicts
        victims immediately (ordinary evictions), a grow only raises the
        bound and fills through normal inserts.
        """
        if capacity_pages < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity_pages}")
        old = self._capacity
        if capacity_pages == old:
            return 0
        self._capacity = capacity_pages
        evicted = 0
        while len(self._policy) > self._capacity:
            self._policy.evict()
            self.stats.evictions += 1
            evicted += 1
        bus = self._bus
        if bus is not None and bus.active:
            if bus.counting_only:
                bus.count(CacheResized)
            else:
                bus.emit(
                    CacheResized(
                        cache=self._obs_name,
                        old_capacity=old,
                        new_capacity=capacity_pages,
                        evicted=evicted,
                    )
                )
        return evicted

    # ------------------------------------------------------------------
    # Access paths.
    # ------------------------------------------------------------------
    def read(self, address_kb: int) -> bool:
        """A query read of the page containing ``address_kb``.

        Returns ``True`` on a hit; on a miss the page is loaded and
        inserted (the caller charges the disk).
        """
        page = self._page_of(address_kb)
        if page in self._policy:
            self._policy.touch(page)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        self._insert(page)
        return False

    def read_many(self, addresses_kb: list[int]) -> int:
        """Query-read a batch of addresses; returns the hit count.

        Identical to calling :meth:`read` per address in order (same
        eviction sequence, same stats), with per-call dispatch hoisted.
        """
        page_size = self._page_size_kb
        policy = self._policy
        touch = policy.touch
        insert = self._insert
        stats = self.stats
        hits = 0
        for address_kb in addresses_kb:
            page = address_kb // page_size
            if page in policy:
                touch(page)
                hits += 1
            else:
                stats.misses += 1
                insert(page)
        stats.hits += hits
        return hits

    def read_for_compaction(self, address_kb: int, size_kb: int) -> None:
        """A compaction streaming read of ``size_kb`` starting at ``address_kb``.

        Every touched page enters the cache — this is the pollution path.
        Compaction accesses are deliberately *not* counted in ``stats``
        hits/misses: the hit-ratio series must reflect query traffic only,
        as in the paper's measurement.
        """
        first = self._page_of(address_kb)
        last = self._page_of(address_kb + max(size_kb - 1, 0))
        self._compaction_pages += last + 1 - first
        for page in range(first, last + 1):
            if page in self._policy:
                self._policy.touch(page)
            else:
                self._insert(page)

    def write_allocate(self, address_kb: int, size_kb: int) -> None:
        """A compaction write; pages are populated as they are written."""
        self.read_for_compaction(address_kb, size_kb)

    def _insert(self, page: int) -> None:
        while len(self._policy) >= self._capacity:
            self._policy.evict()
            self.stats.evictions += 1
        self._policy.insert(page)
        self.stats.insertions += 1
