"""The DB buffer cache: an application-level block cache indexed by file.

Section I: "The cached data blocks in both OS buffer cache and DB buffer
cache are directly indexed to the data source on the disk."  Concretely, a
cached block is identified by ``(file_id, block_index)``.  When a
compaction deletes a file, every cached block of that file must be dropped
— the *LSM-tree compaction induced cache invalidation* the paper is about.

The cache additionally maintains a per-file count of resident blocks.
LSbM's trim process (Algorithm 2) keeps a file in the compaction buffer
only while the fraction of its blocks in this cache stays above a
threshold; the paper notes the counter updates are "light weight with
little overhead", and they are maintained here on insert/evict/invalidate.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Callable

from repro.cache.policy import LRUPolicy, ReplacementPolicy
from repro.cache.stats import CacheStats
from repro.obs.events import CacheInvalidated, CacheResized, EventBus
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry

#: A cached block's identity: ``(file_id, block_index)``.
BlockKey = tuple[int, int]


class DBBufferCache:
    """Bounded block cache keyed by ``(file_id, block_index)``.

    Parameters
    ----------
    capacity_blocks:
        Maximum number of resident blocks.
    policy:
        Replacement policy; exact LRU by default.
    """

    def __init__(
        self,
        capacity_blocks: int,
        policy: ReplacementPolicy | None = None,
    ) -> None:
        if capacity_blocks < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity_blocks}")
        self._capacity = capacity_blocks
        self._policy = policy if policy is not None else LRUPolicy()
        self._by_file: dict[int, set[int]] = {}
        self._cached_per_file: Counter[int] = Counter()
        self.stats = CacheStats()
        self.bind_observability(NULL_REGISTRY, None, "db")
        #: Optional hook called as ``hook(file_id, block_index)`` whenever a
        #: block leaves the cache by eviction (not invalidation).  The
        #: incremental-warming-up variant uses it to learn which hot blocks
        #: a compaction is about to displace.
        self.eviction_hook: Callable[[int, int], None] | None = None

    def bind_observability(
        self,
        registry: MetricsRegistry,
        bus: EventBus | None,
        name: str,
    ) -> None:
        """Publish hit/miss counters through ``registry`` and
        :class:`~repro.obs.events.CacheInvalidated` events on ``bus``.

        Called by :class:`~repro.substrate.Substrate`; standalone caches
        stay bound to the null registry and no bus.

        Publication is deferred: the access path bumps only the plain-int
        ``stats`` fields, and the registry pulls them into the counters on
        flush (every ``snapshot()`` flushes first), so per-access cost is
        zero and snapshots are never stale.
        """
        self._obs_name = name
        self._bus = bus
        self._m_hits = registry.counter(f"cache.{name}.hits")
        self._m_misses = registry.counter(f"cache.{name}.misses")
        self._m_evictions = registry.counter(f"cache.{name}.evictions")
        self._m_invalidations = registry.counter(f"cache.{name}.invalidations")
        # Offsets absorb whatever the counters and stats held at bind
        # time, so a rebind never double-counts.
        self._m_offsets = (
            self._m_hits.value - self.stats.hits,
            self._m_misses.value - self.stats.misses,
            self._m_evictions.value - self.stats.evictions,
            self._m_invalidations.value - self.stats.invalidations,
        )
        registry.register_flush(self._publish_metrics)

    def _publish_metrics(self) -> None:
        """Copy the hot-path ``stats`` ints into the registry counters."""
        stats = self.stats
        hits, misses, evictions, invalidations = self._m_offsets
        self._m_hits.value = hits + stats.hits
        self._m_misses.value = misses + stats.misses
        self._m_evictions.value = evictions + stats.evictions
        self._m_invalidations.value = invalidations + stats.invalidations

    # ------------------------------------------------------------------
    # Queries about cache content.
    # ------------------------------------------------------------------
    @property
    def capacity_blocks(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._policy)

    @property
    def usage(self) -> float:
        """Resident blocks as a fraction of capacity (Fig. 8's dashed line)."""
        return len(self._policy) / self._capacity

    def resize(self, capacity_blocks: int) -> int:
        """Change the cache's capacity in place; returns blocks evicted.

        Shrinking evicts policy victims immediately (counted as ordinary
        evictions, eviction hook included) until the resident set fits;
        growing just raises the bound — the extra room fills through
        normal inserts, so a grow never disturbs the resident set.
        Publishes :class:`~repro.obs.events.CacheResized` when bound to a
        bus, so dip diagnosis can attribute the resulting misses.
        """
        if capacity_blocks < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity_blocks}")
        old = self._capacity
        if capacity_blocks == old:
            return 0
        self._capacity = capacity_blocks
        evicted = 0
        while len(self._policy) > self._capacity:
            victim = self._policy.evict()
            self._forget(victim)  # type: ignore[arg-type]
            self.stats.evictions += 1
            evicted += 1
            if self.eviction_hook is not None:
                self.eviction_hook(victim[0], victim[1])  # type: ignore[index]
        bus = self._bus
        if bus is not None and bus.active:
            if bus.counting_only:
                bus.count(CacheResized)
            else:
                bus.emit(
                    CacheResized(
                        cache=self._obs_name,
                        old_capacity=old,
                        new_capacity=capacity_blocks,
                        evicted=evicted,
                    )
                )
        return evicted

    def contains(self, file_id: int, block_index: int) -> bool:
        return (file_id, block_index) in self._policy

    def cached_blocks(self, file_id: int) -> int:
        """Number of blocks of ``file_id`` currently resident.

        This is the ``cached`` counter of Algorithm 2.
        """
        return self._cached_per_file.get(file_id, 0)

    def resident_blocks(self, file_id: int) -> frozenset[int]:
        """The resident block indices of one file (read-only view)."""
        return frozenset(self._by_file.get(file_id, ()))

    def resident_file_ids(self) -> list[int]:
        """Every file with at least one cached block.

        The coherence checker sweeps this against the engine's live-file
        set: a file id here that no longer exists on disk is a stale
        cache entry a compaction failed to invalidate.
        """
        return list(self._by_file)

    # ------------------------------------------------------------------
    # The access path.
    # ------------------------------------------------------------------
    def access(self, file_id: int, block_index: int) -> bool:
        """Read one block through the cache.

        Returns ``True`` on a hit.  On a miss the block is loaded (the
        caller charges the disk read) and inserted, evicting LRU victims
        as needed.
        """
        key: BlockKey = (file_id, block_index)
        if key in self._policy:
            self._policy.touch(key)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        self._insert(key)
        return False

    def access_many(self, keys: list[BlockKey]) -> int:
        """Read a batch of blocks through the cache; returns the hit count.

        Identical to calling :meth:`access` per key in order — same
        eviction sequence, same stats — with the per-call dispatch
        hoisted; the batched read kernel and warm-up sweeps use it.
        """
        policy = self._policy
        touch = policy.touch
        insert = self._insert
        stats = self.stats
        hits = 0
        for key in keys:
            if key in policy:
                touch(key)
                hits += 1
            else:
                stats.misses += 1
                insert(key)
        stats.hits += hits
        return hits

    def insert(self, file_id: int, block_index: int) -> None:
        """Insert a block without counting an access (warm-up path)."""
        key: BlockKey = (file_id, block_index)
        if key in self._policy:
            self._policy.touch(key)
            return
        self._insert(key)

    def _insert(self, key: BlockKey) -> None:
        while len(self._policy) >= self._capacity:
            victim = self._policy.evict()
            self._forget(victim)  # type: ignore[arg-type]
            self.stats.evictions += 1
            if self.eviction_hook is not None:
                self.eviction_hook(victim[0], victim[1])  # type: ignore[index]
        self._policy.insert(key)
        file_id, block_index = key
        self._by_file.setdefault(file_id, set()).add(block_index)
        self._cached_per_file[file_id] += 1
        self.stats.insertions += 1

    def _forget(self, key: BlockKey) -> None:
        file_id, block_index = key
        blocks = self._by_file.get(file_id)
        if blocks is not None:
            blocks.discard(block_index)
            if not blocks:
                del self._by_file[file_id]
        remaining = self._cached_per_file[file_id] - 1
        if remaining > 0:
            self._cached_per_file[file_id] = remaining
        else:
            del self._cached_per_file[file_id]

    # ------------------------------------------------------------------
    # Invalidation.
    # ------------------------------------------------------------------
    def invalidate_file(self, file_id: int) -> int:
        """Drop every cached block of ``file_id``; returns how many.

        This is the compaction-induced invalidation: the file's disk
        blocks were deleted or rewritten elsewhere, so cached copies are
        stale by address even when their contents are unchanged.
        """
        blocks = self._by_file.pop(file_id, None)
        if not blocks:
            return 0
        for block_index in blocks:
            self._policy.remove((file_id, block_index))
        dropped = len(blocks)
        del self._cached_per_file[file_id]
        self.stats.invalidations += dropped
        bus = self._bus
        if bus is not None:
            if bus.counting_only:
                bus.count(CacheInvalidated)
            else:
                bus.emit(
                    CacheInvalidated(
                        cache=self._obs_name, file_id=file_id, blocks=dropped
                    )
                )
        return dropped

    def clear(self) -> None:
        """Drop everything (used between experiment phases)."""
        for key in list(self._policy):
            self._policy.remove(key)
        self._by_file.clear()
        self._cached_per_file.clear()
