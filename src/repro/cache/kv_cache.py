"""A key-value store cache (Cassandra-style row cache).

Section I-A's first existing solution: "build a key-value store in DRAM on
top of the LSM-tree ... an independent buffer in memory without any address
indexing to the data source on disks."  Reads check it first by *key*; on a
miss the LSM-tree is consulted and the result is installed.  Because
entries are rows, not blocks, it cannot serve range queries and it competes
with the DB buffer cache for the same DRAM budget — the two weaknesses the
paper's Fig. 11 quantifies (68 QPS for range scans).
"""

from __future__ import annotations

from repro.cache.policy import LRUPolicy, ReplacementPolicy
from repro.cache.stats import CacheStats
from repro.obs.events import EventBus
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry


class KVStoreCache:
    """Bounded key→value LRU cache."""

    def __init__(
        self,
        capacity_pairs: int,
        policy: ReplacementPolicy | None = None,
    ) -> None:
        if capacity_pairs < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity_pairs}")
        self._capacity = capacity_pairs
        self._policy = policy if policy is not None else LRUPolicy()
        self._values: dict[int, object] = {}
        self.stats = CacheStats()
        self.bind_observability(NULL_REGISTRY, None, "kv")

    def bind_observability(
        self,
        registry: MetricsRegistry,
        bus: EventBus | None,
        name: str,
    ) -> None:
        """Publish row-cache counters through ``registry``.

        The row cache is keyed by key, not file, so compactions never
        invalidate it — there are no file events to put on ``bus``.

        Publication is deferred (see
        :meth:`~repro.cache.db_cache.DBBufferCache.bind_observability`):
        the hot paths bump plain ints, flushed into the counters on every
        registry flush/snapshot.
        """
        self._m_hits = registry.counter(f"cache.{name}.hits")
        self._m_misses = registry.counter(f"cache.{name}.misses")
        self._m_evictions = registry.counter(f"cache.{name}.evictions")
        self._m_offsets = (
            self._m_hits.value - self.stats.hits,
            self._m_misses.value - self.stats.misses,
            self._m_evictions.value - self.stats.evictions,
        )
        registry.register_flush(self._publish_metrics)

    def _publish_metrics(self) -> None:
        """Copy the hot-path ``stats`` ints into the registry counters."""
        stats = self.stats
        hits, misses, evictions = self._m_offsets
        self._m_hits.value = hits + stats.hits
        self._m_misses.value = misses + stats.misses
        self._m_evictions.value = evictions + stats.evictions

    @property
    def capacity_pairs(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._values)

    @property
    def usage(self) -> float:
        return len(self._values) / self._capacity

    def get(self, key: int) -> tuple[bool, object | None]:
        """Look up ``key``; returns ``(hit, value)``."""
        if key in self._values:
            self._policy.touch(key)
            self.stats.hits += 1
            return True, self._values[key]
        self.stats.misses += 1
        return False, None

    def get_many(self, keys: list[int]) -> list[tuple[bool, object | None]]:
        """Look up a batch of keys; one ``(hit, value)`` per key in order.

        Identical to calling :meth:`get` per key (same LRU touches, same
        stats), with per-call dispatch hoisted for batched readers.
        """
        values = self._values
        touch = self._policy.touch
        stats = self.stats
        out: list[tuple[bool, object | None]] = []
        append = out.append
        hits = 0
        for key in keys:
            if key in values:
                touch(key)
                hits += 1
                append((True, values[key]))
            else:
                stats.misses += 1
                append((False, None))
        stats.hits += hits
        return out

    def put(self, key: int, value: object) -> None:
        """Install or refresh ``key``.

        Used both to fill on read miss and to keep a written row coherent
        (a write-through update, as Cassandra's row cache does).
        """
        if key in self._values:
            self._values[key] = value
            self._policy.touch(key)
            return
        while len(self._values) >= self._capacity:
            victim = self._policy.evict()
            del self._values[victim]  # type: ignore[arg-type]
            self.stats.evictions += 1
        self._policy.insert(key)
        self._values[key] = value
        self.stats.insertions += 1

    def invalidate(self, key: int) -> bool:
        """Drop ``key`` if resident (alternative write policy)."""
        if key not in self._values:
            return False
        self._policy.remove(key)
        del self._values[key]
        self.stats.invalidations += 1
        return True

    def clear(self) -> None:
        """Drop everything (crash simulation: the row cache is DRAM)."""
        for key in list(self._values):
            self._policy.remove(key)
        self._values.clear()
