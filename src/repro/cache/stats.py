"""Hit/miss accounting shared by every cache implementation."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CacheStats:
    """Cumulative cache counters.

    The simulation driver samples these once per virtual second and
    differences consecutive snapshots to build the hit-ratio time series
    of Figs. 2 and 8.
    """

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Lifetime hit ratio; 0.0 when the cache has never been accessed."""
        if not self.accesses:
            return 0.0
        return self.hits / self.accesses

    def snapshot(self) -> "CacheStats":
        """An independent copy for interval differencing."""
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            insertions=self.insertions,
            evictions=self.evictions,
            invalidations=self.invalidations,
        )

    def interval_hit_ratio(self, earlier: "CacheStats") -> float:
        """Hit ratio of the accesses that happened since ``earlier``."""
        accesses = self.accesses - earlier.accesses
        if accesses <= 0:
            return 0.0
        return (self.hits - earlier.hits) / accesses
