"""Buffer caches: DB block cache, OS page cache, K-V row cache."""

from repro.cache.db_cache import BlockKey, DBBufferCache
from repro.cache.kv_cache import KVStoreCache
from repro.cache.os_cache import OSBufferCache
from repro.cache.policy import ClockPolicy, LRUPolicy, ReplacementPolicy
from repro.cache.stats import CacheStats

__all__ = [
    "BlockKey",
    "CacheStats",
    "ClockPolicy",
    "DBBufferCache",
    "KVStoreCache",
    "LRUPolicy",
    "OSBufferCache",
    "ReplacementPolicy",
]
