"""Replacement policies for block caches.

All three caches the paper discusses (OS buffer cache, DB buffer cache,
key-value store cache) approximate LRU, so LRU is the default policy here.
A CLOCK approximation is provided as well: it is what Linux actually uses
for the page cache, and the ablation benches can swap it in to show the
reproduction's conclusions do not hinge on exact LRU behaviour.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict
from collections.abc import Hashable, Iterator


class ReplacementPolicy(ABC):
    """Tracks a bounded set of keys and chooses eviction victims.

    The policy stores only keys; the owning cache holds any per-key
    bookkeeping and drives the policy through :meth:`touch`,
    :meth:`insert`, :meth:`remove` and :meth:`evict`.
    """

    @abstractmethod
    def touch(self, key: Hashable) -> None:
        """Record an access to a resident key."""

    @abstractmethod
    def insert(self, key: Hashable) -> None:
        """Add a new resident key (must not already be present)."""

    @abstractmethod
    def remove(self, key: Hashable) -> None:
        """Drop a key without treating it as an eviction decision."""

    @abstractmethod
    def evict(self) -> Hashable:
        """Choose and remove the replacement victim."""

    @abstractmethod
    def __contains__(self, key: Hashable) -> bool: ...

    @abstractmethod
    def __len__(self) -> int: ...

    @abstractmethod
    def __iter__(self) -> Iterator[Hashable]: ...


class LRUPolicy(ReplacementPolicy):
    """Exact least-recently-used ordering over an ``OrderedDict``."""

    def __init__(self) -> None:
        self._order: OrderedDict[Hashable, None] = OrderedDict()

    def touch(self, key: Hashable) -> None:
        self._order.move_to_end(key)

    def insert(self, key: Hashable) -> None:
        if key in self._order:
            raise KeyError(f"key already resident: {key!r}")
        self._order[key] = None

    def remove(self, key: Hashable) -> None:
        del self._order[key]

    def evict(self) -> Hashable:
        key, _ = self._order.popitem(last=False)
        return key

    def __contains__(self, key: Hashable) -> bool:
        return key in self._order

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._order)


class ClockPolicy(ReplacementPolicy):
    """Second-chance (CLOCK) approximation of LRU.

    Each resident key has a reference bit; the clock hand sweeps the
    residence order, clearing bits until it finds an unreferenced victim.
    """

    def __init__(self) -> None:
        self._referenced: OrderedDict[Hashable, bool] = OrderedDict()

    def touch(self, key: Hashable) -> None:
        self._referenced[key] = True

    def insert(self, key: Hashable) -> None:
        if key in self._referenced:
            raise KeyError(f"key already resident: {key!r}")
        self._referenced[key] = False

    def remove(self, key: Hashable) -> None:
        del self._referenced[key]

    def evict(self) -> Hashable:
        while True:
            key, referenced = self._referenced.popitem(last=False)
            if not referenced:
                return key
            # Give a second chance: move to the back with the bit cleared.
            self._referenced[key] = False

    def __contains__(self, key: Hashable) -> bool:
        return key in self._referenced

    def __len__(self) -> int:
        return len(self._referenced)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._referenced)
