"""System configuration shared by every subsystem of the reproduction.

The paper (Section VI-A) fixes one hardware/software configuration for all
experiments:

* level 0 (the in-memory write buffer ``C0``) holds 100 MB,
* the size ratio ``r`` between adjacent levels is 10, giving on-disk levels
  of 1 GB, 10 GB and 100 GB,
* files (multi-page blocks) are 2 MB, super-files group ``r`` = 10 files,
* blocks (single-page blocks) are 4 KB, key-value pairs are 1 KB,
* Bloom filters use 15 bits per element,
* the DB buffer cache holds 6 GB,
* the unique dataset is 20 GB, the hot range 3 GB, 98% of reads hot,
* writes arrive at 1,000 operations per second from one thread while eight
  reader threads issue queries, for 20,000 seconds,
* the compaction buffer is trimmed every 30 s with an 80% cached threshold.

Re-running that setup byte-for-byte in Python is neither feasible nor
useful, so :meth:`SystemConfig.paper_scaled` shrinks every *size* by a
common linear factor while keeping every *ratio* (cache/data, hot/data,
``S0``/data, ``r``) and the virtual-time periodicity (level 1 fills every
~1,000 s, level 2 every ~10,000 s) identical.  All behaviour the paper
evaluates is ratio- and period-driven, so the shape of every figure is
preserved.  See DESIGN.md Section 2 for the substitution argument.

All sizes in this module are integers measured in KB unless the name says
otherwise.  One key-value pair occupies ``pair_size_kb`` KB, so sizes and
pair counts are interchangeable through that constant.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.errors import ConfigError

#: Linear scale used by the default scaled configuration.  256 divides every
#: paper size exactly, which keeps all derived quantities integral.
DEFAULT_SCALE = 256

_KB_PER_MB = 1024
_KB_PER_GB = 1024 * 1024


@dataclass(frozen=True)
class SystemConfig:
    """Immutable bundle of every tunable the reproduction uses.

    Instances are cheap value objects; derive variants with
    :meth:`replace`.  Construct paper-faithful instances through
    :meth:`paper` or :meth:`paper_scaled` rather than by hand.
    """

    # ------------------------------------------------------------------
    # Data layout (Section VI-A).
    # ------------------------------------------------------------------
    pair_size_kb: int = 1
    block_size_kb: int = 4
    file_size_kb: int = 2 * _KB_PER_MB
    superfile_files: int = 10

    # ------------------------------------------------------------------
    # Tree shape.
    # ------------------------------------------------------------------
    level0_size_kb: int = 100 * _KB_PER_MB
    size_ratio: int = 10
    num_disk_levels: int = 3

    # ------------------------------------------------------------------
    # Bloom filters.
    # ------------------------------------------------------------------
    bloom_bits_per_key: int = 15

    # ------------------------------------------------------------------
    # Caching.
    # ------------------------------------------------------------------
    cache_size_kb: int = 6 * _KB_PER_GB

    # ------------------------------------------------------------------
    # Dataset and workload (Section VI-B).
    # ------------------------------------------------------------------
    unique_keys: int = 20 * _KB_PER_GB  # 20 GB of 1 KB pairs.
    hot_range_fraction: float = 0.15  # 3 GB / 20 GB.
    hot_read_fraction: float = 0.98
    write_rate_pairs_per_s: float = 1000.0
    read_threads: int = 8
    duration_s: int = 20_000
    scan_length_kb: int = 100

    # ------------------------------------------------------------------
    # LSbM compaction-buffer management (Sections IV-B, VI-A).
    # ------------------------------------------------------------------
    trim_interval_s: int = 30
    trim_threshold: float = 0.8
    #: A level's compaction-buffer list freezes (Section IV-A) once the
    #: fraction of obsolete data dropped by merges into that level, since
    #: the level's last rotation, exceeds this bound.  Uniform writes over
    #: a finite key space always produce a trickle of statistical
    #: duplicates in upper levels; the paper's detector ("the size of
    #: Ci+1 is smaller than the data compacted into it") is only meant to
    #: fire where repetition is structural, e.g. the last level of an
    #: update-heavy workload.  The default tolerates the ~25% statistical
    #: duplication a half-dataset-sized level sees under uniform updates.
    freeze_duplicate_fraction: float = 0.3

    # ------------------------------------------------------------------
    # Compaction design space (Sarkar et al.; see repro.lsm.policy).
    # The four axes are read by the config-driven ``design`` engine (and
    # any named point built on :class:`~repro.lsm.composed.ComposedTree`
    # without explicit axes); the legacy engine classes are fixed points
    # in the same space and ignore these fields.  All four are ordinary
    # sweepable fields (``repro sweep --set compaction_layout=...``).
    # ------------------------------------------------------------------
    compaction_trigger: str = "size-ratio"
    compaction_layout: str = "leveling"
    compaction_granularity: str = "partial"
    compaction_movement: str = "merge"

    # ------------------------------------------------------------------
    # HBase-style store: virtual seconds between periodic major
    # compactions (0 disables them — the configuration the paper's
    # related-work discussion warns about).  A plain config field so it
    # is reachable as a sweep axis like everything else.
    # ------------------------------------------------------------------
    major_interval_s: int = 5_000

    # ------------------------------------------------------------------
    # Durability.  The paper's evaluation never crashes the system, so
    # the write-ahead log defaults off to keep the calibrated compaction
    # traffic identical to the paper's accounting; production deployments
    # would enable it.
    # ------------------------------------------------------------------
    wal_enabled: bool = False

    # ------------------------------------------------------------------
    # I/O cost model (DESIGN.md Section 2).  The per-operation costs are
    # expressed in *unscaled* seconds; ``ops_scale`` tells the driver how
    # many real operations one simulated operation stands for, which is
    # how a 1/256-size simulation still reports paper-comparable QPS.
    # ------------------------------------------------------------------
    seq_bandwidth_kb_per_s: float = 200.0 * _KB_PER_MB  # RAID0 of two HDDs.
    random_read_s: float = 0.015  # Effective random block read incl. queueing.
    cache_hit_s: float = 0.00045  # Per-operation CPU cost of a cached read.
    block_hit_s: float = 0.00002  # Marginal CPU/copy cost per cached block.
    os_hit_s: float = 0.001  # Page-cache hit: syscall + page copy.
    scan_pair_cpu_s: float = 0.00007  # Iterator CPU cost per scanned pair.
    #: CPU cost for positioning a range iterator on one sorted table
    #: (index descent + iterator setup + merge-heap slot).  This is why
    #: "querying one level with multiple sorted tables" hurts SM-tree's
    #: range queries even when every block is cached (Section III).
    scan_table_cpu_s: float = 0.0003
    bloom_probe_s: float = 0.000002
    seek_s: float = 0.005  # One positioning seek for a sequential run.
    ops_scale: float = 1.0

    def __post_init__(self) -> None:
        self.validate()

    # ------------------------------------------------------------------
    # Constructors.
    # ------------------------------------------------------------------
    @classmethod
    def paper(cls) -> "SystemConfig":
        """The exact configuration of Section VI-A (unscaled)."""
        return cls()

    @classmethod
    def paper_scaled(cls, scale: int = DEFAULT_SCALE) -> "SystemConfig":
        """The paper configuration with every size shrunk by ``scale``.

        Ratios, the number of levels, the size ratio ``r`` and all timing
        parameters are untouched; sizes, the dataset, the write rate, the
        sequential bandwidth and the key count shrink together so that
        level-fill periods stay at the paper's ~1,000 s / ~10,000 s marks.
        Per-operation costs are multiplied by ``scale`` (as ``ops_scale``)
        so each simulated read stands for ``scale`` real reads and the
        reported throughput remains paper-comparable.
        """
        if scale < 1:
            raise ConfigError(f"scale must be >= 1, got {scale}")
        base = cls()

        def shrink(kb: int, floor: int) -> int:
            return max(floor, kb // scale)

        block = base.block_size_kb  # Blocks keep their 4 KB identity.
        file_kb = max(block, base.file_size_kb // scale)
        return cls(
            pair_size_kb=base.pair_size_kb,
            block_size_kb=block,
            file_size_kb=file_kb,
            superfile_files=base.superfile_files,
            level0_size_kb=shrink(base.level0_size_kb, file_kb),
            size_ratio=base.size_ratio,
            num_disk_levels=base.num_disk_levels,
            bloom_bits_per_key=base.bloom_bits_per_key,
            cache_size_kb=shrink(base.cache_size_kb, block),
            unique_keys=max(1, base.unique_keys // scale),
            hot_range_fraction=base.hot_range_fraction,
            hot_read_fraction=base.hot_read_fraction,
            write_rate_pairs_per_s=base.write_rate_pairs_per_s / scale,
            read_threads=base.read_threads,
            duration_s=base.duration_s,
            scan_length_kb=base.scan_length_kb,
            trim_interval_s=base.trim_interval_s,
            trim_threshold=base.trim_threshold,
            seq_bandwidth_kb_per_s=base.seq_bandwidth_kb_per_s / scale,
            random_read_s=base.random_read_s,
            cache_hit_s=base.cache_hit_s,
            bloom_probe_s=base.bloom_probe_s,
            seek_s=base.seek_s,
            ops_scale=float(scale),
        )

    @classmethod
    def ssd_scaled(cls, scale: int = DEFAULT_SCALE) -> "SystemConfig":
        """The scaled paper setup on a modern SATA-SSD cost model.

        The paper targets hard disks, where a random block read costs
        three orders of magnitude more than a cached one — that asymmetry
        is what makes compaction-induced cache invalidation so expensive.
        Section VII surveys SSD-oriented LSM work (FD-tree, LOCS,
        WiscKey); this preset lets the extension experiment quantify how
        much of LSbM's advantage survives when misses cost ~100 µs
        instead of ~15 ms.
        """
        base = cls.paper_scaled(scale)
        return base.replace(
            random_read_s=0.0001,  # ~100 µs random 4 KB read.
            seek_s=0.00002,  # Command overhead, no mechanical seek.
            seq_bandwidth_kb_per_s=500.0 * _KB_PER_MB / scale,
        )

    @classmethod
    def tiny(cls) -> "SystemConfig":
        """A minimal configuration for unit tests.

        Four pairs per block, two blocks per file, a 64-pair level 0 and a
        size ratio of 4: big enough to exercise multi-level compactions,
        small enough that a test builds the whole tree in milliseconds.
        """
        return cls(
            pair_size_kb=1,
            block_size_kb=4,
            file_size_kb=8,
            superfile_files=2,
            level0_size_kb=64,
            size_ratio=4,
            num_disk_levels=3,
            bloom_bits_per_key=15,
            cache_size_kb=256,
            unique_keys=4096,
            hot_range_fraction=0.25,
            hot_read_fraction=0.9,
            write_rate_pairs_per_s=16.0,
            read_threads=2,
            duration_s=100,
            scan_length_kb=16,
            trim_interval_s=5,
            trim_threshold=0.8,
            seq_bandwidth_kb_per_s=4096.0,
            ops_scale=1.0,
        )

    def replace(self, **changes: object) -> "SystemConfig":
        """Return a copy with the given fields changed (and re-validated)."""
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------------
    # Derived quantities.
    # ------------------------------------------------------------------
    @property
    def pairs_per_block(self) -> int:
        return self.block_size_kb // self.pair_size_kb

    @property
    def blocks_per_file(self) -> int:
        return self.file_size_kb // self.block_size_kb

    @property
    def pairs_per_file(self) -> int:
        return self.file_size_kb // self.pair_size_kb

    @property
    def superfile_size_kb(self) -> int:
        return self.file_size_kb * self.superfile_files

    @property
    def cache_blocks(self) -> int:
        """Capacity of the DB buffer cache, in blocks."""
        return self.cache_size_kb // self.block_size_kb

    @property
    def foreground_bandwidth_kb_per_s(self) -> float:
        """The real device bandwidth, for pricing foreground transfers.

        ``seq_bandwidth_kb_per_s`` is scaled down with the data so that
        *compaction* traffic and device utilization stay in proportion;
        a foreground read's transfer time, however, is a real-time cost
        of real kilobytes and must be priced at full device speed.
        """
        return self.seq_bandwidth_kb_per_s * self.ops_scale

    @property
    def dataset_kb(self) -> int:
        return self.unique_keys * self.pair_size_kb

    @property
    def hot_range_pairs(self) -> int:
        return int(self.unique_keys * self.hot_range_fraction)

    @property
    def scan_length_pairs(self) -> int:
        return max(1, self.scan_length_kb // self.pair_size_kb)

    def level_capacity_kb(self, level: int) -> int:
        """Maximum size ``Si`` of level ``level`` (0 = the write buffer).

        Follows the paper's balanced-tree rule ``Si = S0 * r**i``.
        """
        if level < 0 or level > self.num_disk_levels:
            raise ConfigError(
                f"level must be in [0, {self.num_disk_levels}], got {level}"
            )
        return self.level0_size_kb * self.size_ratio**level

    # ------------------------------------------------------------------
    # Validation.
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`ConfigError` if any field combination is invalid."""
        if self.pair_size_kb < 1:
            raise ConfigError("pair_size_kb must be >= 1")
        if self.block_size_kb % self.pair_size_kb != 0:
            raise ConfigError("block size must be a multiple of pair size")
        if self.file_size_kb % self.block_size_kb != 0:
            raise ConfigError("file size must be a multiple of block size")
        if self.superfile_files < 1:
            raise ConfigError("superfile_files must be >= 1")
        if self.level0_size_kb < self.file_size_kb:
            raise ConfigError("level 0 must hold at least one file")
        if self.size_ratio < 2:
            raise ConfigError("size_ratio must be >= 2")
        if self.num_disk_levels < 1:
            raise ConfigError("num_disk_levels must be >= 1")
        if self.bloom_bits_per_key < 1:
            raise ConfigError("bloom_bits_per_key must be >= 1")
        if self.cache_size_kb < self.block_size_kb:
            raise ConfigError("cache must hold at least one block")
        if self.unique_keys < 1:
            raise ConfigError("unique_keys must be >= 1")
        if not 0.0 < self.hot_range_fraction <= 1.0:
            raise ConfigError("hot_range_fraction must be in (0, 1]")
        if not 0.0 <= self.hot_read_fraction <= 1.0:
            raise ConfigError("hot_read_fraction must be in [0, 1]")
        if self.write_rate_pairs_per_s < 0:
            raise ConfigError("write rate must be non-negative")
        if self.read_threads < 0:
            raise ConfigError("read_threads must be non-negative")
        if self.trim_interval_s < 1:
            raise ConfigError("trim_interval_s must be >= 1")
        if not 0.0 < self.trim_threshold <= 1.0:
            raise ConfigError("trim_threshold must be in (0, 1]")
        if not 0.0 <= self.freeze_duplicate_fraction <= 1.0:
            raise ConfigError("freeze_duplicate_fraction must be in [0, 1]")
        # Deferred import: policy sits above config in the layering, but
        # it is the single source of truth for the axis vocabulary.
        from repro.lsm.policy import CompactionAxes

        CompactionAxes(
            trigger=self.compaction_trigger,
            layout=self.compaction_layout,
            granularity=self.compaction_granularity,
            movement=self.compaction_movement,
        )
        if self.major_interval_s < 0:
            raise ConfigError("major_interval_s must be >= 0 (0 disables)")
        if self.seq_bandwidth_kb_per_s <= 0:
            raise ConfigError("sequential bandwidth must be positive")
        if self.ops_scale < 1.0:
            raise ConfigError("ops_scale must be >= 1")
