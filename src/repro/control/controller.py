"""Feedback controllers for the serve loop.

Closed-loop tuning for LSM stores follows Luo & Carey's memory-wall
playbook: watch write stalls and cache efficiency, and move memory
between the write path (memtable budget) and the read path (serving
cache) while pacing background work so maintenance I/O lands when the
foreground can afford it.  Three policies share one surface:

``static``
    A proven no-op.  It observes nothing and touches nothing, so a
    ``--controller static`` run's event stream is byte-identical to a
    controller-free run — the regression anchor for the other two.

``rules``
    Banded hysteresis.  Stall pressure above the high band shifts one
    memory step from the serving cache to the memtable budget, defers
    trim/major compactions and tightens admission; sustained calm with
    cache-hit headroom reverses the moves one step at a time.  A dwell
    counter (consecutive intervals in the same band) gates every
    action, so the controller cannot flap on a single noisy interval.

``gradient``
    Hill-climbing on one scalar — the memtable share of the combined
    memory budget — scoring each interval by completions minus a stall
    penalty.  The step halves on every direction reversal, converging
    near the workload's current optimum and re-expanding when a shifted
    workload moves it.

Determinism: controllers draw no randomness and read only engine/serve
state that is itself deterministic, so decision streams are identical
across ``--jobs`` fan-outs.  All actuation goes through the engines'
validated runtime knobs (``set_memtable_budget``, ``Cache.resize``,
``TrimProcess.retune``, ``AdmissionController.retune``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ConfigError
from repro.obs.events import ControlDecision

#: Controller registry: "off" disables control entirely (no object is
#: constructed, the step loop pays only a None check).
CONTROLLER_NAMES = ("off", "static", "rules", "gradient")

#: Default virtual seconds between control ticks.
DEFAULT_CONTROL_INTERVAL_S = 30


@dataclass(frozen=True)
class ControlSensors:
    """One control tick's snapshot of the live metrics plane."""

    now: int
    #: Scheduler depth and its fraction of the admission bound.
    queue_depth: int
    queue_fraction: float
    #: Stall seconds accrued since the previous control tick.
    stall_delta_s: float
    #: Stall seconds inside the admission window (what ``decide`` sees).
    recent_stall_s: float
    #: Serving-cache hit ratio over the control interval.
    hit_ratio: float
    #: Requests completed since the previous control tick.
    completed_delta: int
    #: Writes deferred since the previous control tick.
    deferred_delta: int
    #: Memtable fill fraction against the live budget.
    l0_pressure: float


class Controller:
    """Shared sensor/actuator plumbing for every policy.

    ``bind`` attaches the controller to one :class:`ServiceSimulator`'s
    stack (engine, admission, scheduler) and snapshots the interval
    baselines; ``tick`` is called by the serve loop every
    ``interval_s`` virtual seconds and returns the decisions made, each
    already emitted as a :class:`ControlDecision` on the engine bus.
    """

    name = "controller"

    def __init__(self, interval_s: int = DEFAULT_CONTROL_INTERVAL_S) -> None:
        if interval_s < 1:
            raise ConfigError("control interval must be >= 1 virtual second")
        self.interval_s = int(interval_s)
        self.decisions_made = 0
        self._sim = None
        self._engine = None

    # ------------------------------------------------------------------
    # Wiring.
    # ------------------------------------------------------------------
    def bind(self, simulator) -> None:
        """Attach to a serve stack and snapshot interval baselines."""
        self._sim = simulator
        self._engine = simulator.engine
        self._m_decisions = self._engine.registry.counter("control.decisions")
        self._m_ticks = self._engine.registry.counter("control.ticks")
        self._last_stall = self._engine.stats.stall_seconds
        self._last_completed = simulator._completed_count
        self._last_deferred = self._event_count("WriteDeferred")
        cache = self._engine.metric_cache
        self._last_cache = cache.stats.snapshot() if cache is not None else None
        #: The memory ledger: moves conserve cache_kb + memtable_kb.
        self._base_memtable_kb = self._engine.memtable_budget_kb
        self._base_cache_units = self._cache_capacity()
        self._unit_kb = self._engine.config.block_size_kb

    def _event_count(self, name: str) -> int:
        return self._sim.event_tally.counts.get(name, 0)

    def _cache(self):
        return self._engine.metric_cache

    def _cache_capacity(self) -> int:
        cache = self._cache()
        if cache is None:
            return 0
        if hasattr(cache, "capacity_blocks"):
            return cache.capacity_blocks
        return cache.capacity_pages

    # ------------------------------------------------------------------
    # Sensing.
    # ------------------------------------------------------------------
    def sense(self, now: int) -> ControlSensors:
        engine = self._engine
        sim = self._sim
        stall_total = engine.stats.stall_seconds
        stall_delta = stall_total - self._last_stall
        self._last_stall = stall_total
        completed = sim._completed_count
        completed_delta = completed - self._last_completed
        self._last_completed = completed
        deferred = self._event_count("WriteDeferred")
        deferred_delta = deferred - self._last_deferred
        self._last_deferred = deferred
        cache = self._cache()
        if cache is not None and self._last_cache is not None:
            hit_ratio = cache.stats.interval_hit_ratio(self._last_cache)
            self._last_cache = cache.stats.snapshot()
        else:
            hit_ratio = 0.0
        depth = len(sim.scheduler)
        bound = sim.admission.policy.queue_bound
        return ControlSensors(
            now=now,
            queue_depth=depth,
            queue_fraction=depth / bound,
            stall_delta_s=stall_delta,
            recent_stall_s=sim._recent_stall_s(),
            hit_ratio=hit_ratio,
            completed_delta=completed_delta,
            deferred_delta=deferred_delta,
            l0_pressure=engine.l0_pressure,
        )

    # ------------------------------------------------------------------
    # Actuation.  Every helper returns a decision dict when state moved
    # (and None when the request was a no-op), mirrored onto the bus.
    # ------------------------------------------------------------------
    def _record(
        self, now: int, action: str, knob: str,
        old: float, new: float, reason: str,
    ) -> dict:
        self.decisions_made += 1
        self._m_decisions.inc()
        bus = self._engine.bus
        if bus.active:
            if bus.counting_only:
                bus.count(ControlDecision)
            else:
                bus.emit(
                    ControlDecision(
                        controller=self.name, action=action, knob=knob,
                        old=float(old), new=float(new), reason=reason,
                    )
                )
        return {
            "t": now, "controller": self.name, "action": action,
            "knob": knob, "old": float(old), "new": float(new),
            "reason": reason,
        }

    def _set_memtable_budget(self, now, budget_kb, reason) -> dict | None:
        engine = self._engine
        old = engine.memtable_budget_kb
        engine.set_memtable_budget(int(budget_kb))
        new = engine.memtable_budget_kb
        if new == old:
            return None
        return self._record(
            now, "memtable-budget", "memtable_budget_kb", old, new, reason
        )

    def _resize_cache(self, now, capacity, reason) -> dict | None:
        cache = self._cache()
        if cache is None:
            return None
        old = self._cache_capacity()
        capacity = max(1, int(capacity))
        if capacity == old:
            return None
        cache.resize(capacity)
        return self._record(
            now, "cache-resize", "cache_capacity", old, capacity, reason
        )

    def _retune_trim(self, now, interval_s, reason) -> dict | None:
        trim = getattr(self._engine, "trim", None)
        if trim is None:
            return None
        old = trim.interval_s
        trim.retune(interval_s=interval_s)
        if trim.interval_s == old:
            return None
        return self._record(
            now, "trim-pace", "trim_interval_s", old, trim.interval_s, reason
        )

    def _set_major_interval(self, now, interval_s, reason) -> dict | None:
        engine = self._engine
        if getattr(engine, "major_interval_s", None) is None:
            return None
        old = engine.major_interval_s
        new = max(1, int(interval_s))
        if new == old:
            return None
        engine.major_interval_s = new
        return self._record(
            now, "major-pace", "major_interval_s", old, new, reason
        )

    def _retune_admission(self, now, fraction, reason) -> dict | None:
        admission = self._sim.admission
        old = admission.policy.admit_queue_fraction
        fraction = min(1.0, max(0.25, float(fraction)))
        if abs(fraction - old) < 1e-9:
            return None
        admission.retune(admit_queue_fraction=fraction)
        return self._record(
            now, "admission", "admit_queue_fraction", old, fraction, reason
        )

    # ------------------------------------------------------------------
    # Memory rebalancing: shift ``step_kb`` between the serving cache
    # and the memtable budget, conserving their combined footprint.
    # ------------------------------------------------------------------
    def _shift_memory(self, now, to_memtable_kb, reason) -> list[dict]:
        """Move ``to_memtable_kb`` (may be negative) cache → memtable."""
        engine = self._engine
        decisions: list[dict] = []
        unit = self._unit_kb
        units = int(to_memtable_kb) // unit
        if units == 0:
            return decisions
        old_cache = self._cache_capacity()
        floor_units = max(1, self._base_cache_units // 4)
        cap_units = self._base_cache_units * 2
        new_cache = min(cap_units, max(floor_units, old_cache - units))
        moved_kb = (old_cache - new_cache) * unit
        floor_kb = engine.config.file_size_kb
        cap_kb = self._base_memtable_kb * 4
        target_kb = min(
            cap_kb, max(floor_kb, engine.memtable_budget_kb + moved_kb)
        )
        decision = self._set_memtable_budget(now, target_kb, reason)
        if decision is not None:
            decisions.append(decision)
            actual_kb = decision["new"] - decision["old"]
            new_cache = old_cache - int(actual_kb) // unit
        resized = self._resize_cache(now, new_cache, reason)
        if resized is not None:
            decisions.append(resized)
        return decisions

    # ------------------------------------------------------------------
    # Policy hook.
    # ------------------------------------------------------------------
    def tick(self, now: int) -> list[dict]:
        """One control interval: sense, decide, actuate."""
        raise NotImplementedError


class StaticController(Controller):
    """The null policy: binds, then provably does nothing.

    It does not sense, emit, or bump registry counters — its run is
    indistinguishable from a controller-free run on every channel the
    differential tests compare (events, metrics, results).
    """

    name = "static"

    def bind(self, simulator) -> None:
        # Deliberately skip the base wiring: registering even zero-valued
        # ``control.*`` instruments would show up in the run's metrics
        # snapshot and break the "indistinguishable" guarantee.
        self._sim = simulator
        self._engine = simulator.engine

    def tick(self, now: int) -> list[dict]:
        return []


class RulesController(Controller):
    """Banded hysteresis over stall pressure and cache-hit headroom."""

    name = "rules"

    #: Stall seconds per interval above which the write path is starved.
    high_stall_band_s = 0.2
    #: Stall seconds per interval below which the system is calm.
    low_stall_band_s = 0.02
    #: Interval hit ratio under which the read path wants memory back.
    hit_floor = 0.85
    #: Consecutive same-band intervals required before acting.
    dwell_ticks = 2

    def __init__(self, interval_s: int = DEFAULT_CONTROL_INTERVAL_S) -> None:
        super().__init__(interval_s)
        self._pressure_dwell = 0
        self._calm_dwell = 0

    def tick(self, now: int) -> list[dict]:
        sensors = self.sense(now)
        self._m_ticks.inc()
        decisions: list[dict] = []
        pressured = (
            sensors.stall_delta_s > self.high_stall_band_s
            or sensors.deferred_delta > 0
            or sensors.queue_fraction >= 0.9
        )
        calm = (
            sensors.stall_delta_s < self.low_stall_band_s
            and sensors.deferred_delta == 0
            and sensors.queue_fraction < 0.5
        )
        if pressured:
            self._pressure_dwell += 1
            self._calm_dwell = 0
        elif calm:
            self._calm_dwell += 1
            self._pressure_dwell = 0
        else:
            self._pressure_dwell = 0
            self._calm_dwell = 0
            return decisions
        step_kb = max(self._unit_kb, self._base_memtable_kb // 4)
        def push(decision: dict | None) -> None:
            if decision is not None:
                decisions.append(decision)

        if pressured and self._pressure_dwell >= self.dwell_ticks:
            reason = (
                f"stall {sensors.stall_delta_s:.3f}s/"
                f"defer {sensors.deferred_delta}/interval"
            )
            decisions.extend(self._shift_memory(now, step_kb, reason))
            trim = getattr(self._engine, "trim", None)
            if trim is not None:
                base = self._engine.config.trim_interval_s
                push(self._retune_trim(
                    now, min(base * 4, trim.interval_s * 2), reason
                ))
            major = getattr(self._engine, "major_interval_s", None)
            if major is not None:
                base = self._engine.config.major_interval_s
                push(self._set_major_interval(
                    now, min(base * 4, major * 2), reason
                ))
            push(self._retune_admission(
                now,
                self._sim.admission.policy.admit_queue_fraction - 0.125,
                reason,
            ))
            self._pressure_dwell = 0
        elif calm and self._calm_dwell >= self.dwell_ticks:
            reason = (
                f"calm, hit {sensors.hit_ratio:.2f} "
                f"< {self.hit_floor:g}"
                if sensors.hit_ratio < self.hit_floor
                else "calm, restore"
            )
            if (
                sensors.hit_ratio < self.hit_floor
                or self._engine.memtable_budget_kb > self._base_memtable_kb
            ):
                decisions.extend(self._shift_memory(now, -step_kb, reason))
            trim = getattr(self._engine, "trim", None)
            if trim is not None:
                base = self._engine.config.trim_interval_s
                if trim.interval_s > base:
                    push(self._retune_trim(
                        now, max(base, trim.interval_s // 2), reason
                    ))
            major = getattr(self._engine, "major_interval_s", None)
            if major is not None:
                base = self._engine.config.major_interval_s
                if major > base:
                    push(self._set_major_interval(
                        now, max(base, major // 2), reason
                    ))
            push(self._retune_admission(
                now,
                self._sim.admission.policy.admit_queue_fraction + 0.125,
                reason,
            ))
            self._calm_dwell = 0
        return decisions


class GradientController(Controller):
    """Hill-climb on the memtable share of the combined memory budget."""

    name = "gradient"

    #: Score = completions − penalty × stall seconds, per interval.
    stall_penalty = 2000.0
    #: Initial move, as a fraction of the combined budget.
    initial_step = 0.10
    min_step = 0.02
    #: Memtable share is clamped to this range of the combined budget.
    min_share = 0.05
    max_share = 0.75

    def __init__(self, interval_s: int = DEFAULT_CONTROL_INTERVAL_S) -> None:
        super().__init__(interval_s)
        self._step = self.initial_step
        self._direction = 1
        self._last_score: float | None = None

    def bind(self, simulator) -> None:
        super().bind(simulator)
        cache_kb = self._base_cache_units * self._unit_kb
        self._total_kb = cache_kb + self._base_memtable_kb
        self._share = self._base_memtable_kb / self._total_kb

    def tick(self, now: int) -> list[dict]:
        sensors = self.sense(now)
        self._m_ticks.inc()
        score = (
            sensors.completed_delta
            - self.stall_penalty * sensors.stall_delta_s
        )
        if self._last_score is not None and score < self._last_score:
            # The last move hurt: back off, try the other way, smaller.
            self._direction = -self._direction
            self._step = max(self.min_step, self._step / 2.0)
        self._last_score = score
        share = min(
            self.max_share,
            max(self.min_share, self._share + self._direction * self._step),
        )
        if abs(share - self._share) < 1e-9:
            # Pinned at a clamp: probe back toward the interior.
            self._direction = -self._direction
            return []
        delta_kb = (share - self._share) * self._total_kb
        reason = (
            f"score {score:.0f} (goodput {sensors.completed_delta}, "
            f"stall {sensors.stall_delta_s:.3f}s), share "
            f"{self._share:.2f}->{share:.2f}"
        )
        decisions = self._shift_memory(now, delta_kb, reason)
        if decisions:
            self._share = share
        return decisions


_CONTROLLERS = {
    "static": StaticController,
    "rules": RulesController,
    "gradient": GradientController,
}


def make_controller(
    name: str, interval_s: int = DEFAULT_CONTROL_INTERVAL_S
) -> Controller | None:
    """Build a controller by registry name; ``"off"`` yields ``None``."""
    if name == "off":
        return None
    factory = _CONTROLLERS.get(name)
    if factory is None:
        raise ConfigError(
            f"unknown controller {name!r}; choose from {CONTROLLER_NAMES}"
        )
    return factory(interval_s=interval_s)
