"""Adaptive runtime control: close the loop from live metrics to knobs.

The serve layer's sensors (stall deltas, cache hit ratio, queue depth,
deferral pressure) feed a per-run :class:`~repro.control.controller.Controller`
that drives three actuator families — memory rebalancing between the
serving cache and the memtable budget, compaction pacing (trim retune,
major-compaction interval), and admission thresholds.  Every decision is
a structured :class:`~repro.obs.events.ControlDecision` bus event plus a
plain dict riding the lossless result transport, so controller runs stay
jobs-independent and re-renderable.
"""

from repro.control.controller import (
    CONTROLLER_NAMES,
    Controller,
    ControlSensors,
    GradientController,
    RulesController,
    StaticController,
    make_controller,
)

__all__ = [
    "CONTROLLER_NAMES",
    "Controller",
    "ControlSensors",
    "GradientController",
    "RulesController",
    "StaticController",
    "make_controller",
]
