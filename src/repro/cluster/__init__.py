"""The cluster tier: sharded serving over the single-engine substrate.

``repro.cluster`` partitions the keyspace across N engine shards behind
a seeded router (consistent hashing or contiguous ranges), drives each
shard with its own bounded scheduler and admission controller through
the open-loop serve layer, and fans shard execution over the sweep
runner's process pool.  Live shard splits migrate a key range between
shards mid-run without violating the KV contract — verified against a
cluster-wide :class:`~repro.check.oracle.KVOracle`.
"""

from repro.cluster.result import ClusterResult, MigrationReport
from repro.cluster.ring import (
    DEFAULT_VNODES,
    PARTITIONERS,
    HashRing,
    RangePartitioner,
    SplitRouter,
)
from repro.cluster.run import (
    OracleObserver,
    cluster_payload,
    run_cluster,
    run_cluster_grid,
    run_coordinated,
)
from repro.cluster.shard import ShardSpec, execute_shard, prepare_shard
from repro.cluster.spec import ClusterSpec, expand_cluster_grid

__all__ = [
    "DEFAULT_VNODES",
    "PARTITIONERS",
    "ClusterResult",
    "ClusterSpec",
    "HashRing",
    "MigrationReport",
    "OracleObserver",
    "RangePartitioner",
    "ShardSpec",
    "SplitRouter",
    "cluster_payload",
    "execute_shard",
    "expand_cluster_grid",
    "prepare_shard",
    "run_cluster",
    "run_cluster_grid",
    "run_coordinated",
]
