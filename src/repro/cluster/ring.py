"""Keyspace routers: seeded consistent hashing and range partitioning.

A cluster run places every key on exactly one shard.  Two placement
disciplines are provided:

* :class:`HashRing` — classic consistent hashing with virtual nodes.
  Each shard contributes ``vnodes`` points on a 64-bit ring, positions
  derived from a seeded BLAKE2b hash so the layout is a pure function
  of ``(shard ids, vnodes, seed)``; a key routes to the owner of the
  first point at or after its own hashed position.  Balanced under any
  key distribution (including RangeHot's contiguous hot range, which it
  shatters across shards) and *minimally disruptive*: adding or
  removing a shard only remaps keys into/out of that shard — the
  property the hypothesis suite pins.
* :class:`RangePartitioner` — contiguous key slices, the HBase/Bigtable
  discipline.  Keeps range locality (scans stay single-shard) at the
  price of skew under hot ranges — which is exactly the hot-shard
  regime the cluster benchmark measures — and supports precise
  *split* operations: :class:`SplitRouter` overlays a migrated
  sub-range onto any base router.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from collections.abc import Sequence

from repro.errors import ConfigError

#: Default virtual nodes per shard; enough that a 64-bit ring balances
#: within a few tens of percent for small shard counts.
DEFAULT_VNODES = 64

PARTITIONERS = ("hash", "range")


def _point(text: str) -> int:
    """A deterministic 64-bit ring position for ``text``."""
    digest = hashlib.blake2b(text.encode("ascii"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Seeded consistent-hash router over integer shard ids."""

    def __init__(
        self,
        shards: int | Sequence[int],
        vnodes: int = DEFAULT_VNODES,
        seed: int = 0,
    ) -> None:
        if isinstance(shards, int):
            shard_ids: tuple[int, ...] = tuple(range(shards))
        else:
            shard_ids = tuple(shards)
        if not shard_ids:
            raise ConfigError("hash ring needs at least one shard")
        if len(set(shard_ids)) != len(shard_ids):
            raise ConfigError(f"duplicate shard ids: {sorted(shard_ids)}")
        if vnodes < 1:
            raise ConfigError(f"vnodes must be >= 1, got {vnodes}")
        self.shard_ids = shard_ids
        self.vnodes = vnodes
        self.seed = seed
        points = sorted(
            (_point(f"{seed}/shard/{shard}/vnode/{vnode}"), shard)
            for shard in shard_ids
            for vnode in range(vnodes)
        )
        self._positions = [position for position, _ in points]
        self._owners = [shard for _, shard in points]

    def shard_for(self, key: int) -> int:
        """The shard owning ``key``: first ring point clockwise of it."""
        position = _point(f"{self.seed}/key/{key}")
        index = bisect_right(self._positions, position)
        if index == len(self._positions):
            index = 0  # Wrap around the ring.
        return self._owners[index]

    def with_shard_added(self, shard: int) -> "HashRing":
        """The ring after ``shard`` joins (same seed, same vnodes)."""
        if shard in self.shard_ids:
            raise ConfigError(f"shard {shard} already on the ring")
        return HashRing(self.shard_ids + (shard,), self.vnodes, self.seed)

    def with_shard_removed(self, shard: int) -> "HashRing":
        """The ring after ``shard`` leaves."""
        if shard not in self.shard_ids:
            raise ConfigError(f"shard {shard} not on the ring")
        remaining = tuple(s for s in self.shard_ids if s != shard)
        return HashRing(remaining, self.vnodes, self.seed)


class RangePartitioner:
    """Contiguous equal key slices over ``[0, num_keys)``.

    Shard ``i`` owns ``[boundaries[i-1], boundaries[i])`` with implicit
    outer bounds 0 and ``num_keys``; keys outside the keyspace clamp to
    the edge shards so stray probe keys still route deterministically.
    """

    def __init__(
        self,
        num_keys: int,
        num_shards: int,
        boundaries: Sequence[int] | None = None,
    ) -> None:
        if num_keys < 1:
            raise ConfigError(f"num_keys must be >= 1, got {num_keys}")
        if num_shards < 1:
            raise ConfigError(f"num_shards must be >= 1, got {num_shards}")
        if num_shards > num_keys:
            raise ConfigError(
                f"{num_shards} shards over {num_keys} keys leaves empty shards"
            )
        if boundaries is None:
            boundaries = [
                round(index * num_keys / num_shards)
                for index in range(1, num_shards)
            ]
        boundaries = list(boundaries)
        if len(boundaries) != num_shards - 1:
            raise ConfigError(
                f"{num_shards} shards need {num_shards - 1} boundaries, "
                f"got {len(boundaries)}"
            )
        previous = 0
        for boundary in boundaries:
            if not previous < boundary < num_keys:
                raise ConfigError(
                    f"boundaries must be strictly increasing inside "
                    f"(0, {num_keys}); got {boundaries}"
                )
            previous = boundary
        self.num_keys = num_keys
        self.num_shards = num_shards
        self.boundaries = boundaries

    def shard_for(self, key: int) -> int:
        return bisect_right(self.boundaries, key)

    def shard_range(self, shard: int) -> tuple[int, int]:
        """The half-open key range ``[low, high)`` shard ``shard`` owns."""
        if not 0 <= shard < self.num_shards:
            raise ConfigError(
                f"shard {shard} out of range 0..{self.num_shards - 1}"
            )
        low = 0 if shard == 0 else self.boundaries[shard - 1]
        high = (
            self.num_keys
            if shard == self.num_shards - 1
            else self.boundaries[shard]
        )
        return low, high


class SplitRouter:
    """A base router with one migrated sub-range overlaid.

    After a live split, keys in ``[low, high)`` belong to ``target``;
    everything else routes as before.  Stacking multiple splits is just
    nesting SplitRouters.
    """

    def __init__(self, base, low: int, high: int, target: int) -> None:
        if low >= high:
            raise ConfigError(f"empty migrated range [{low}, {high})")
        self.base = base
        self.low = low
        self.high = high
        self.target = target

    def shard_for(self, key: int) -> int:
        if self.low <= key < self.high:
            return self.target
        return self.base.shard_for(key)
