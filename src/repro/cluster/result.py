"""Cluster-run results: per-shard ledgers plus fleet aggregates.

A :class:`ClusterResult` holds one :class:`~repro.serve.result.ServeResult`
per shard (each a complete, lossless serve ledger) and derives the
fleet-level quantities the hot-shard experiments report: cluster
goodput, merged read-latency percentiles (tail latency as a client
spraying the whole keyspace would see it), per-shard p99/hit-ratio/stall
attribution, and the read-imbalance factor that quantifies RangeHot
skew.  Transport is the same lossless ``to_dict``/``from_dict``
discipline as every other result (tagged ``"kind": "cluster"``), so a
parallel cluster run reassembles bit-identically to a serial one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.spec import ClusterSpec
from repro.obs.tracing import exemplar_summary
from repro.serve.result import ServeResult

#: Percentile convention shared with :class:`repro.obs.metrics.Reservoir`.


def _percentile(samples: list[float], percentile: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(
        len(ordered) - 1,
        max(0, round(percentile / 100 * (len(ordered) - 1))),
    )
    return ordered[rank]


@dataclass
class MigrationReport:
    """What one live shard split did."""

    at_s: int
    source: int
    target: int
    low: int
    high: int
    #: Live entries handed from source to target.
    entries: int
    #: Queued requests drained from the source's scheduler.
    drained_requests: int
    #: Of those, re-admitted into the target's scheduler.
    adopted_requests: int
    #: Deferred-write retries moved between the retry heaps.
    moved_retries: int

    def to_dict(self) -> dict[str, object]:
        return {
            "at_s": self.at_s,
            "source": self.source,
            "target": self.target,
            "low": self.low,
            "high": self.high,
            "entries": self.entries,
            "drained_requests": self.drained_requests,
            "adopted_requests": self.adopted_requests,
            "moved_retries": self.moved_retries,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "MigrationReport":
        return cls(
            at_s=int(payload["at_s"]),
            source=int(payload["source"]),
            target=int(payload["target"]),
            low=int(payload["low"]),
            high=int(payload["high"]),
            entries=int(payload["entries"]),
            drained_requests=int(payload["drained_requests"]),
            adopted_requests=int(payload["adopted_requests"]),
            moved_retries=int(payload["moved_retries"]),
        )


@dataclass
class ClusterResult:
    """Everything one cluster run produced."""

    spec: ClusterSpec
    shards: list[ServeResult] = field(default_factory=list)
    migration: MigrationReport | None = None
    #: KVOracle shadow summary when the run verified:
    #: ``{writes_recorded, reads_checked, read_mismatches}``.
    verify: dict[str, int] | None = None

    # ------------------------------------------------------------------
    # Fleet aggregates.
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def duration_s(self) -> int:
        return self.shards[0].duration_s if self.shards else 0

    @property
    def reads_completed(self) -> int:
        return sum(shard.reads_completed for shard in self.shards)

    @property
    def writes_applied(self) -> int:
        return sum(shard.writes_applied for shard in self.shards)

    @property
    def stall_seconds(self) -> float:
        return sum(shard.stall_seconds for shard in self.shards)

    @property
    def total_shed(self) -> int:
        return sum(shard.total_shed for shard in self.shards)

    @property
    def total_deferred(self) -> int:
        return sum(shard.total_deferred for shard in self.shards)

    def goodput_qps(self) -> float:
        """Cluster-wide completed read-class QPS, paper-scale."""
        return sum(shard.goodput_qps() for shard in self.shards)

    def read_percentile_ms(self, percentile: float) -> float:
        """Fleet read-latency percentile over the pooled shard samples.

        Each shard's reservoir is a uniform sample of its own stream;
        pooling them weights shards by their retained sample sizes,
        which tracks their completed-read counts until a reservoir
        saturates — good enough for the tail comparisons the benchmark
        makes, and deterministic.
        """
        pooled: list[float] = []
        for shard in self.shards:
            pooled.extend(shard.read_latencies_s.samples)
        return _percentile(pooled, percentile) * 1000.0

    def shard_read_p99_ms(self) -> list[float]:
        """Per-shard read-latency p99s, in shard order."""
        return [
            shard.read_latencies_s.percentile(99) * 1000.0
            for shard in self.shards
        ]

    def read_imbalance(self) -> float:
        """Hottest shard's completed reads over the per-shard mean.

        1.0 is perfectly balanced; under RangeHot + range partitioning
        this is the skew factor the hot-shard benchmark reports.
        """
        reads = [shard.reads_completed for shard in self.shards]
        if not reads or sum(reads) == 0:
            return 1.0
        return max(reads) / (sum(reads) / len(reads))

    def hottest_shard(self) -> int:
        """Index of the shard that completed the most reads."""
        if not self.shards:
            return 0
        reads = [shard.reads_completed for shard in self.shards]
        return reads.index(max(reads))

    def worst_exemplars(self, n: int = 5) -> list[dict]:
        """Digests of the fleet's ``n`` slowest exemplars, worst first.

        Each exemplar record already carries its shard index, so this
        is the cross-shard "worst requests and which hop cost them
        what" view the tracing layer exists for.
        """
        pooled = [
            record for shard in self.shards for record in shard.exemplars
        ]
        ranked = sorted(pooled, key=lambda e: (-e["total_s"], e["seq"]))
        return [exemplar_summary(record) for record in ranked[:n]]

    def per_shard_summary(self) -> dict[str, dict[str, object]]:
        """Compact per-shard ledger for reports and the bench payload."""
        summary: dict[str, dict[str, object]] = {}
        for index, shard in enumerate(self.shards):
            summary[str(index)] = {
                "reads_completed": shard.reads_completed,
                "writes_applied": shard.writes_applied,
                "goodput_qps": shard.goodput_qps(),
                "latency_p50_ms": shard.latency_percentile_s(50) * 1000,
                "latency_p99_ms": shard.latency_percentile_s(99) * 1000,
                "mean_hit_ratio": shard.mean_hit_ratio(),
                "stall_seconds": shard.stall_seconds,
                "shed": shard.total_shed,
                "deferred": shard.total_deferred,
                "max_queue_depth": shard.max_queue_depth,
            }
        return summary

    # ------------------------------------------------------------------
    # Transport (lossless).
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        return {
            "kind": "cluster",
            "spec": self.spec.to_dict(),
            "shards": [shard.to_dict() for shard in self.shards],
            "migration": (
                None if self.migration is None else self.migration.to_dict()
            ),
            "verify": None if self.verify is None else dict(self.verify),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ClusterResult":
        return cls(
            spec=ClusterSpec.from_dict(payload["spec"]),
            shards=[
                ServeResult.from_dict(entry) for entry in payload["shards"]
            ],
            migration=(
                None
                if payload.get("migration") is None
                else MigrationReport.from_dict(payload["migration"])
            ),
            verify=(
                None
                if payload.get("verify") is None
                else {k: int(v) for k, v in payload["verify"].items()}
            ),
        )

    # ------------------------------------------------------------------
    # Bench-schema summary.
    # ------------------------------------------------------------------
    def to_json_dict(self) -> dict[str, object]:
        """One bench-schema run entry (``"kind": "cluster"``)."""
        merged_events: dict[str, int] = {}
        merged_bw: dict[str, dict[str, float]] = {}
        for shard in self.shards:
            for name, count in shard.event_counts.items():
                merged_events[name] = merged_events.get(name, 0) + count
            for cause, kinds in shard.bandwidth_kb_by_cause.items():
                bucket = merged_bw.setdefault(
                    cause, {"read_kb": 0.0, "write_kb": 0.0}
                )
                bucket["read_kb"] += kinds.get("read_kb", 0.0)
                bucket["write_kb"] += kinds.get("write_kb", 0.0)
        shards = self.shards
        mean_hit = (
            sum(s.mean_hit_ratio() for s in shards) / len(shards)
            if shards
            else 0.0
        )
        entry: dict[str, object] = {
            "kind": "cluster",
            "engine": self.spec.engine,
            "config_note": (
                f"cluster; shards={self.spec.num_shards}; "
                f"partitioner={self.spec.partitioner}"
            ),
            "duration_s": self.duration_s,
            "reads_completed": self.reads_completed,
            "writes_applied": self.writes_applied,
            "mean_hit_ratio": mean_hit,
            "mean_throughput_qps": sum(s.mean_throughput() for s in shards),
            "mean_db_size_mb": sum(s.mean_db_size_mb() for s in shards),
            "latency_p50_ms": self.read_percentile_ms(50),
            "latency_p99_ms": self.read_percentile_ms(99),
            "stall_seconds": self.stall_seconds,
            "event_counts": merged_events,
            "bandwidth_kb_by_cause": {
                cause: dict(kinds)
                for cause, kinds in sorted(merged_bw.items())
            },
            "policy": self.spec.policy,
            "arrival": self.spec.arrival,
            "offered_read_qps": self.spec.read_rate_qps,
            "goodput_qps": self.goodput_qps(),
            "num_shards": self.num_shards,
            "partitioner": self.spec.partitioner,
            "shed": self.total_shed,
            "deferred": self.total_deferred,
            "read_imbalance": self.read_imbalance(),
            "hottest_shard": self.hottest_shard(),
            "shard_read_p99_ms": self.shard_read_p99_ms(),
            "per_shard": self.per_shard_summary(),
        }
        if self.migration is not None:
            entry["migration"] = self.migration.to_dict()
        if self.verify is not None:
            entry["verify"] = dict(self.verify)
        if any(shard.trace_mode != "off" for shard in shards):
            entry["trace"] = {
                "mode": shards[0].trace_mode,
                "exemplars": sum(len(s.exemplars) for s in shards),
                "flight_dumps": sum(len(s.flight_dumps) for s in shards),
                "flight_triggers": sorted(
                    {
                        dump["trigger"]
                        for shard in shards
                        for dump in shard.flight_dumps
                    }
                ),
                "worst_exemplars": self.worst_exemplars(5),
            }
        return entry
