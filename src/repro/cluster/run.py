"""Executing cluster specs: process-pool fan-out or coordinated stepping.

Two execution paths, chosen by what the spec asks for:

* **Fanned** (:func:`run_cluster` without split/verify): each shard is
  an independent :class:`~repro.cluster.shard.ShardSpec` handed to
  :func:`repro.sim.sweep.run_sweep`, so shards execute across the
  existing process pool with the lossless RunResult transport as the
  wire format — cluster ``jobs=1`` and ``jobs=N`` are bit-identical by
  the same argument as sweeps.  Shards never share state (each key
  routes to exactly one shard for its whole life), so independent
  execution is exact, not an approximation.
* **Coordinated** (:func:`run_coordinated`, used automatically for
  split or verify runs): every shard simulator is prepared in-process
  and stepped in lockstep on one virtual timeline.  At ``split_at_s``
  the migration runs between ticks: pending requests for the migrated
  range are fenced out of the source's scheduler and retry heap, the
  range's newest live entries move via a source range scan +
  :meth:`~repro.lsm.base.LSMEngine.adopt_entries` (seqs preserved, so
  values survive byte-for-byte), the fenced requests are adopted by the
  target, and ``RangeMigrated`` is published on both shards' buses.
  With ``verify=True`` a cluster-wide :class:`~repro.check.oracle.KVOracle`
  shadows every dispatched request through the serve loop's
  :class:`~repro.serve.service.DispatchObserver` hook — the proof that
  a split never serves a stale or lost value.

For a spec with neither split nor verify the two paths produce
identical per-shard results (pinned by test): coordinated stepping only
interleaves independent simulators.
"""

from __future__ import annotations

import time

from repro.check.oracle import KVOracle
from repro.cluster.result import ClusterResult, MigrationReport
from repro.cluster.shard import ShardSpec, prepare_shard
from repro.cluster.spec import ClusterSpec
from repro.errors import ConfigError
from repro.obs.events import RangeMigrated
from repro.serve.arrivals import Request
from repro.serve.result import ServeResult
from repro.serve.service import ServeSession, finalize_serve
from repro.sim.sweep import SWEEP_SCHEMA_VERSION, run_sweep


class OracleObserver:
    """Shadows every dispatched request with a cluster-wide KVOracle.

    Sound because each key is served by exactly one shard at any
    instant (routing pre-split, the migration fence afterwards), so the
    oracle sees that key's writes and reads in the same order the
    owning engine does.
    """

    def __init__(self, oracle: KVOracle) -> None:
        self.oracle = oracle
        self.writes_recorded = 0
        self.reads_checked = 0
        self.read_mismatches = 0
        self.mismatches: list[dict[str, object]] = []

    def on_write(self, request: Request, seq: int) -> None:
        self.oracle.put(request.key, seq)
        self.writes_recorded += 1

    def on_read(self, request: Request, got) -> None:
        self.reads_checked += 1
        expect_found, expect_value = self.oracle.get(request.key)
        if got.found != expect_found or (
            expect_found and got.value != expect_value
        ):
            self.read_mismatches += 1
            if len(self.mismatches) < 20:
                self.mismatches.append(
                    {
                        "key": request.key,
                        "expected": (expect_found, expect_value),
                        "got": (got.found, got.value),
                    }
                )

    def summary(self) -> dict[str, int]:
        return {
            "writes_recorded": self.writes_recorded,
            "reads_checked": self.reads_checked,
            "read_mismatches": self.read_mismatches,
        }


def _migrate(
    spec: ClusterSpec, sessions: list[ServeSession]
) -> MigrationReport:
    """Move the scheduled key range from source shard to target shard."""
    config = sessions[0].simulator.config
    low, high = spec.split_range(config)
    source = sessions[spec.split_source]
    target = sessions[spec.split_target]

    # Fence first: after this the source can never dispatch the range.
    queued, retries = source.simulator.extract_pending(
        lambda key: low <= key < high
    )
    # Hand over the newest live versions, seqs intact.  The range scan
    # is charged to the source (a migration reads the data it ships).
    scan = source.setup.engine.scan(low, high - 1)
    target.setup.engine.adopt_entries(scan.entries)
    adopted = target.simulator.adopt_pending(queued, retries)

    source.setup.engine.bus.emit(
        RangeMigrated(
            low=low,
            high=high,
            entries=len(scan.entries),
            direction="out",
            peer=spec.split_target,
        )
    )
    target.setup.engine.bus.emit(
        RangeMigrated(
            low=low,
            high=high,
            entries=len(scan.entries),
            direction="in",
            peer=spec.split_source,
        )
    )
    return MigrationReport(
        at_s=int(spec.split_at_s or 0),
        source=spec.split_source,
        target=spec.split_target,
        low=low,
        high=high,
        entries=len(scan.entries),
        drained_requests=len(queued),
        adopted_requests=adopted,
        moved_retries=len(retries),
    )


def run_coordinated(
    spec: ClusterSpec,
    on_tick=None,
    attach=None,
) -> ClusterResult:
    """Step every shard in lockstep in-process (splits, verification).

    ``attach(session, shard)`` runs once per prepared shard before the
    run starts (test instrumentation: per-shard trace recorders);
    ``on_tick(tick, sessions)`` runs after every lockstep tick (live
    views: ``repro top``).  Both default to nothing, and neither can
    perturb the run unless it mutates the sessions.
    """
    config = spec.config()
    observer: OracleObserver | None = None
    if spec.verify:
        oracle = KVOracle()
        if spec.do_preload:
            for key in range(config.unique_keys):
                oracle.put(key, 0)
        observer = OracleObserver(oracle)
    sessions = [
        prepare_shard(spec, shard, observer=observer)
        for shard in range(spec.num_shards)
    ]
    if attach is not None:
        for shard, session in enumerate(sessions):
            attach(session, shard)
    duration = sessions[0].duration_s
    for session in sessions:
        session.simulator.begin(duration)
    migration: MigrationReport | None = None
    for tick in range(duration):
        if spec.split_at_s is not None and tick == spec.split_at_s:
            migration = _migrate(spec, sessions)
        for session in sessions:
            session.simulator.step()
        if on_tick is not None:
            on_tick(tick, sessions)
    # A split scheduled at/after the end never fires; surface that
    # instead of silently reporting an un-run migration.
    if spec.split_at_s is not None and migration is None:
        raise ConfigError(
            f"split_at_s={spec.split_at_s} is outside the run "
            f"(duration {duration})"
        )
    shards = [
        finalize_serve(session, session.simulator.finish())
        for session in sessions
    ]
    return ClusterResult(
        spec=spec,
        shards=shards,
        migration=migration,
        verify=None if observer is None else observer.summary(),
    )


def run_cluster(spec: ClusterSpec, jobs: int = 1) -> ClusterResult:
    """Execute one cluster spec; fans shards over ``jobs`` workers.

    Split and verify runs coordinate in-process regardless of ``jobs``
    (the migration couples the shards); everything else fans out.
    """
    if spec.split_at_s is not None or spec.verify:
        return run_coordinated(spec)
    shard_specs = [
        ShardSpec(cluster=spec, shard=index)
        for index in range(spec.num_shards)
    ]
    outcome = run_sweep(shard_specs, jobs=jobs)
    shards: list[ServeResult] = [o.result for o in outcome.outcomes]
    return ClusterResult(spec=spec, shards=shards)


def cluster_payload(
    name: str,
    entries: list[tuple[ClusterSpec, ClusterResult, float]],
) -> dict:
    """Bench-schema payload for a list of executed cluster cells.

    Mirrors :meth:`repro.sim.sweep.SweepOutcome.to_payload`: one run
    entry per cluster (tagged ``"kind": "cluster"``), wall clock and
    sim-op throughput per run, grid-level telemetry in ``scalars``.
    """
    runs: dict[str, dict] = {}
    for spec, result, wall_clock_s in entries:
        entry = result.to_json_dict()
        entry["wall_clock_s"] = wall_clock_s
        sim_ops = result.reads_completed + result.writes_applied
        entry["sim_ops_per_s"] = (
            sim_ops / wall_clock_s if wall_clock_s > 0 else 0.0
        )
        runs[spec.label()] = entry
    scales = sorted({spec.scale for spec, _, _ in entries})
    durations = sorted({result.duration_s for _, result, _ in entries})
    return {
        "schema_version": SWEEP_SCHEMA_VERSION,
        "name": name,
        "scale": scales[0] if len(scales) == 1 else 0,
        "duration_s": durations[0] if len(durations) == 1 else 0,
        "seed": entries[0][0].seed if entries else 0,
        "runs": runs,
        "scalars": {
            "cluster_cells": float(len(entries)),
            "cluster_wall_clock_s": sum(w for _, _, w in entries),
        },
    }


def run_cluster_grid(
    specs: list[ClusterSpec], jobs: int = 1
) -> list[tuple[ClusterSpec, ClusterResult, float]]:
    """Run a grid of cluster specs, timing each (CLI/benchmark helper)."""
    labels = [spec.label() for spec in specs]
    duplicates = sorted(
        {label for label in labels if labels.count(label) > 1}
    )
    if duplicates:
        raise ConfigError(f"duplicate cluster specs: {duplicates}")
    entries: list[tuple[ClusterSpec, ClusterResult, float]] = []
    for spec in specs:
        started = time.perf_counter()
        result = run_cluster(spec, jobs=jobs)
        entries.append((spec, result, time.perf_counter() - started))
    return entries
