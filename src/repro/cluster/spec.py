"""Declarative cluster-run specifications.

:class:`ClusterSpec` describes one sharded serve run: the per-shard
serve parameters (engine, config base, rates, policy, admission — the
same knobs as :class:`~repro.serve.spec.ServiceSpec`) plus the cluster
topology (shard count, partitioner, vnodes) and an optional live
shard-split schedule.  Like every other spec it is frozen, picklable
and JSON-able, with ``cell_key``/``label`` identities the sweep runner
dedupes on; :func:`expand_cluster_grid` builds the engine × shards ×
partitioner × rate × seed grids behind ``repro cluster``.

Every shard serves the *same* global arrival stream filtered down to
the keys it owns, so shard membership is pure routing — the union of
the shards' request streams is exactly the single-engine stream, which
is what makes the 1-shard differential test meaningful.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable

from repro.cluster.ring import (
    DEFAULT_VNODES,
    PARTITIONERS,
    HashRing,
    RangePartitioner,
    SplitRouter,
)
from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.serve.arrivals import Request
from repro.serve.spec import DEFAULT_REQUEST_SAMPLE_EVERY, ServiceSpec


@dataclass(frozen=True)
class ClusterSpec:
    """One sharded open-loop serve run, described entirely by primitives.

    The offered rates are *cluster-wide*: each shard receives the
    subset of the global arrival stream that routes to it.  A split
    schedule (``split_at_s`` et al.) migrates the upper
    ``split_fraction`` of the source shard's contiguous range to the
    target shard mid-run; splits require the range partitioner (a hash
    ring has no contiguous ranges to cut).  ``verify=True`` shadows
    every dispatched request with a cluster-wide
    :class:`~repro.check.oracle.KVOracle` (coordinated execution).
    """

    engine: str
    num_shards: int = 2
    partitioner: str = "hash"
    vnodes: int = DEFAULT_VNODES
    base: str = "paper_scaled"
    scale: int = 2048
    overrides: tuple[tuple[str, object], ...] = ()
    duration_s: int | None = None
    seed: int = 0
    policy: str = "fifo"
    arrival: str = "poisson"
    read_rate_qps: float = 2000.0
    write_rate_qps: float | None = None
    queue_bound: int = 64
    admit_queue_fraction: float = 0.75
    retry_after_s: float = 5.0
    max_retries: int = 3
    do_preload: bool = True
    warm_cache: bool = True
    request_sample_every: int = DEFAULT_REQUEST_SAMPLE_EVERY
    #: Request tracing for every shard (see ServiceSpec.trace).
    trace: str = "off"
    trace_dir: str | None = None
    trace_slo_s: float = 1.0
    trace_stall_spike_s: float = 0.25
    trace_dip_threshold: float = 0.7
    #: Per-shard runtime controller (see ServiceSpec.controller); each
    #: shard runs its own independent control loop over its own stack.
    controller: str = "off"
    control_interval_s: int = 30
    #: Live shard-split schedule (None = no split).
    split_at_s: int | None = None
    split_source: int = 0
    split_target: int = 1
    split_fraction: float = 0.5
    #: Shadow every dispatch with a cluster-wide KVOracle.
    verify: bool = False

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ConfigError(
                f"num_shards must be >= 1, got {self.num_shards}"
            )
        if self.partitioner not in PARTITIONERS:
            raise ConfigError(
                f"unknown partitioner {self.partitioner!r}; "
                f"choose from {PARTITIONERS}"
            )
        if self.vnodes < 1:
            raise ConfigError(f"vnodes must be >= 1, got {self.vnodes}")
        if self.split_at_s is not None:
            if self.partitioner != "range":
                raise ConfigError(
                    "shard splits need contiguous ranges: "
                    "use partitioner='range'"
                )
            if self.num_shards < 2:
                raise ConfigError("a split needs at least 2 shards")
            if self.split_at_s < 0:
                raise ConfigError(
                    f"split_at_s must be >= 0, got {self.split_at_s}"
                )
            for name, shard in (
                ("split_source", self.split_source),
                ("split_target", self.split_target),
            ):
                if not 0 <= shard < self.num_shards:
                    raise ConfigError(
                        f"{name}={shard} out of range "
                        f"0..{self.num_shards - 1}"
                    )
            if self.split_source == self.split_target:
                raise ConfigError("split source and target must differ")
            if not 0.0 < self.split_fraction < 1.0:
                raise ConfigError(
                    f"split_fraction must be in (0, 1), "
                    f"got {self.split_fraction}"
                )
        # Delegate serve/config validation to the per-shard spec; adopt
        # its normalized overrides tuple.
        probe = self.service_spec()
        object.__setattr__(self, "overrides", probe.overrides)

    def replace(self, **changes: object) -> "ClusterSpec":
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------------
    # Materialization.
    # ------------------------------------------------------------------
    def service_spec(self) -> ServiceSpec:
        """The per-shard serve spec (identical across shards)."""
        return ServiceSpec(
            engine=self.engine,
            base=self.base,
            scale=self.scale,
            overrides=self.overrides,
            duration_s=self.duration_s,
            seed=self.seed,
            policy=self.policy,
            arrival=self.arrival,
            read_rate_qps=self.read_rate_qps,
            write_rate_qps=self.write_rate_qps,
            queue_bound=self.queue_bound,
            admit_queue_fraction=self.admit_queue_fraction,
            retry_after_s=self.retry_after_s,
            max_retries=self.max_retries,
            do_preload=self.do_preload,
            warm_cache=self.warm_cache,
            request_sample_every=self.request_sample_every,
            trace=self.trace,
            trace_dir=self.trace_dir,
            trace_slo_s=self.trace_slo_s,
            trace_stall_spike_s=self.trace_stall_spike_s,
            trace_dip_threshold=self.trace_dip_threshold,
            controller=self.controller,
            control_interval_s=self.control_interval_s,
        )

    def config(self) -> SystemConfig:
        return self.service_spec().config()

    def router(self, config: SystemConfig):
        """The initial (pre-split) placement router."""
        if self.partitioner == "hash":
            return HashRing(self.num_shards, self.vnodes, self.seed)
        return RangePartitioner(config.unique_keys, self.num_shards)

    def split_range(self, config: SystemConfig) -> tuple[int, int]:
        """The half-open key range a scheduled split migrates."""
        if self.split_at_s is None:
            raise ConfigError("spec schedules no split")
        partitioner = self.router(config)
        low, high = partitioner.shard_range(self.split_source)
        cut = high - max(1, round(self.split_fraction * (high - low)))
        cut = max(low, min(cut, high - 1))
        return cut, high

    def request_router(
        self, config: SystemConfig
    ) -> Callable[[Request], int]:
        """Maps a request to its serving shard, split schedule included.

        Requests *arriving* at or after ``split_at_s`` route with the
        post-split layout; earlier arrivals route with the initial one.
        Routing by arrival time makes shard membership precomputable
        per request, which is what lets the no-split fan-out and the
        coordinated loop agree exactly.
        """
        initial = self.router(config)
        if self.split_at_s is None:
            return lambda request: initial.shard_for(request.key)
        low, high = self.split_range(config)
        post = SplitRouter(initial, low, high, self.split_target)
        split_at = float(self.split_at_s)

        def route(request: Request) -> int:
            router = post if request.arrival_s >= split_at else initial
            return router.shard_for(request.key)

        return route

    # ------------------------------------------------------------------
    # Labels.
    # ------------------------------------------------------------------
    def cell_key(self) -> str:
        """Grid-cell identity (everything but the seed)."""
        parts = ["cluster", self.service_spec().cell_key()]
        parts.append(f"n{self.num_shards}")
        parts.append(self.partitioner)
        if self.partitioner == "hash" and self.vnodes != DEFAULT_VNODES:
            parts.append(f"v{self.vnodes}")
        if self.split_at_s is not None:
            parts.append(
                f"split{self.split_at_s}"
                f":{self.split_source}-{self.split_target}"
                f":{self.split_fraction:g}"
            )
        if self.verify:
            parts.append("verify")
        return "/".join(parts)

    def label(self) -> str:
        return f"{self.cell_key()}/s{self.seed}"

    # ------------------------------------------------------------------
    # Serialization.
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        payload = self.service_spec().to_dict()
        payload["kind"] = "cluster"
        payload["num_shards"] = self.num_shards
        payload["partitioner"] = self.partitioner
        payload["vnodes"] = self.vnodes
        payload["split_at_s"] = self.split_at_s
        payload["split_source"] = self.split_source
        payload["split_target"] = self.split_target
        payload["split_fraction"] = self.split_fraction
        payload["verify"] = self.verify
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ClusterSpec":
        serve = ServiceSpec.from_dict(payload)
        return cls(
            engine=serve.engine,
            num_shards=int(payload.get("num_shards", 2)),
            partitioner=payload.get("partitioner", "hash"),
            vnodes=int(payload.get("vnodes", DEFAULT_VNODES)),
            base=serve.base,
            scale=serve.scale,
            overrides=serve.overrides,
            duration_s=serve.duration_s,
            seed=serve.seed,
            policy=serve.policy,
            arrival=serve.arrival,
            read_rate_qps=serve.read_rate_qps,
            write_rate_qps=serve.write_rate_qps,
            queue_bound=serve.queue_bound,
            admit_queue_fraction=serve.admit_queue_fraction,
            retry_after_s=serve.retry_after_s,
            max_retries=serve.max_retries,
            do_preload=serve.do_preload,
            warm_cache=serve.warm_cache,
            request_sample_every=serve.request_sample_every,
            trace=serve.trace,
            trace_dir=serve.trace_dir,
            trace_slo_s=serve.trace_slo_s,
            trace_stall_spike_s=serve.trace_stall_spike_s,
            trace_dip_threshold=serve.trace_dip_threshold,
            controller=serve.controller,
            control_interval_s=serve.control_interval_s,
            split_at_s=(
                None
                if payload.get("split_at_s") is None
                else int(payload["split_at_s"])
            ),
            split_source=int(payload.get("split_source", 0)),
            split_target=int(payload.get("split_target", 1)),
            split_fraction=float(payload.get("split_fraction", 0.5)),
            verify=bool(payload.get("verify", False)),
        )


def expand_cluster_grid(
    engines: list[str],
    shard_counts: list[int],
    partitioners: list[str],
    rates: list[float],
    seeds: list[int],
    **common: object,
) -> list[ClusterSpec]:
    """The engine × shards × partitioner × rate × seed grid."""
    specs: list[ClusterSpec] = []
    for engine in engines:
        for num_shards in shard_counts:
            for partitioner in partitioners:
                for rate in rates:
                    for seed in seeds:
                        specs.append(
                            ClusterSpec(
                                engine=engine,
                                num_shards=num_shards,
                                partitioner=partitioner,
                                read_rate_qps=rate,
                                seed=seed,
                                **common,
                            )
                        )
    return specs
