"""One shard of a cluster run, as a sweep-runnable spec.

A :class:`ShardSpec` is the unit the cluster fan-out hands to the sweep
runner's process pool: the parent :class:`~repro.cluster.spec.ClusterSpec`
plus a shard index.  Its payload travels as ``"kind": "cluster-shard"``
and its result is a plain :class:`~repro.serve.result.ServeResult`, so
the shard rides the existing lossless RunResult transport unchanged —
``jobs=1`` and ``jobs=N`` cluster runs are bit-identical for exactly
the same reason sweeps are.

:func:`execute_shard` runs one shard start to finish (the worker entry
point); :func:`prepare_shard` exposes the wired-but-unrun session so
the coordinated in-process path (splits, oracle verification) and the
differential tests can interleave or observe shard simulators directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.spec import ClusterSpec
from repro.errors import ConfigError
from repro.serve.result import ServeResult
from repro.serve.service import (
    DispatchObserver,
    ServeSession,
    finalize_serve,
    prepare_serve,
)


@dataclass(frozen=True)
class ShardSpec:
    """One shard's slice of a cluster run."""

    cluster: ClusterSpec
    shard: int

    def __post_init__(self) -> None:
        if not 0 <= self.shard < self.cluster.num_shards:
            raise ConfigError(
                f"shard {self.shard} out of range "
                f"0..{self.cluster.num_shards - 1}"
            )

    @property
    def engine(self) -> str:
        return self.cluster.engine

    @property
    def seed(self) -> int:
        return self.cluster.seed

    def cell_key(self) -> str:
        return f"{self.cluster.cell_key()}/shard{self.shard}"

    def label(self) -> str:
        return f"{self.cluster.label()}/shard{self.shard}"

    def to_dict(self) -> dict[str, object]:
        return {
            "kind": "cluster-shard",
            "cluster": self.cluster.to_dict(),
            "shard": self.shard,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ShardSpec":
        return cls(
            cluster=ClusterSpec.from_dict(payload["cluster"]),
            shard=int(payload["shard"]),
        )


def prepare_shard(
    cluster: ClusterSpec,
    shard: int,
    observer: DispatchObserver | None = None,
) -> ServeSession:
    """Wire one shard's serve session with its ownership filters.

    Data placement (preload + cache warm) follows the *initial* router;
    the request filter follows the split-aware request router, so a
    scheduled split's post-split arrivals already land on the target
    shard.  With one shard both filters pass everything and the session
    is exactly the single-engine serve session.
    """
    config = cluster.config()
    initial = cluster.router(config)
    route = cluster.request_router(config)
    return prepare_serve(
        cluster.service_spec(),
        owned=lambda key: initial.shard_for(key) == shard,
        keep=lambda request: route(request) == shard,
        observer=observer,
        shard=shard,
    )


def execute_shard(spec: ShardSpec) -> ServeResult:
    """Run one shard start to finish (the sweep-worker entry point).

    Only valid for specs without a split schedule or oracle
    verification — those need the coordinated in-process path
    (:func:`repro.cluster.run.run_coordinated`), because a mid-run
    migration couples the shards.
    """
    cluster = spec.cluster
    if cluster.split_at_s is not None or cluster.verify:
        raise ConfigError(
            "split/verify cluster runs are coordinated; "
            "shards cannot execute independently"
        )
    session = prepare_shard(cluster, spec.shard)
    result = session.simulator.run(session.duration_s)
    return finalize_serve(session, result)
