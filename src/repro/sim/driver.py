"""The mixed read/write simulation driver.

Reproduces the paper's measurement loop (Section VI-B): one thread writes
at a fixed rate (1,000 OPS) while eight reader threads issue point reads
or range queries as fast as the system serves them, for 20,000 seconds,
with per-second statistics logged.

Here one virtual second is one driver tick:

1. apply this second's share of paced writes (a fractional-credit
   accumulator keeps the long-run rate exact);
2. let the engine run its compaction work and housekeeping (``tick``);
3. read the disk's background utilization for this second — compaction
   traffic slows foreground I/O through the queueing factor;
4. spend ``read_threads`` thread-seconds issuing reads, pricing each one
   from its :class:`~repro.lsm.base.ReadCost` via the I/O cost model
   (each simulated read stands for ``ops_scale`` real reads, so reported
   throughput is paper-comparable);
5. sample the per-second metrics.
"""

from __future__ import annotations

import random

from repro.cache.stats import CacheStats
from repro.config import SystemConfig
from repro.lsm.base import ReadCost
from repro.clock import VirtualClock
from repro.obs.events import EventTally
from repro.obs.prof import NULL_PROFILER, SpanProfiler
from repro.sim.metrics import RunResult, TimeSeries
from repro.storage.iomodel import IOCostModel
from repro.workload.ycsb import RangeHotWorkload

#: Hard cap on simulated reads per tick, guarding against a degenerate
#: (near-zero) priced cost making a tick spin forever.
_MAX_READS_PER_TICK = 50_000


def price_read(
    config: SystemConfig,
    cost_model: IOCostModel,
    cost: ReadCost,
    pairs_returned: int,
    utilization: float,
    is_scan: bool = False,
) -> float:
    """Modeled service seconds of one (simulated) read.

    Module-level so the driver and the :mod:`repro.serve` service layer
    price reads with literally the same arithmetic — and so the span
    profiler's stage decomposition (:mod:`repro.obs.prof`) has one
    formula to reconcile against.
    """
    seconds = config.cache_hit_s  # Per-operation base CPU.
    seconds += cost.cache_hit_blocks * config.block_hit_s
    seconds += cost.os_hit_blocks * config.os_hit_s
    seconds += pairs_returned * config.scan_pair_cpu_s
    if is_scan:
        # Range queries position an iterator on every sorted table
        # they touch; point reads pay per-probe costs instead.
        seconds += cost.tables_checked * config.scan_table_cpu_s
    seconds += cost_model.bloom_probe_s(cost.bloom_probes)
    if cost.disk_random_blocks:
        seconds += cost_model.random_read_s(cost.disk_random_blocks, utilization)
    if cost.seq_runs or cost.seq_kb:
        seconds += cost_model.sequential_s(
            cost.seq_kb, seeks=cost.seq_runs, utilization=utilization
        )
    return seconds * config.ops_scale


class MixedReadWriteDriver:
    """Runs one engine under the paper's mixed read/write measurement."""

    def __init__(
        self,
        engine,
        config: SystemConfig,
        clock: VirtualClock,
        workload: RangeHotWorkload | None = None,
        seed: int = 0,
        scan_mode: bool = False,
        metric_cache=None,
        profiler: SpanProfiler | None = None,
    ) -> None:
        """``scan_mode`` switches readers from point reads (Fig. 8/9) to
        the paper's 100 KB range queries (Fig. 10/11).  ``metric_cache``
        is the cache whose hit ratio forms the reported series; defaults
        to the engine's own :attr:`~repro.lsm.base.LSMEngine.metric_cache`
        choice (DB cache, falling back to the OS cache).  ``profiler``
        receives every completed read for span sampling; it defaults to
        the shared disabled :data:`~repro.obs.prof.NULL_PROFILER`, whose
        hook costs one attribute check."""
        self.engine = engine
        self.config = config
        self.clock = clock
        self.workload = workload or RangeHotWorkload(config)
        self.rng = random.Random(seed)
        self.scan_mode = scan_mode
        self.cost_model = IOCostModel(config)
        self.metric_cache = (
            metric_cache if metric_cache is not None else engine.metric_cache
        )
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        #: Counts every event the engine publishes while this driver owns
        #: it; each run reports the delta over its own window.
        self.event_tally = EventTally(engine.bus)
        self._write_credit = 0.0
        self._read_debt = 0.0
        self._bw_last: dict[str, dict[str, float]] = {}
        self._bw_last_tick = 0
        self._stall_last = 0.0
        self._last_cache_stats: CacheStats | None = None
        self._last_hit_sample_tick: int | None = None
        #: Hit-ratio points are computed over windows of this many ticks so
        #: each point aggregates enough reads to be a meaningful ratio (a
        #: per-tick ratio over a handful of reads is dominated by sampling
        #: noise and, averaged, biased low: miss ticks complete few reads).
        self.hit_ratio_window_s = 20

    # ------------------------------------------------------------------
    # Pricing.
    # ------------------------------------------------------------------
    def price_read(
        self,
        cost: ReadCost,
        pairs_returned: int,
        utilization: float,
        is_scan: bool = False,
    ) -> float:
        """Modeled service seconds of one (simulated) read."""
        return price_read(
            self.config, self.cost_model, cost, pairs_returned, utilization,
            is_scan,
        )

    # ------------------------------------------------------------------
    # The run loop.
    # ------------------------------------------------------------------
    def run(self, duration_s: int | None = None, sample_every: int = 1) -> RunResult:
        """Drive the engine for ``duration_s`` virtual seconds."""
        duration = duration_s if duration_s is not None else self.config.duration_s
        result = RunResult(engine=self.engine.name, duration_s=duration)
        events_before = dict(self.event_tally.counts)
        bw_baseline = self._snapshot_cause_totals()
        self._bw_last = bw_baseline
        self._bw_last_tick = self.clock.now
        stall_baseline = self.engine.stats.stall_seconds
        self._stall_last = stall_baseline
        for _ in range(duration):
            now = self.clock.now
            self._apply_writes(result)
            self.engine.tick(now)
            utilization = self.engine.disk.utilization()
            reads = self._apply_reads(utilization, result)
            if now % sample_every == 0:
                self._sample(now, reads, utilization, result)
            self.clock.advance(1)
        result.event_counts = {
            name: count - events_before.get(name, 0)
            for name, count in self.event_tally.counts.items()
            if count - events_before.get(name, 0)
        }
        result.bandwidth_kb_by_cause = self._cause_window(bw_baseline)
        result.stall_seconds = self.engine.stats.stall_seconds - stall_baseline
        return result

    # ------------------------------------------------------------------
    # Per-cause bandwidth bookkeeping.
    # ------------------------------------------------------------------
    def _snapshot_cause_totals(self) -> dict[str, dict[str, float]]:
        return {
            cause: dict(kinds)
            for cause, kinds in self.engine.disk.cause_totals().items()
        }

    def _cause_window(
        self, baseline: dict[str, dict[str, float]]
    ) -> dict[str, dict[str, float]]:
        """Per-cause read/write KB accumulated since ``baseline``."""
        window: dict[str, dict[str, float]] = {}
        for cause, kinds in self._snapshot_cause_totals().items():
            before = baseline.get(cause, {"read_kb": 0.0, "write_kb": 0.0})
            window[cause] = {
                "read_kb": kinds["read_kb"] - before["read_kb"],
                "write_kb": kinds["write_kb"] - before["write_kb"],
            }
        return window

    def _apply_writes(self, result: RunResult) -> None:
        self._write_credit += self.config.write_rate_pairs_per_s
        count = int(self._write_credit)
        self._write_credit -= count
        for _ in range(count):
            self.engine.put(self.workload.next_write_key(self.rng))
            result.writes_applied += 1

    def _apply_reads(self, utilization: float, result: RunResult) -> int:
        # A read that started near the end of a second keeps its threads
        # busy into the next one; the debt carries over so thread-time is
        # conserved over the run (threads blocked on a long disk read are
        # simply unavailable).
        budget = float(self.config.read_threads) - self._read_debt
        reads = 0
        while budget > 0.0 and reads < _MAX_READS_PER_TICK:
            if self.scan_mode:
                low, high = self.workload.next_scan_range(self.rng)
                scan = self.engine.scan(low, high)
                cost, pairs = scan.cost, len(scan.entries)
            else:
                key = self.workload.next_read_key(self.rng)
                got = self.engine.get(key)
                cost, pairs = got.cost, 0
            priced = self.price_read(cost, pairs, utilization, self.scan_mode)
            self.profiler.record_read(cost, utilization, pairs, self.scan_mode)
            budget -= priced
            result.read_latencies_s.append(priced / self.config.ops_scale)
            reads += 1
        self._read_debt = -budget if budget < 0.0 else 0.0
        result.reads_completed += reads
        return reads

    def _sample(
        self, now: int, reads: int, utilization: float, result: RunResult
    ) -> None:
        result.throughput_qps.add(now, reads * self.config.ops_scale)
        if self.metric_cache is not None:
            stats = self.metric_cache.stats
            due = (
                self._last_hit_sample_tick is None
                or now - self._last_hit_sample_tick >= self.hit_ratio_window_s
            )
            if due:
                if self._last_cache_stats is None:
                    ratio = stats.hit_ratio
                else:
                    ratio = stats.interval_hit_ratio(self._last_cache_stats)
                self._last_cache_stats = stats.snapshot()
                self._last_hit_sample_tick = now
                result.hit_ratio.add(now, ratio)
            result.cache_usage.add(now, self.metric_cache.usage)
        disk = self.engine.disk
        size_kb = disk.live_kb + disk.tick_temp_space_kb()
        result.db_size_mb.add(now, size_kb * self.config.ops_scale / 1024.0)
        result.disk_utilization.add(now, utilization)
        stall_total = self.engine.stats.stall_seconds
        result.stall.add(now, stall_total - self._stall_last)
        self._stall_last = stall_total
        buffer_kb = self.engine.compaction_buffer_kb
        if buffer_kb is not None:
            result.buffer_size_mb.add(
                now, buffer_kb * self.config.ops_scale / 1024.0
            )
        # Per-cause disk bandwidth: combined read+write KB/s since the
        # previous sample, in the same simulated-KB units as DiskStats.
        totals = self._snapshot_cause_totals()
        dt = max(1, now - self._bw_last_tick)
        for cause, kinds in totals.items():
            before = self._bw_last.get(cause, {"read_kb": 0.0, "write_kb": 0.0})
            delta_kb = (
                kinds["read_kb"]
                - before["read_kb"]
                + kinds["write_kb"]
                - before["write_kb"]
            )
            series = result.bandwidth_by_cause.get(cause)
            if series is None:
                series = result.bandwidth_by_cause[cause] = TimeSeries(
                    f"bandwidth.{cause}"
                )
            series.add(now, delta_kb / dt)
        self._bw_last = totals
        self._bw_last_tick = now
