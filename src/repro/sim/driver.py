"""The mixed read/write simulation driver.

Reproduces the paper's measurement loop (Section VI-B): one thread writes
at a fixed rate (1,000 OPS) while eight reader threads issue point reads
or range queries as fast as the system serves them, for 20,000 seconds,
with per-second statistics logged.

Here one virtual second is one driver tick:

1. apply this second's share of paced writes (a fractional-credit
   accumulator keeps the long-run rate exact);
2. let the engine run its compaction work and housekeeping (``tick``);
3. read the disk's background utilization for this second — compaction
   traffic slows foreground I/O through the queueing factor;
4. spend ``read_threads`` thread-seconds issuing reads, pricing each one
   from its :class:`~repro.lsm.base.ReadCost` via the I/O cost model
   (each simulated read stands for ``ops_scale`` real reads, so reported
   throughput is paper-comparable);
5. sample the per-second metrics.
"""

from __future__ import annotations

import random

from repro.cache.stats import CacheStats
from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.lsm.base import ReadCost
from repro.clock import VirtualClock
from repro.obs.events import EventTally
from repro.obs.prof import NULL_PROFILER, SpanProfiler
from repro.sim.kernel import ReadKernel, ReadPricer
from repro.sim.metrics import RunResult, TimeSeries
from repro.storage.iomodel import IOCostModel
from repro.workload.ycsb import RangeHotWorkload

#: Hard cap on simulated reads per tick, guarding against a degenerate
#: (near-zero) priced cost making a tick spin forever.
_MAX_READS_PER_TICK = 50_000


def price_read(
    config: SystemConfig,
    cost_model: IOCostModel,
    cost: ReadCost,
    pairs_returned: int,
    utilization: float,
    is_scan: bool = False,
) -> float:
    """Modeled service seconds of one (simulated) read.

    Module-level so the driver and the :mod:`repro.serve` service layer
    price reads with literally the same arithmetic — and so the span
    profiler's stage decomposition (:mod:`repro.obs.prof`) has one
    formula to reconcile against.
    """
    seconds = config.cache_hit_s  # Per-operation base CPU.
    seconds += cost.cache_hit_blocks * config.block_hit_s
    seconds += cost.os_hit_blocks * config.os_hit_s
    seconds += pairs_returned * config.scan_pair_cpu_s
    if is_scan:
        # Range queries position an iterator on every sorted table
        # they touch; point reads pay per-probe costs instead.
        seconds += cost.tables_checked * config.scan_table_cpu_s
    seconds += cost_model.bloom_probe_s(cost.bloom_probes)
    if cost.disk_random_blocks:
        seconds += cost_model.random_read_s(cost.disk_random_blocks, utilization)
    if cost.seq_runs or cost.seq_kb:
        seconds += cost_model.sequential_s(
            cost.seq_kb, seeks=cost.seq_runs, utilization=utilization
        )
    return seconds * config.ops_scale


class MixedReadWriteDriver:
    """Runs one engine under the paper's mixed read/write measurement."""

    def __init__(
        self,
        engine,
        config: SystemConfig,
        clock: VirtualClock,
        workload: RangeHotWorkload | None = None,
        seed: int = 0,
        scan_mode: bool = False,
        metric_cache=None,
        profiler: SpanProfiler | None = None,
        kernel: str = "batched",
        batch_size: int | None = None,
    ) -> None:
        """``scan_mode`` switches readers from point reads (Fig. 8/9) to
        the paper's 100 KB range queries (Fig. 10/11).  ``metric_cache``
        is the cache whose hit ratio forms the reported series; defaults
        to the engine's own :attr:`~repro.lsm.base.LSMEngine.metric_cache`
        choice (DB cache, falling back to the OS cache).  ``profiler``
        receives every completed read for span sampling; it defaults to
        the shared disabled :data:`~repro.obs.prof.NULL_PROFILER`, whose
        hook costs one attribute check.  ``kernel`` selects the read-loop
        implementation: ``"batched"`` (default) runs the tick through
        :class:`~repro.sim.kernel.ReadKernel`; ``"scalar"`` keeps the
        original per-op chain as the executable reference the
        differential tests compare against.  ``batch_size`` tunes the
        batched kernel's flush granularity (results are identical for
        any value)."""
        self.engine = engine
        self.config = config
        self.clock = clock
        self.workload = workload or RangeHotWorkload(config)
        self.rng = random.Random(seed)
        self.scan_mode = scan_mode
        self.cost_model = IOCostModel(config)
        self.metric_cache = (
            metric_cache if metric_cache is not None else engine.metric_cache
        )
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        self.pricer = ReadPricer(config, self.cost_model)
        if kernel == "batched":
            kernel_args = {} if batch_size is None else {"batch_size": batch_size}
            self._kernel: ReadKernel | None = ReadKernel(
                engine, self.workload, self.pricer, scan_mode, **kernel_args
            )
        elif kernel == "scalar":
            self._kernel = None
        else:
            raise ConfigError(f"unknown read kernel {kernel!r}")
        #: Counts every event the engine publishes while this driver owns
        #: it; each run reports the delta over its own window.
        self.event_tally = EventTally(engine.bus)
        self._write_credit = 0.0
        self._read_debt = 0.0
        # Flat per-cause cumulative KB at the last bandwidth sample; kept
        # as two plain dicts so the per-tick sampling path reads the
        # disk's totals directly instead of snapshotting nested dicts.
        self._bw_last_read: dict[str, float] = {}
        self._bw_last_write: dict[str, float] = {}
        self._bw_causes: list[str] = []
        self._bw_cause_sizes: tuple[int, int] = (-1, -1)
        self._bw_lr: list[float] = []
        self._bw_lw: list[float] = []
        self._bw_series: list[TimeSeries] = []
        self._bw_appends: list = []
        self._sample_appends: tuple = ()
        self._bw_last_tick = 0
        self._ops_scale = config.ops_scale
        self._stall_last = 0.0
        self._last_cache_stats: CacheStats | None = None
        self._last_hit_sample_tick: int | None = None
        #: Hit-ratio points are computed over windows of this many ticks so
        #: each point aggregates enough reads to be a meaningful ratio (a
        #: per-tick ratio over a handful of reads is dominated by sampling
        #: noise and, averaged, biased low: miss ticks complete few reads).
        self.hit_ratio_window_s = 20

    # ------------------------------------------------------------------
    # Pricing.
    # ------------------------------------------------------------------
    def price_read(
        self,
        cost: ReadCost,
        pairs_returned: int,
        utilization: float,
        is_scan: bool = False,
    ) -> float:
        """Modeled service seconds of one (simulated) read.

        Delegates to the prebound :class:`~repro.sim.kernel.ReadPricer`,
        whose arithmetic matches module :func:`price_read` exactly.
        """
        return self.pricer.price(cost, pairs_returned, utilization, is_scan)

    # ------------------------------------------------------------------
    # The run loop.
    # ------------------------------------------------------------------
    def run(self, duration_s: int | None = None, sample_every: int = 1) -> RunResult:
        """Drive the engine for ``duration_s`` virtual seconds."""
        duration = duration_s if duration_s is not None else self.config.duration_s
        result = RunResult(engine=self.engine.name, duration_s=duration)
        events_before = dict(self.event_tally.counts)
        bw_baseline = self._snapshot_cause_totals()
        self._bw_last_read = {
            cause: kinds["read_kb"] for cause, kinds in bw_baseline.items()
        }
        self._bw_last_write = {
            cause: kinds["write_kb"] for cause, kinds in bw_baseline.items()
        }
        # Drop the cause-aligned sampling slots: the first _sample of
        # this run rebuilds them from the freshly seeded dicts above.
        self._bw_cause_sizes = (-1, -1)
        self._bw_causes = []
        self._bw_lr = []
        self._bw_lw = []
        self._bw_series = []
        self._bw_appends = []
        self._bw_last_tick = self.clock.now
        stall_baseline = self.engine.stats.stall_seconds
        self._stall_last = stall_baseline
        # Prebound per-tick series appends: ``result`` is fixed for the
        # whole run, so _sample pays one tuple unpack instead of three
        # attribute lookups per series per tick.
        self._sample_appends = (
            result.throughput_qps.times.append,
            result.throughput_qps.values.append,
            result.cache_usage.times.append,
            result.cache_usage.values.append,
            result.db_size_mb.times.append,
            result.db_size_mb.values.append,
            result.disk_utilization.times.append,
            result.disk_utilization.values.append,
            result.stall.times.append,
            result.stall.values.append,
            result.buffer_size_mb.times.append,
            result.buffer_size_mb.values.append,
        )
        bus = self.engine.bus
        # Tally-only buses count events immediately and never construct
        # them, so the per-tick buffer bracket would only shuttle an
        # always-empty list; skip it for the whole run (subscriptions
        # cannot change mid-drive).
        counting_only = bus.counting_only
        for _ in range(duration):
            now = self.clock.now
            # When every subscriber tolerates end-of-tick delivery the
            # tick's events go out in one batched flush; otherwise the
            # bus stays synchronous and this is a no-op pair.
            buffering = False if counting_only else bus.begin_buffer()
            try:
                self._apply_writes(result)
                self.engine.tick(now)
                utilization = self.engine.disk.utilization()
                reads = self._apply_reads(utilization, result)
                if now % sample_every == 0:
                    self._sample(now, reads, utilization, result)
            finally:
                if buffering:
                    bus.flush_buffer()
            self.clock.advance(1)
        result.event_counts = {
            name: count - events_before.get(name, 0)
            for name, count in self.event_tally.counts.items()
            if count - events_before.get(name, 0)
        }
        result.bandwidth_kb_by_cause = self._cause_window(bw_baseline)
        result.stall_seconds = self.engine.stats.stall_seconds - stall_baseline
        return result

    # ------------------------------------------------------------------
    # Per-cause bandwidth bookkeeping.
    # ------------------------------------------------------------------
    def _snapshot_cause_totals(self) -> dict[str, dict[str, float]]:
        return {
            cause: dict(kinds)
            for cause, kinds in self.engine.disk.cause_totals().items()
        }

    def _cause_window(
        self, baseline: dict[str, dict[str, float]]
    ) -> dict[str, dict[str, float]]:
        """Per-cause read/write KB accumulated since ``baseline``."""
        window: dict[str, dict[str, float]] = {}
        for cause, kinds in self._snapshot_cause_totals().items():
            before = baseline.get(cause, {"read_kb": 0.0, "write_kb": 0.0})
            window[cause] = {
                "read_kb": kinds["read_kb"] - before["read_kb"],
                "write_kb": kinds["write_kb"] - before["write_kb"],
            }
        return window

    def _apply_writes(self, result: RunResult) -> None:
        self._write_credit += self.config.write_rate_pairs_per_s
        count = int(self._write_credit)
        self._write_credit -= count
        for _ in range(count):
            self.engine.put(self.workload.next_write_key(self.rng))
            result.writes_applied += 1

    def _apply_reads(self, utilization: float, result: RunResult) -> int:
        # A read that started near the end of a second keeps its threads
        # busy into the next one; the debt carries over so thread-time is
        # conserved over the run (threads blocked on a long disk read are
        # simply unavailable).
        budget = float(self.config.read_threads) - self._read_debt
        if self._kernel is not None:
            reads, budget = self._kernel.run_tick(
                self.rng, budget, utilization, result, self.profiler
            )
        else:
            reads, budget = self._apply_reads_scalar(budget, utilization, result)
        self._read_debt = -budget if budget < 0.0 else 0.0
        result.reads_completed += reads
        return reads

    def _apply_reads_scalar(
        self, budget: float, utilization: float, result: RunResult
    ) -> tuple[int, float]:
        """The original per-op read chain.

        Kept as the executable reference the batched kernel is proven
        against: the differential tests run every pinned seed through
        both paths and require bit-identical results.
        """
        reads = 0
        while budget > 0.0 and reads < _MAX_READS_PER_TICK:
            if self.scan_mode:
                low, high = self.workload.next_scan_range(self.rng)
                scan = self.engine.scan(low, high)
                cost, pairs = scan.cost, len(scan.entries)
            else:
                key = self.workload.next_read_key(self.rng)
                got = self.engine.get(key)
                cost, pairs = got.cost, 0
            priced = self.price_read(cost, pairs, utilization, self.scan_mode)
            self.profiler.record_read(cost, utilization, pairs, self.scan_mode)
            budget -= priced
            result.read_latencies_s.append(priced / self.config.ops_scale)
            reads += 1
        return reads, budget

    def _sample(
        self, now: int, reads: int, utilization: float, result: RunResult
    ) -> None:
        # Runs once per tick: series appends were prebound at run start
        # (the method-call form is TimeSeries.add) and constants are
        # prebound.
        ops_scale = self._ops_scale
        (
            tp_time,
            tp_value,
            cu_time,
            cu_value,
            db_time,
            db_value,
            du_time,
            du_value,
            st_time,
            st_value,
            bf_time,
            bf_value,
        ) = self._sample_appends
        tp_time(now)
        tp_value(reads * ops_scale)
        if self.metric_cache is not None:
            stats = self.metric_cache.stats
            due = (
                self._last_hit_sample_tick is None
                or now - self._last_hit_sample_tick >= self.hit_ratio_window_s
            )
            if due:
                if self._last_cache_stats is None:
                    ratio = stats.hit_ratio
                else:
                    ratio = stats.interval_hit_ratio(self._last_cache_stats)
                self._last_cache_stats = stats.snapshot()
                self._last_hit_sample_tick = now
                result.hit_ratio.add(now, ratio)
            cu_time(now)
            cu_value(self.metric_cache.usage)
        disk = self.engine.disk
        size_kb = disk.live_kb + disk.tick_temp_space_kb()
        db_time(now)
        db_value(size_kb * ops_scale / 1024.0)
        du_time(now)
        du_value(utilization)
        stall_total = self.engine.stats.stall_seconds
        st_time(now)
        st_value(stall_total - self._stall_last)
        self._stall_last = stall_total
        buffer_kb = self.engine.compaction_buffer_kb
        if buffer_kb is not None:
            bf_time(now)
            bf_value(buffer_kb * ops_scale / 1024.0)
        # Per-cause disk bandwidth: combined read+write KB/s since the
        # previous sample, in the same simulated-KB units as DiskStats.
        # Reads the disk's cumulative dicts directly — the expression
        # order matches the old nested-snapshot arithmetic exactly, so
        # the series values are unchanged.  The cause sets only ever
        # grow, so the sorted iteration order, previous-total slots and
        # output series are kept as lists aligned by cause index and
        # rebuilt only when either dict gains a key.
        read_totals = disk.cause_read_kb
        write_totals = disk.cause_write_kb
        dt = max(1, now - self._bw_last_tick)
        sizes = (len(read_totals), len(write_totals))
        if sizes != self._bw_cause_sizes:
            self._rebuild_bw_slots(result, read_totals, write_totals, sizes)
        last_read = self._bw_lr
        last_write = self._bw_lw
        read_get = read_totals.get
        write_get = write_totals.get
        for i, (cause, append_time, append_value) in enumerate(
            self._bw_appends
        ):
            read_kb = read_get(cause, 0.0)
            write_kb = write_get(cause, 0.0)
            delta_kb = read_kb - last_read[i] + write_kb - last_write[i]
            append_time(now)
            append_value(delta_kb / dt)
            last_read[i] = read_kb
            last_write[i] = write_kb
        self._bw_last_tick = now

    def _rebuild_bw_slots(
        self,
        result: RunResult,
        read_totals: dict[str, float],
        write_totals: dict[str, float],
        sizes: tuple[int, int],
    ) -> None:
        """Re-derive the cause-aligned bandwidth sampling lists."""
        # Fold the aligned last-total slots back into the dicts first so
        # existing causes keep their previous totals across the rebuild.
        for i, cause in enumerate(self._bw_causes):
            self._bw_last_read[cause] = self._bw_lr[i]
            self._bw_last_write[cause] = self._bw_lw[i]
        causes = sorted(read_totals.keys() | write_totals.keys())
        by_cause = result.bandwidth_by_cause
        bw_series = []
        for cause in causes:
            series = by_cause.get(cause)
            if series is None:
                series = by_cause[cause] = TimeSeries(f"bandwidth.{cause}")
            bw_series.append(series)
        self._bw_causes = causes
        self._bw_cause_sizes = sizes
        self._bw_lr = [self._bw_last_read.get(c, 0.0) for c in causes]
        self._bw_lw = [self._bw_last_write.get(c, 0.0) for c in causes]
        self._bw_series = bw_series
        # Prebound (cause, times.append, values.append) triples: the
        # per-tick loop pays no attribute lookups on the series objects.
        self._bw_appends = [
            (cause, series.times.append, series.values.append)
            for cause, series in zip(causes, bw_series)
        ]
