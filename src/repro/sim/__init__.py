"""Simulation harness: clock, driver, metrics, experiments, reporting."""

from repro.sim.clock import VirtualClock
from repro.sim.driver import MixedReadWriteDriver
from repro.sim.experiment import (
    ENGINE_NAMES,
    ExperimentSetup,
    build_engine,
    preload,
    run_experiment,
    run_profiled,
)
from repro.sim.metrics import RunResult, TimeSeries
from repro.sim.report import ascii_table, mark_line, series_block, sparkline

__all__ = [
    "ENGINE_NAMES",
    "ExperimentSetup",
    "MixedReadWriteDriver",
    "RunResult",
    "TimeSeries",
    "VirtualClock",
    "ascii_table",
    "build_engine",
    "mark_line",
    "preload",
    "run_experiment",
    "run_profiled",
    "series_block",
    "sparkline",
]

from repro.sim.ycsb_driver import YCSBDriver  # noqa: E402

__all__.append("YCSBDriver")
