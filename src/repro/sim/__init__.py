"""Simulation harness: clock, driver, metrics, experiments, sweeps."""

from repro.clock import VirtualClock
from repro.sim.driver import MixedReadWriteDriver
from repro.sim.experiment import (
    ENGINE_NAMES,
    ENGINE_SPECS,
    EngineSpec,
    ExperimentSetup,
    build_engine,
    execute,
    execute_with_trace,
    preload,
    run_experiment,
    run_profiled,
)
from repro.sim.metrics import RunResult, TimeSeries
from repro.sim.report import ascii_table, mark_line, series_block, sparkline
from repro.sim.spec import ExperimentSpec
from repro.sim.sweep import (
    CellSummary,
    SpecOutcome,
    SweepOutcome,
    expand_grid,
    run_sweep,
    summarize_cells,
)

__all__ = [
    "CellSummary",
    "ENGINE_NAMES",
    "ENGINE_SPECS",
    "EngineSpec",
    "ExperimentSetup",
    "ExperimentSpec",
    "MixedReadWriteDriver",
    "RunResult",
    "SpecOutcome",
    "SweepOutcome",
    "TimeSeries",
    "VirtualClock",
    "ascii_table",
    "build_engine",
    "execute",
    "execute_with_trace",
    "expand_grid",
    "mark_line",
    "preload",
    "run_experiment",
    "run_profiled",
    "run_sweep",
    "series_block",
    "sparkline",
    "summarize_cells",
]

from repro.sim.ycsb_driver import YCSBDriver  # noqa: E402

__all__.append("YCSBDriver")
