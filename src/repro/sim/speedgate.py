"""Simulator speed baseline: measurement, recording, and the CI gate.

The repo pins its own performance the same way it pins the paper's
figures.  ``benchmarks/baseline.json`` records two things:

* the **seed** numbers — the Fig. 8 grid's wall-clock and sim-ops/s as
  measured on the pre-kernel scalar tree (commit pinned in the file),
  kept so every later measurement can report an honest multiple; and
* the **recorded** numbers — the grid as measured on the current tree
  when the baseline was last re-recorded (``repro bench-baseline
  --record``), which is the floor the CI gate enforces.

The gate (``repro bench-baseline --check``) re-times the grid and fails
when the best trial lands more than ``1 - min_ratio`` below the recorded
ops/s (default ``min_ratio = 0.8``: >20% below fails).  Identity comes
first: per-engine read/write counts must match the recorded ones exactly
— a count drift means the simulation changed, and the baseline must be
re-recorded deliberately rather than silently re-timed.

Environment overrides for noisy runners:

``REPRO_SPEED_GATE``
    ``off`` / ``0`` / ``skip`` bypasses the gate entirely (it still
    measures and reports).
``REPRO_SPEED_GATE_RATIO``
    Replaces ``min_ratio`` (e.g. ``0.5`` on a shared CI box).
``REPRO_BASELINE_PATH``
    Alternate ``baseline.json`` location.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from dataclasses import dataclass, field
from pathlib import Path

BASELINE_SCHEMA_VERSION = 1

#: The Fig. 8 point-read grid: the paper's main comparison, one run per
#: engine at the benchmark scale.  This is the unit every number in
#: ``baseline.json`` refers to.
GRID_ENGINES: tuple[str, ...] = ("blsm", "leveldb", "blsm+warmup", "lsbm")
GRID_SCALE = 2048
GRID_DURATION_S = 4000
GRID_SEED = 1

DEFAULT_MIN_RATIO = 0.8
DEFAULT_TRIALS = 5


def find_baseline_path() -> Path:
    """Locate ``benchmarks/baseline.json`` (env override, then upward)."""
    override = os.environ.get("REPRO_BASELINE_PATH")
    if override:
        return Path(override)
    here = Path(__file__).resolve()
    for parent in here.parents:
        candidate = parent / "benchmarks" / "baseline.json"
        if candidate.exists():
            return candidate
    # Fall back to the repo-layout guess (src/repro/sim -> repo root)
    # even if the file does not exist yet (--record creates it).
    return here.parents[3] / "benchmarks" / "baseline.json"


def load_baseline(path: Path | None = None) -> dict:
    path = path or find_baseline_path()
    payload = json.loads(path.read_text())
    version = payload.get("schema_version")
    if version != BASELINE_SCHEMA_VERSION:
        raise ValueError(
            f"baseline {path}: schema_version {version} != "
            f"{BASELINE_SCHEMA_VERSION}"
        )
    return payload


def measure_grid(trials: int = DEFAULT_TRIALS) -> dict:
    """Time the Fig. 8 grid ``trials`` times in this process.

    Returns a dict with per-trial grid walls, best/median aggregates,
    per-engine telemetry from the best trial, and the identity section
    (per-engine read/write counts — constant across trials by
    construction; verified here rather than assumed).
    """
    from repro.sim.sweep import expand_grid, run_sweep

    specs = expand_grid(
        GRID_ENGINES,
        seeds=(GRID_SEED,),
        scale=GRID_SCALE,
        duration_s=GRID_DURATION_S,
    )
    trial_walls: list[float] = []
    trial_engines: list[dict] = []
    identity: dict | None = None
    total_ops = 0
    for _ in range(max(1, trials)):
        outcome = run_sweep(specs, jobs=1)
        wall = sum(run.wall_clock_s for run in outcome.outcomes)
        engines = {}
        counts = {"reads_completed": {}, "writes_applied": {}}
        ops = 0
        for run in outcome.outcomes:
            reads = run.result.reads_completed
            writes = run.result.writes_applied
            ops += reads + writes
            engines[run.spec.engine] = {
                "wall_clock_s": round(run.wall_clock_s, 4),
                "ops_per_s": round((reads + writes) / run.wall_clock_s, 2),
            }
            counts["reads_completed"][run.spec.engine] = reads
            counts["writes_applied"][run.spec.engine] = writes
        if identity is None:
            identity, total_ops = counts, ops
        elif counts != identity:
            raise RuntimeError(
                "grid op counts changed between trials — the simulation "
                "is non-deterministic; refusing to record a baseline"
            )
        trial_walls.append(wall)
        trial_engines.append(engines)
    best_index = min(range(len(trial_walls)), key=trial_walls.__getitem__)
    best_wall = trial_walls[best_index]
    median_wall = statistics.median(trial_walls)
    return {
        "grid": {
            "engines": list(GRID_ENGINES),
            "scale": GRID_SCALE,
            "duration_s": GRID_DURATION_S,
            "seed": GRID_SEED,
            "total_ops": total_ops,
        },
        "trials": len(trial_walls),
        "trial_walls_s": [round(w, 4) for w in trial_walls],
        "best": {
            "grid_wall_s": round(best_wall, 4),
            "grid_ops_per_s": round(total_ops / best_wall, 2),
        },
        "median": {
            "grid_wall_s": round(median_wall, 4),
            "grid_ops_per_s": round(total_ops / median_wall, 2),
        },
        "engines": trial_engines[best_index],
        "identity": identity,
        "measured_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }


@dataclass
class GateOutcome:
    """Result of checking a measurement against the recorded baseline."""

    passed: bool
    skipped: bool = False
    ratio: float | None = None  #: measured best / recorded best ops/s.
    min_ratio: float = DEFAULT_MIN_RATIO
    reasons: list[str] = field(default_factory=list)

    @property
    def status(self) -> str:
        if self.skipped:
            return "SKIPPED"
        return "PASS" if self.passed else "FAIL"


def _env_ratio(default: float) -> float:
    raw = os.environ.get("REPRO_SPEED_GATE_RATIO")
    if not raw:
        return default
    ratio = float(raw)
    if not 0.0 < ratio <= 1.0:
        raise ValueError(
            f"REPRO_SPEED_GATE_RATIO={raw!r} must be in (0, 1]"
        )
    return ratio


def gate_disabled() -> bool:
    return os.environ.get("REPRO_SPEED_GATE", "").lower() in (
        "off", "0", "skip", "false",
    )


def evaluate_gate(measured: dict, baseline: dict) -> GateOutcome:
    """Check a :func:`measure_grid` result against the recorded floor.

    Identity is checked before speed: mismatched per-engine op counts
    fail regardless of the ratio, with a message telling the author to
    re-record on purpose.
    """
    min_ratio = _env_ratio(
        baseline.get("gate", {}).get("min_ratio", DEFAULT_MIN_RATIO)
    )
    if gate_disabled():
        return GateOutcome(
            passed=True, skipped=True, min_ratio=min_ratio,
            reasons=["REPRO_SPEED_GATE disabled the gate"],
        )
    outcome = GateOutcome(passed=True, min_ratio=min_ratio)
    recorded = baseline["recorded"]
    if measured["identity"] != recorded["identity"]:
        outcome.passed = False
        outcome.reasons.append(
            "per-engine op counts differ from the recorded baseline — "
            "the simulation changed; re-record with "
            "`repro bench-baseline --record` if the change is intended"
        )
        for section in ("reads_completed", "writes_applied"):
            for engine in GRID_ENGINES:
                got = measured["identity"][section].get(engine)
                want = recorded["identity"][section].get(engine)
                if got != want:
                    outcome.reasons.append(
                        f"  {engine}.{section}: measured {got}, "
                        f"recorded {want}"
                    )
        return outcome
    floor = recorded["best"]["grid_ops_per_s"]
    measured_best = measured["best"]["grid_ops_per_s"]
    outcome.ratio = measured_best / floor
    if outcome.ratio < min_ratio:
        outcome.passed = False
        outcome.reasons.append(
            f"best trial {measured_best:,.0f} ops/s is "
            f"{(1 - outcome.ratio) * 100:.1f}% below the recorded "
            f"{floor:,.0f} ops/s (allowed: {(1 - min_ratio) * 100:.0f}%)"
        )
    return outcome


def format_report(
    measured: dict,
    baseline: dict | None,
    outcome: GateOutcome | None = None,
) -> str:
    """Human-readable comparison block for logs and CI artifacts."""
    lines = [
        f"Fig. 8 grid ({'+'.join(GRID_ENGINES)}; scale {GRID_SCALE}, "
        f"duration {GRID_DURATION_S}s, seed {GRID_SEED}), "
        f"{measured['trials']} trial(s):",
        f"  best    {measured['best']['grid_wall_s']:.3f}s  "
        f"{measured['best']['grid_ops_per_s']:>10,.0f} ops/s",
        f"  median  {measured['median']['grid_wall_s']:.3f}s  "
        f"{measured['median']['grid_ops_per_s']:>10,.0f} ops/s",
    ]
    for engine, cell in measured["engines"].items():
        lines.append(
            f"    {engine:<12} {cell['wall_clock_s']:.3f}s  "
            f"{cell['ops_per_s']:>10,.0f} ops/s"
        )
    if baseline is not None:
        seed = baseline.get("seed_scalar")
        if seed:
            multiple = (
                measured["best"]["grid_ops_per_s"] / seed["grid_ops_per_s"]
            )
            lines.append(
                f"  vs seed scalar tree ({seed['commit'][:7]}): "
                f"{multiple:.2f}x its {seed['grid_ops_per_s']:,.0f} ops/s"
            )
        recorded = baseline.get("recorded")
        if recorded:
            ratio = (
                measured["best"]["grid_ops_per_s"]
                / recorded["best"]["grid_ops_per_s"]
            )
            lines.append(
                f"  vs recorded baseline: {ratio:.2f}x its "
                f"{recorded['best']['grid_ops_per_s']:,.0f} ops/s"
            )
    if outcome is not None:
        lines.append(f"  speed gate: {outcome.status}")
        for reason in outcome.reasons:
            lines.append(f"    {reason}")
    return "\n".join(lines)


def record_baseline(
    measured: dict,
    path: Path | None = None,
    notes: str | None = None,
) -> Path:
    """Write ``baseline.json``, preserving the pinned seed section."""
    path = path or find_baseline_path()
    seed_scalar = None
    gate = {"min_ratio": DEFAULT_MIN_RATIO}
    if path.exists():
        previous = load_baseline(path)
        seed_scalar = previous.get("seed_scalar")
        gate = previous.get("gate", gate)
    payload = {
        "schema_version": BASELINE_SCHEMA_VERSION,
        "grid": measured["grid"],
        "seed_scalar": seed_scalar,
        "recorded": {
            "measured_at": measured["measured_at"],
            "trials": measured["trials"],
            "trial_walls_s": measured["trial_walls_s"],
            "best": measured["best"],
            "median": measured["median"],
            "engines": measured["engines"],
            "identity": measured["identity"],
        },
        "gate": gate,
    }
    if notes:
        payload["notes"] = notes
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path
