"""Experiment assembly: build an engine stack, preload it, run the driver.

Each of the paper's tests is "pick an engine variant, preload the 20 GB
data set, run the RangeHot workload for 20,000 s while writing at 1,000
OPS".  :func:`run_experiment` packages that; benchmarks and examples call
it with different engines, durations and scales.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.db_cache import DBBufferCache
from repro.cache.os_cache import OSBufferCache
from repro.config import SystemConfig
from repro.core.lsbm import LSbMTree
from repro.errors import ConfigError
from repro.lsm.blsm import BLSMTree
from repro.lsm.leveldb import LevelDBTree
from repro.lsm.sm_tree import SMTree
from repro.clock import VirtualClock
from repro.obs.prof import DEFAULT_SAMPLE_EVERY, SpanProfiler
from repro.obs.trace import TraceRecorder
from repro.sim.driver import MixedReadWriteDriver
from repro.sim.metrics import RunResult
from repro.sstable.entry import Entry
from repro.storage.disk import SimulatedDisk
from repro.substrate import Substrate
from repro.variants.hbase import HBaseStyleStore
from repro.variants.kv_store import KVCachedBLSM
from repro.variants.warmup import WarmupBLSMTree
from repro.workload.ycsb import RangeHotWorkload

#: Engine registry: name -> constructor(config, clock, disk, caches...).
ENGINE_NAMES = (
    "leveldb",
    "leveldb-oscache",
    "blsm",
    "blsm-dual",
    "sm",
    "lsbm",
    "lsbm-dual",
    "blsm+warmup",
    "blsm+kvcache",
    "hbase",
    "hbase-nomajor",
)

#: The dual-cache stacks model the paper's actual memory layout
#: (Section VI-A): 6 GB DB cache plus "the rest memory space is shared by
#: the indices ..., OS buffer cache, and the operating system" — we give
#: the OS page cache a quarter of the DB cache's budget.  DB misses fall
#: through to the OS cache, which also absorbs compaction streams, so
#: invalidated DB blocks sometimes reload cheaply from pages the
#: compaction just wrote.
_DUAL_OS_FRACTION = 0.25


@dataclass
class ExperimentSetup:
    """A fully wired engine stack ready to drive."""

    engine: object
    config: SystemConfig
    clock: VirtualClock
    disk: SimulatedDisk
    db_cache: DBBufferCache | None
    os_cache: OSBufferCache | None
    substrate: Substrate | None = None


def build_engine(name: str, config: SystemConfig) -> ExperimentSetup:
    """Construct one engine variant with its cache stack.

    Every variant is wired through one :class:`~repro.substrate.Substrate`
    so its disk and caches publish into the same metrics registry and
    event bus.  ``leveldb-oscache`` is the Fig. 2 configuration: no DB
    cache, all reads (queries *and* compactions) share the OS page cache.
    """
    db_cache: DBBufferCache | None = None
    os_cache: OSBufferCache | None = None

    if name == "leveldb-oscache":
        os_cache = OSBufferCache(
            capacity_pages=config.cache_blocks, page_size_kb=config.block_size_kb
        )
        substrate = Substrate.create(config, os_cache=os_cache)
        engine: object = LevelDBTree(substrate=substrate)
    elif name == "blsm+kvcache":
        substrate = Substrate.create(config)
        engine = KVCachedBLSM(substrate=substrate)
        db_cache = engine.db_cache
        substrate = engine.substrate  # The cache-bound sibling.
    elif name in ("blsm-dual", "lsbm-dual"):
        db_cache = DBBufferCache(config.cache_blocks)
        os_cache = OSBufferCache(
            capacity_pages=max(1, int(config.cache_blocks * _DUAL_OS_FRACTION)),
            page_size_kb=config.block_size_kb,
        )
        substrate = Substrate.create(config, db_cache=db_cache, os_cache=os_cache)
        cls = BLSMTree if name == "blsm-dual" else LSbMTree
        engine = cls(substrate=substrate)
    elif name in ("hbase", "hbase-nomajor"):
        db_cache = DBBufferCache(config.cache_blocks)
        substrate = Substrate.create(config, db_cache=db_cache)
        engine = HBaseStyleStore(
            substrate=substrate,
            major_interval_s=5_000 if name == "hbase" else None,
        )
    else:
        db_cache = DBBufferCache(config.cache_blocks)
        classes = {
            "leveldb": LevelDBTree,
            "blsm": BLSMTree,
            "sm": SMTree,
            "lsbm": LSbMTree,
            "blsm+warmup": WarmupBLSMTree,
        }
        try:
            cls = classes[name]
        except KeyError:
            raise ConfigError(
                f"unknown engine {name!r}; choose from {ENGINE_NAMES}"
            ) from None
        substrate = Substrate.create(config, db_cache=db_cache)
        engine = cls(substrate=substrate)

    return ExperimentSetup(
        engine,
        config,
        substrate.clock,
        substrate.disk,
        db_cache,
        os_cache,
        substrate,
    )


def preload(setup: ExperimentSetup) -> None:
    """Load the unique data set into the last level (the paper's DB).

    The paper's writes are all updates of a 20 GB pre-existing unique data
    set ("all inserted data except the first 20GB data are repeated data
    for level 3"); loading it straight into the last level reproduces the
    steady state its tests start from.
    """
    config = setup.config
    entries = [Entry(key, 0) for key in range(config.unique_keys)]
    setup.engine.bulk_load(entries)


def _drive(
    setup: ExperimentSetup,
    duration_s: int | None,
    seed: int,
    scan_mode: bool,
    do_preload: bool,
    profiler: SpanProfiler | None = None,
) -> RunResult:
    """Preload (optionally) and drive one wired stack to a result.

    Shared by :func:`run_experiment` and :func:`run_profiled`: the result
    always carries the substrate registry's closing snapshot in
    ``result.metrics``.
    """
    if do_preload:
        preload(setup)
    workload = RangeHotWorkload(setup.config)
    driver = MixedReadWriteDriver(
        setup.engine,
        setup.config,
        setup.clock,
        workload=workload,
        seed=seed,
        scan_mode=scan_mode,
        profiler=profiler,
    )
    result = driver.run(duration_s)
    result.config_note = f"scale-adjusted; scan_mode={scan_mode}"
    result.metrics = setup.substrate.registry.snapshot()
    return result


def _finalize_trace(
    setup: ExperimentSetup, engine_name: str, recorder: TraceRecorder
) -> None:
    """Close a recorder with the run's reconciliation footer."""
    stats = setup.engine.stats
    recorder.finalize(
        engine=engine_name,
        live_kb=setup.disk.live_kb,
        live_extents=setup.disk.live_extents,
        compaction_write_kb=stats.compaction_write_kb,
        compaction_read_kb=stats.compaction_read_kb,
        flushes=stats.flushes,
    )


def run_experiment(
    engine_name: str,
    config: SystemConfig,
    duration_s: int | None = None,
    seed: int = 0,
    scan_mode: bool = False,
    do_preload: bool = True,
    trace_path: str | None = None,
) -> RunResult:
    """Build, preload and drive one engine; returns the measured series.

    With ``trace_path`` every engine event — including the preload's file
    creations, so the ledger reconciles — is recorded and written out as
    JSONL, closed by a ``TraceEnd`` line carrying the final disk state.
    """
    setup = build_engine(engine_name, config)
    recorder: TraceRecorder | None = None
    if trace_path is not None:
        # Attach before the preload: its bulk-loaded files are part of
        # the file-lifecycle ledger the trace must balance.
        recorder = TraceRecorder(setup.clock, setup.substrate.bus)
    result = _drive(setup, duration_s, seed, scan_mode, do_preload)
    if recorder is not None and trace_path is not None:
        _finalize_trace(setup, engine_name, recorder)
        recorder.write_jsonl(trace_path)
    return result


def run_profiled(
    engine_name: str,
    config: SystemConfig,
    duration_s: int | None = None,
    seed: int = 0,
    scan_mode: bool = False,
    do_preload: bool = True,
    sample_every: int = DEFAULT_SAMPLE_EVERY,
    trace_path: str | None = None,
) -> tuple[RunResult, TraceRecorder]:
    """Like :func:`run_experiment`, with the causal profiling layer on.

    A :class:`~repro.obs.trace.TraceRecorder` is always attached (before
    the preload, so the ledger balances) and a
    :class:`~repro.obs.prof.SpanProfiler` samples every
    ``sample_every``-th read into the same trace.  Returns the run result
    *and* the finalized recorder, whose records feed
    :func:`repro.obs.diagnose.diagnose_dips` and the ``repro report``
    command; ``trace_path`` additionally writes the JSONL file.
    """
    setup = build_engine(engine_name, config)
    recorder = TraceRecorder(setup.clock, setup.substrate.bus)
    profiler = SpanProfiler(
        bus=setup.substrate.bus, config=config, sample_every=sample_every
    )
    result = _drive(
        setup, duration_s, seed, scan_mode, do_preload, profiler=profiler
    )
    _finalize_trace(setup, engine_name, recorder)
    if trace_path is not None:
        recorder.write_jsonl(trace_path)
    return result, recorder
