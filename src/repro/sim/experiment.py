"""Experiment assembly: build an engine stack, preload it, run the driver.

Each of the paper's tests is "pick an engine variant, preload the 20 GB
data set, run the RangeHot workload for 20,000 s while writing at 1,000
OPS".  The declarative core is :func:`execute`, which materializes one
:class:`~repro.sim.spec.ExperimentSpec`; :func:`run_experiment` and
:func:`run_profiled` are thin imperative wrappers over it.

Engine variants are declared in :data:`ENGINE_SPECS` — one
:class:`EngineSpec` per variant, naming its constructor and cache wiring
— and :data:`ENGINE_NAMES` is derived from that registry, so the engine
list has exactly one definition (the CLI, the check harness and the
benchmarks all import it from here).
"""

from __future__ import annotations

import gc
from dataclasses import dataclass
from typing import Callable

from repro.cache.db_cache import DBBufferCache
from repro.cache.os_cache import OSBufferCache
from repro.config import SystemConfig
from repro.core.lsbm import LSbMTree
from repro.errors import ConfigError
from repro.lsm.blsm import BLSMTree
from repro.lsm.composed import ComposedTree
from repro.lsm.leveldb import LevelDBTree
from repro.lsm.policy import CompactionAxes
from repro.lsm.sm_tree import SMTree
from repro.clock import VirtualClock
from repro.obs.prof import DEFAULT_SAMPLE_EVERY, SpanProfiler
from repro.obs.trace import TraceRecorder
from repro.sim.driver import MixedReadWriteDriver
from repro.sim.metrics import RunResult
from repro.sim.spec import ExperimentSpec
from repro.sstable.entry import Entry
from repro.storage.disk import SimulatedDisk
from repro.substrate import Substrate
from repro.variants.hbase import HBaseStyleStore
from repro.variants.kv_store import KVCachedBLSM
from repro.variants.warmup import WarmupBLSMTree
from repro.workload.ycsb import RangeHotWorkload

#: The dual-cache stacks model the paper's actual memory layout
#: (Section VI-A): 6 GB DB cache plus "the rest memory space is shared by
#: the indices ..., OS buffer cache, and the operating system" — we give
#: the OS page cache a quarter of the DB cache's budget.  DB misses fall
#: through to the OS cache, which also absorbs compaction streams, so
#: invalidated DB blocks sometimes reload cheaply from pages the
#: compaction just wrote.
_DUAL_OS_FRACTION = 0.25


@dataclass(frozen=True)
class EngineSpec:
    """Declarative description of one engine variant.

    ``wiring`` selects the cache stack the substrate is created with:

    * ``"db"``   — a DB block cache sized to ``config.cache_blocks``;
    * ``"os"``   — an OS page cache only (the Fig. 2 configuration);
    * ``"dual"`` — DB cache plus a quarter-budget OS page cache;
    * ``"self"`` — no caches up front: the engine carves its own cache
      hierarchy out of a bare substrate (the K-V cached variant) and the
      setup adopts the engine's ``db_cache``/``substrate``.

    ``axes`` names the variant's point in the compaction design space.
    Legacy engines are *fixed* points (their policies hardcode the
    axes); the composed variants are built from the axes stated here;
    ``None`` means the point is dynamic — the ``design`` engine reads
    its axes from the config's ``compaction_*`` fields at build time.
    """

    name: str
    factory: Callable[[Substrate], object]
    wiring: str = "db"
    summary: str = ""
    axes: CompactionAxes | None = None


#: Fixed design-space points of the legacy families (the wrapper
#: variants — warm-up, K-V cache, dual wiring — share their base
#: engine's point; what differs is the cache stack, not compaction).
_LEVELED_CURSOR = CompactionAxes(
    trigger="size-ratio", layout="leveling", granularity="partial",
    movement="merge",
)
_LEVELED_ADOPTING = CompactionAxes(
    trigger="size-ratio", layout="leveling", granularity="partial",
    movement="lazy-adoption",
)
_STEPPED_MERGE = CompactionAxes(
    trigger="size-ratio", layout="tiering", granularity="full-level",
    movement="merge",
)
_FLAT_STORE = CompactionAxes(
    trigger="level-saturation", layout="tiering", granularity="partial",
    movement="merge",
)
#: The composed variants' points: tiering with incremental oldest-pair
#: merges (distinct from the SM-tree's whole-level gear) and Dostoevsky
#: style lazy-leveling, each with and without the compaction buffer.
_TIERING = CompactionAxes(
    trigger="size-ratio", layout="tiering", granularity="partial",
    movement="merge",
)
_TIERING_BUFFERED = CompactionAxes(
    trigger="size-ratio", layout="tiering", granularity="partial",
    movement="lazy-adoption",
)
_LAZY_LEVELING = CompactionAxes(
    trigger="size-ratio", layout="lazy-leveling", granularity="full-level",
    movement="merge",
)
_LAZY_LEVELING_BUFFERED = CompactionAxes(
    trigger="size-ratio", layout="lazy-leveling", granularity="full-level",
    movement="lazy-adoption",
)


#: The single source of truth for engine variants.  Order is the
#: presentation order everywhere (CLI listings, conformance sweeps).
ENGINE_SPECS: dict[str, EngineSpec] = {
    spec.name: spec
    for spec in (
        EngineSpec(
            "leveldb",
            lambda substrate: LevelDBTree(substrate=substrate),
            "db",
            "LevelDB-style leveled tree with a DB block cache",
            _LEVELED_CURSOR,
        ),
        EngineSpec(
            "leveldb-oscache",
            lambda substrate: LevelDBTree(substrate=substrate),
            "os",
            "LevelDB on an OS page cache only (Fig. 2 configuration)",
            _LEVELED_CURSOR,
        ),
        EngineSpec(
            "blsm",
            lambda substrate: BLSMTree(substrate=substrate),
            "db",
            "bLSM: gear-scheduled leveled tree",
            _LEVELED_CURSOR,
        ),
        EngineSpec(
            "blsm-dual",
            lambda substrate: BLSMTree(substrate=substrate),
            "dual",
            "bLSM with DB cache + quarter-budget OS page cache",
            _LEVELED_CURSOR,
        ),
        EngineSpec(
            "sm",
            lambda substrate: SMTree(substrate=substrate),
            "db",
            "Stepped-merge tree: lazy multi-table levels",
            _STEPPED_MERGE,
        ),
        EngineSpec(
            "lsbm",
            lambda substrate: LSbMTree(substrate=substrate),
            "db",
            "LSbM-tree: bLSM plus the compaction buffer",
            _LEVELED_ADOPTING,
        ),
        EngineSpec(
            "lsbm-dual",
            lambda substrate: LSbMTree(substrate=substrate),
            "dual",
            "LSbM with DB cache + quarter-budget OS page cache",
            _LEVELED_ADOPTING,
        ),
        EngineSpec(
            "blsm+warmup",
            lambda substrate: WarmupBLSMTree(substrate=substrate),
            "db",
            "bLSM with incremental cache warm-up after compactions",
            _LEVELED_CURSOR,
        ),
        EngineSpec(
            "blsm+kvcache",
            lambda substrate: KVCachedBLSM(substrate=substrate),
            "self",
            "bLSM behind a key-value row cache (half the cache budget)",
            _LEVELED_CURSOR,
        ),
        EngineSpec(
            "hbase",
            # The major-compaction period comes from the config so it is
            # sweepable (``--set major_interval_s=...``); 0 disables.
            lambda substrate: HBaseStyleStore(
                substrate=substrate,
                major_interval_s=substrate.config.major_interval_s or None,
            ),
            "db",
            "HBase-style store with periodic major compactions",
            _FLAT_STORE,
        ),
        EngineSpec(
            "hbase-nomajor",
            lambda substrate: HBaseStyleStore(
                substrate=substrate, major_interval_s=None
            ),
            "db",
            "HBase-style store with major compactions disabled",
            _FLAT_STORE,
        ),
        EngineSpec(
            "design",
            # The dynamic point: axes come from the config's
            # ``compaction_*`` fields, so every axis is sweepable
            # (``--set compaction_layout=tiering,lazy-leveling``).
            lambda substrate: ComposedTree(substrate=substrate),
            "db",
            "Composed engine; axes read from the config's compaction_*",
        ),
        EngineSpec(
            "tiering",
            lambda substrate: ComposedTree(substrate=substrate, axes=_TIERING),
            "db",
            "Size-tiered levels, incremental oldest-pair merges",
            _TIERING,
        ),
        EngineSpec(
            "tiering+buffer",
            lambda substrate: ComposedTree(
                substrate=substrate, axes=_TIERING_BUFFERED
            ),
            "db",
            "Tiering with merge inputs adopted into a compaction buffer",
            _TIERING_BUFFERED,
        ),
        EngineSpec(
            "lazy-leveling",
            lambda substrate: ComposedTree(
                substrate=substrate, axes=_LAZY_LEVELING
            ),
            "db",
            "Tiered upper levels over a single-run last level (Dostoevsky)",
            _LAZY_LEVELING,
        ),
        EngineSpec(
            "lazy-leveling+buffer",
            lambda substrate: ComposedTree(
                substrate=substrate, axes=_LAZY_LEVELING_BUFFERED
            ),
            "db",
            "Lazy-leveling with the LSbM compaction buffer on top",
            _LAZY_LEVELING_BUFFERED,
        ),
    )
}

#: Engine names, in registry order — derived, never listed twice.
ENGINE_NAMES: tuple[str, ...] = tuple(ENGINE_SPECS)


@dataclass
class ExperimentSetup:
    """A fully wired engine stack ready to drive."""

    engine: object
    config: SystemConfig
    clock: VirtualClock
    disk: SimulatedDisk
    db_cache: DBBufferCache | None
    os_cache: OSBufferCache | None
    substrate: Substrate | None = None


def build_engine(name: str, config: SystemConfig) -> ExperimentSetup:
    """Construct one engine variant with its declared cache stack.

    Every variant is wired through one :class:`~repro.substrate.Substrate`
    so its disk and caches publish into the same metrics registry and
    event bus.  The variant's constructor and cache wiring come from its
    :class:`EngineSpec` in :data:`ENGINE_SPECS`.
    """
    spec = ENGINE_SPECS.get(name)
    if spec is None:
        raise ConfigError(
            f"unknown engine {name!r}; choose from {ENGINE_NAMES}"
        )

    db_cache: DBBufferCache | None = None
    os_cache: OSBufferCache | None = None
    if spec.wiring in ("db", "dual"):
        db_cache = DBBufferCache(config.cache_blocks)
    if spec.wiring == "os":
        os_cache = OSBufferCache(
            capacity_pages=config.cache_blocks, page_size_kb=config.block_size_kb
        )
    elif spec.wiring == "dual":
        os_cache = OSBufferCache(
            capacity_pages=max(1, int(config.cache_blocks * _DUAL_OS_FRACTION)),
            page_size_kb=config.block_size_kb,
        )

    substrate = Substrate.create(config, db_cache=db_cache, os_cache=os_cache)
    engine = spec.factory(substrate)
    if spec.wiring == "self":
        db_cache = engine.db_cache
        substrate = engine.substrate  # The cache-bound sibling.

    return ExperimentSetup(
        engine,
        config,
        substrate.clock,
        substrate.disk,
        db_cache,
        os_cache,
        substrate,
    )


def preload(setup: ExperimentSetup) -> None:
    """Load the unique data set into the last level (the paper's DB).

    The paper's writes are all updates of a 20 GB pre-existing unique data
    set ("all inserted data except the first 20GB data are repeated data
    for level 3"); loading it straight into the last level reproduces the
    steady state its tests start from.
    """
    config = setup.config
    entries = [Entry(key, 0) for key in range(config.unique_keys)]
    setup.engine.bulk_load(entries)


def _drive(
    setup: ExperimentSetup,
    duration_s: int | None,
    seed: int,
    scan_mode: bool,
    do_preload: bool,
    profiler: SpanProfiler | None = None,
) -> RunResult:
    """Preload (optionally) and drive one wired stack to a result.

    The result always carries the substrate registry's closing snapshot
    in ``result.metrics``.
    """
    if do_preload:
        preload(setup)
    workload = RangeHotWorkload(setup.config)
    driver = MixedReadWriteDriver(
        setup.engine,
        setup.config,
        setup.clock,
        workload=workload,
        seed=seed,
        scan_mode=scan_mode,
        profiler=profiler,
    )
    # The drive loop allocates heavily (entries, costs, per-tick lists)
    # but creates no reference cycles worth chasing mid-run, so cyclic-GC
    # generation sweeps are pure pause time.  Suspend collection for the
    # run and restore the caller's setting after; allocation totals and
    # results are unaffected (refcounting frees everything promptly).
    was_enabled = gc.isenabled()
    if was_enabled:
        gc.disable()
    try:
        result = driver.run(duration_s)
    finally:
        if was_enabled:
            gc.enable()
    result.config_note = f"scale-adjusted; scan_mode={scan_mode}"
    result.metrics = setup.substrate.registry.snapshot()
    return result


def _finalize_trace(
    setup: ExperimentSetup, engine_name: str, recorder: TraceRecorder
) -> None:
    """Close a recorder with the run's reconciliation footer."""
    stats = setup.engine.stats
    recorder.finalize(
        engine=engine_name,
        live_kb=setup.disk.live_kb,
        live_extents=setup.disk.live_extents,
        compaction_write_kb=stats.compaction_write_kb,
        compaction_read_kb=stats.compaction_read_kb,
        flushes=stats.flushes,
    )


def execute_with_trace(
    spec: ExperimentSpec,
) -> tuple[RunResult, TraceRecorder | None]:
    """Materialize one spec: build, preload, drive; return result + trace.

    A :class:`~repro.obs.trace.TraceRecorder` is attached (before the
    preload, so the file-lifecycle ledger balances) whenever the spec
    asks for profiling or a trace file; a
    :class:`~repro.obs.prof.SpanProfiler` samples reads when
    ``spec.profile`` is set.  ``spec.trace_path`` additionally writes the
    JSONL trace.
    """
    config = spec.config()
    setup = build_engine(spec.engine, config)
    recorder: TraceRecorder | None = None
    if spec.profile or spec.trace_path is not None:
        recorder = TraceRecorder(setup.clock, setup.substrate.bus)
    profiler: SpanProfiler | None = None
    if spec.profile:
        profiler = SpanProfiler(
            bus=setup.substrate.bus, config=config, sample_every=spec.sample_every
        )
    result = _drive(
        setup,
        spec.duration_s,
        spec.seed,
        spec.scan_mode,
        spec.do_preload,
        profiler=profiler,
    )
    if recorder is not None:
        _finalize_trace(setup, spec.engine, recorder)
        if spec.trace_path is not None:
            recorder.write_jsonl(spec.trace_path)
    return result, recorder


def execute(spec: ExperimentSpec) -> RunResult:
    """Materialize one :class:`ExperimentSpec` into its measured result.

    This is the single entry point every runner — the CLI, the sweep
    workers, the benchmarks — funnels through.
    """
    return execute_with_trace(spec)[0]


def run_experiment(
    engine_name: str,
    config: SystemConfig,
    duration_s: int | None = None,
    seed: int = 0,
    scan_mode: bool = False,
    do_preload: bool = True,
    trace_path: str | None = None,
) -> RunResult:
    """Build, preload and drive one engine; returns the measured series.

    Thin wrapper: packages the arguments as an
    :class:`~repro.sim.spec.ExperimentSpec` and calls :func:`execute`.
    With ``trace_path`` every engine event — including the preload's file
    creations, so the ledger reconciles — is recorded and written out as
    JSONL, closed by a ``TraceEnd`` line carrying the final disk state.
    """
    spec = ExperimentSpec.from_config(
        engine_name,
        config,
        duration_s=duration_s,
        seed=seed,
        scan_mode=scan_mode,
        do_preload=do_preload,
        trace_path=trace_path,
    )
    return execute(spec)


def run_profiled(
    engine_name: str,
    config: SystemConfig,
    duration_s: int | None = None,
    seed: int = 0,
    scan_mode: bool = False,
    do_preload: bool = True,
    sample_every: int = DEFAULT_SAMPLE_EVERY,
    trace_path: str | None = None,
) -> tuple[RunResult, TraceRecorder]:
    """Like :func:`run_experiment`, with the causal profiling layer on.

    Thin wrapper over :func:`execute_with_trace` with ``profile=True``.
    Returns the run result *and* the finalized recorder, whose records
    feed :func:`repro.obs.diagnose.diagnose_dips` and the ``repro
    report`` command; ``trace_path`` additionally writes the JSONL file.
    """
    spec = ExperimentSpec.from_config(
        engine_name,
        config,
        duration_s=duration_s,
        seed=seed,
        scan_mode=scan_mode,
        do_preload=do_preload,
        profile=True,
        sample_every=sample_every,
        trace_path=trace_path,
    )
    result, recorder = execute_with_trace(spec)
    assert recorder is not None  # profile=True always attaches one.
    return result, recorder
