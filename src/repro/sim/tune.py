"""Search the compaction design space for an SLO.

``repro tune`` treats the declarative axes from
:mod:`repro.lsm.policy` as a *search space* rather than a menu: a
candidate is an engine name plus a set of config overrides (typically
the ``compaction_*`` axis fields on the ``design`` engine), the grid of
candidates × seeds runs through the same process-pool sweep runner as
``repro sweep``, and each candidate is scored against one objective:

* ``p99`` — minimize the mean read p99 latency under open-loop load
  (the grid runs through the serve layer, so queueing and admission are
  part of the score);
* ``hit-stability`` — maximize the *floor* of the buffer-cache hit
  ratio (the 5th percentile of the per-second series, averaged over
  seeds).  The paper's headline claim is exactly this: compaction-
  induced cache invalidation shows up as hit-ratio *dips*, so a high
  floor means the design keeps caching effective through compactions.

Determinism: the sweep runner makes every cell a pure function of its
spec, candidates are ranked by ``(score, cell key)``, and the tie-break
key is total — the winner cannot depend on ``--jobs`` or scheduling
order.  The explanation layer reuses the diagnose module's dip
semantics (:func:`~repro.obs.diagnose.find_dips` crossings) plus the
per-cause bandwidth ledger to say *why* the winner wins, not just that
it does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import ConfigError
from repro.sim.experiment import ENGINE_NAMES
from repro.sim.metrics import RunResult, TimeSeries
from repro.sim.sweep import (
    SUMMARY_METRICS,
    SpecOutcome,
    SweepOutcome,
    _aggregate,
    expand_grid,
    run_sweep,
)

#: Objective name -> (direction, description).  ``min`` objectives score
#: "lower is better"; ``max`` objectives the opposite.
OBJECTIVES = {
    "p99": ("min", "mean read p99 latency (ms) under open-loop load"),
    "hit-stability": (
        "max",
        "5th-percentile hit-ratio floor, averaged over seeds",
    ),
}

#: Hit-ratio threshold whose downward crossings count as "dips" in the
#: explanation (same default as ``repro diagnose``).
DIP_THRESHOLD = 0.7

#: The percentile defining the hit-ratio *floor* for ``hit-stability``.
FLOOR_PERCENTILE = 5.0


def series_floor(
    series: TimeSeries, percentile: float = FLOOR_PERCENTILE, skip: int = 0
) -> float:
    """The ``percentile``-th percentile of the series' sampled values.

    Nearest-rank on the sorted post-warm-up window; 0.0 for an empty
    window (a run too short to sample scores as maximally unstable,
    which is the conservative direction for a stability objective).
    """
    window = sorted(series.values[skip:])
    if not window:
        return 0.0
    rank = min(len(window) - 1, int(len(window) * percentile / 100.0))
    return window[rank]


def _compaction_write_kb(result: RunResult) -> float:
    """Background compaction write traffic from the per-cause ledger."""
    return sum(
        totals.get("write_kb", 0.0)
        for cause, totals in result.bandwidth_kb_by_cause.items()
        if cause.startswith("compaction")
    )


def _hit_floor(result: RunResult) -> float:
    return series_floor(result.hit_ratio, skip=result.warmup_samples())


def _hit_dips(result: RunResult) -> float:
    return float(
        result.hit_ratio.dips_below(
            DIP_THRESHOLD, skip=result.warmup_samples()
        )
    )


#: Per-candidate evidence columns the explanation compares, beyond the
#: standard cell summary metrics: name -> extractor over one result.
EVIDENCE_METRICS = {
    "hit_floor": _hit_floor,
    "hit_dips": _hit_dips,
    "stall_seconds": lambda result: result.stall_seconds,
    "compaction_write_kb": _compaction_write_kb,
}


@dataclass
class CandidateScore:
    """One design-space candidate, scored and ranked."""

    key: str
    engine: str
    overrides: dict[str, object]
    seeds: list[int]
    score: float
    #: Standard cell stats (mean/std/min/max per SUMMARY_METRICS name).
    stats: dict[str, dict[str, float]]
    #: Explanation evidence (mean over seeds per EVIDENCE_METRICS name).
    evidence: dict[str, float] = field(default_factory=dict)

    def to_json_dict(self) -> dict[str, object]:
        return {
            "cell": self.key,
            "engine": self.engine,
            "overrides": dict(self.overrides),
            "seeds": list(self.seeds),
            "score": self.score,
            "stats": {name: dict(vals) for name, vals in self.stats.items()},
            "evidence": dict(self.evidence),
        }


@dataclass
class TuneOutcome:
    """A completed design-space search: ranked candidates + the sweep."""

    objective: str
    sweep: SweepOutcome
    #: Ranked best-first; ties broken by cell key (total order).
    candidates: list[CandidateScore]

    @property
    def winner(self) -> CandidateScore:
        return self.candidates[0]

    @property
    def runner_up(self) -> CandidateScore | None:
        return self.candidates[1] if len(self.candidates) > 1 else None

    def explanation(self) -> dict[str, object]:
        """Why the winner wins: evidence deltas against the runner-up.

        Each entry compares one evidence metric; ``advantage`` is signed
        so that positive always means "the winner is better on this
        axis" (hit_floor up is good, the rest down is good).
        """
        winner = self.winner
        runner = self.runner_up
        if runner is None:
            return {
                "summary": f"{winner.engine} is the only candidate",
                "deltas": {},
            }
        better_up = {"hit_floor"}
        deltas: dict[str, dict[str, float]] = {}
        for name in EVIDENCE_METRICS:
            w = winner.evidence.get(name, 0.0)
            r = runner.evidence.get(name, 0.0)
            advantage = (w - r) if name in better_up else (r - w)
            deltas[name] = {"winner": w, "runner_up": r,
                            "advantage": advantage}
        direction, _ = OBJECTIVES[self.objective]
        margin = (
            runner.score - winner.score
            if direction == "min"
            else winner.score - runner.score
        )
        strongest = max(deltas, key=lambda name: deltas[name]["advantage"])
        return {
            "summary": (
                f"{winner.key} beats {runner.key} on {self.objective} "
                f"by {margin:.4g}; largest evidence advantage: {strongest}"
            ),
            "margin": margin,
            "strongest_evidence": strongest,
            "deltas": deltas,
        }

    def to_payload(self, name: str = "design_space") -> dict:
        """Bench-schema payload: the sweep payload plus a ``tune`` section."""
        payload = self.sweep.to_payload(name)
        direction, description = OBJECTIVES[self.objective]
        payload["tune"] = {
            "objective": self.objective,
            "direction": direction,
            "description": description,
            "candidates": [c.to_json_dict() for c in self.candidates],
            "winner": self.winner.to_json_dict(),
            "explanation": self.explanation(),
        }
        payload["scalars"]["tune_candidates"] = float(len(self.candidates))
        payload["scalars"]["tune_winner_score"] = self.winner.score
        return payload


def _score_cell(objective: str, members: list[SpecOutcome]) -> float:
    if objective == "p99":
        values = [
            member.result.latency_percentile_s(99) * 1000.0
            for member in members
        ]
    else:  # hit-stability
        values = [_hit_floor(member.result) for member in members]
    return sum(values) / len(values)


def rank_candidates(
    objective: str, sweep: SweepOutcome
) -> list[CandidateScore]:
    """Group sweep outcomes into cells, score and rank them."""
    groups: dict[str, list[SpecOutcome]] = {}
    for outcome in sweep.outcomes:
        groups.setdefault(outcome.spec.cell_key(), []).append(outcome)
    candidates = []
    for key, members in groups.items():
        stats = {
            name: _aggregate([extract(member.result) for member in members])
            for name, extract in SUMMARY_METRICS.items()
        }
        evidence = {
            name: _aggregate(
                [extract(member.result) for member in members]
            )["mean"]
            for name, extract in EVIDENCE_METRICS.items()
        }
        candidates.append(
            CandidateScore(
                key=key,
                engine=members[0].spec.engine,
                overrides=dict(members[0].spec.overrides),
                seeds=[member.spec.seed for member in members],
                score=_score_cell(objective, members),
                stats=stats,
                evidence=evidence,
            )
        )
    direction, _ = OBJECTIVES[objective]
    sign = 1.0 if direction == "min" else -1.0
    candidates.sort(key=lambda c: (sign * c.score, c.key))
    return candidates


def run_tune(
    engines: Sequence[str],
    seeds: Sequence[int] = (0,),
    objective: str = "hit-stability",
    *,
    axes: dict[str, Sequence[object]] | None = None,
    base: str = "paper_scaled",
    scale: int = 2048,
    duration_s: int | None = None,
    jobs: int = 1,
    rate_qps: float = 2000.0,
    policy: str = "fifo",
    queue_bound: int = 64,
) -> TuneOutcome:
    """Run the candidate grid and rank it against ``objective``.

    Candidates are the cartesian product ``engines × axes`` (each axis
    maps a :class:`~repro.config.SystemConfig` field to its candidate
    values), replicated over ``seeds``.  ``p99`` routes the grid through
    the open-loop serve layer at ``rate_qps``; ``hit-stability`` uses
    the closed-loop driver.
    """
    if objective not in OBJECTIVES:
        raise ConfigError(
            f"unknown objective {objective!r}; "
            f"choose from {sorted(OBJECTIVES)}"
        )
    if objective == "p99":
        specs = _expand_serve_candidates(
            engines, seeds, axes=axes, base=base, scale=scale,
            duration_s=duration_s, rate_qps=rate_qps, policy=policy,
            queue_bound=queue_bound,
        )
    else:
        specs = expand_grid(
            engines, seeds, base=base, scale=scale,
            duration_s=duration_s, axes=axes,
        )
    sweep = run_sweep(specs, jobs=jobs)
    return TuneOutcome(
        objective=objective,
        sweep=sweep,
        candidates=rank_candidates(objective, sweep),
    )


def _expand_serve_candidates(
    engines: Sequence[str],
    seeds: Sequence[int],
    *,
    axes: dict[str, Sequence[object]] | None,
    base: str,
    scale: int,
    duration_s: int | None,
    rate_qps: float,
    policy: str,
    queue_bound: int,
) -> list:
    """The serve-spec mirror of :func:`expand_grid` for ``p99``."""
    import itertools

    from repro.serve.spec import ServiceSpec

    unknown = [name for name in engines if name not in ENGINE_NAMES]
    if unknown:
        raise ConfigError(
            f"unknown engines {unknown}; choose from {ENGINE_NAMES}"
        )
    if not engines or not seeds:
        raise ConfigError("run_tune needs at least one engine and one seed")
    axes = axes or {}
    keys = list(axes)
    specs = []
    for name in engines:
        for combo in itertools.product(*(axes[key] for key in keys)):
            for seed in seeds:
                specs.append(
                    ServiceSpec(
                        engine=name,
                        base=base,
                        scale=scale,
                        overrides=tuple(zip(keys, combo)),
                        duration_s=duration_s,
                        seed=seed,
                        policy=policy,
                        read_rate_qps=rate_qps,
                        queue_bound=queue_bound,
                    )
                )
    return specs
