"""Compatibility re-export; the clock lives at :mod:`repro.clock`.

Low-level substrates (storage, engines) need the clock without pulling in
the whole simulation package, so the implementation sits above the ``sim``
namespace; this alias keeps ``repro.sim.VirtualClock`` importable as the
natural name for simulation code.
"""

from repro.clock import VirtualClock

__all__ = ["VirtualClock"]
