"""Driving engines with arbitrary YCSB operation mixes.

:class:`~repro.sim.driver.MixedReadWriteDriver` reproduces the paper's
specific measurement (one paced writer + saturating readers on RangeHot).
This driver generalizes it: any :class:`~repro.workload.ycsb.YCSBWorkload`
operation mix (reads, updates, inserts, scans, read-modify-writes) is
executed by a fixed number of modeled client threads, each operation
priced through the same cost model, with the same per-second metrics.

This is what turns the reproduction into a general LSM workbench: YCSB
core workloads A-F run against any engine with three lines of code (see
``examples/ycsb_workloads.py`` for the lighter inline variant).

Pass an ``oracle`` (:class:`~repro.check.oracle.KVOracle`, preseeded
with whatever the engine was preloaded with) and the driver shadows
every operation: writes/deletes are recorded, every read, scan and
read-modify-write is checked against the oracle's expected values, and
mismatches are counted — so a YCSB run doubles as a differential test.
"""

from __future__ import annotations

import random

from repro.check.oracle import KVOracle
from repro.config import SystemConfig
from repro.clock import VirtualClock
from repro.sim.driver import MixedReadWriteDriver
from repro.sim.metrics import RunResult
from repro.workload.ycsb import OpKind, YCSBWorkload

#: Guard against degenerate near-zero op costs spinning a tick forever.
_MAX_OPS_PER_TICK = 50_000


class YCSBDriver:
    """Closed-loop driver: N client threads issuing a YCSB mix."""

    def __init__(
        self,
        engine,
        config: SystemConfig,
        clock: VirtualClock,
        workload: YCSBWorkload,
        seed: int = 0,
        client_threads: int | None = None,
        oracle: KVOracle | None = None,
    ) -> None:
        self.engine = engine
        self.config = config
        self.clock = clock
        self.workload = workload
        self.rng = random.Random(seed)
        self.client_threads = (
            client_threads if client_threads is not None else config.read_threads
        )
        # Reuse the RangeHot driver's pricing and sampling machinery.
        self._pricer = MixedReadWriteDriver(engine, config, clock, seed=seed)
        self._debt = 0.0
        self.ops_by_kind: dict[OpKind, int] = {kind: 0 for kind in OpKind}
        self.oracle = oracle
        self.reads_verified = 0
        self.read_mismatches = 0
        self.scans_verified = 0
        self.scan_mismatches = 0

    # ------------------------------------------------------------------
    # Oracle shadowing.
    # ------------------------------------------------------------------
    def _check_get(self, key: int, got) -> None:
        if self.oracle is None:
            return
        expect_found, expect_value = self.oracle.get(key)
        self.reads_verified += 1
        if got.found != expect_found or (
            expect_found and got.value != expect_value
        ):
            self.read_mismatches += 1

    def _check_scan(self, low: int, high: int, scan) -> None:
        if self.oracle is None:
            return
        self.scans_verified += 1
        got = [(entry.key, entry.value()) for entry in scan.entries]
        if got != self.oracle.scan(low, high):
            self.scan_mismatches += 1

    # ------------------------------------------------------------------
    # Operation execution with pricing.
    # ------------------------------------------------------------------
    def _execute(self, utilization: float) -> float:
        """Run one operation; returns its priced service seconds."""
        op = self.workload.next_operation(self.rng)
        self.ops_by_kind[op.kind] += 1
        write_price = self.config.cache_hit_s * self.config.ops_scale
        if op.kind in (OpKind.UPDATE, OpKind.INSERT):
            seq = self.engine.put(op.key)
            if self.oracle is not None:
                self.oracle.put(op.key, seq)
            return write_price
        if op.kind == OpKind.DELETE:
            self.engine.delete(op.key)
            if self.oracle is not None:
                self.oracle.delete(op.key)
            return write_price
        if op.kind == OpKind.READ:
            result = self.engine.get(op.key)
            self._check_get(op.key, result)
            return self._pricer.price_read(result.cost, 0, utilization)
        if op.kind == OpKind.SCAN:
            high = op.key + max(1, op.scan_length) - 1
            scan = self.engine.scan(op.key, high)
            self._check_scan(op.key, high, scan)
            return self._pricer.price_read(
                scan.cost, len(scan.entries), utilization, is_scan=True
            )
        # Read-modify-write: a read plus a write.
        result = self.engine.get(op.key)
        self._check_get(op.key, result)
        seq = self.engine.put(op.key)
        if self.oracle is not None:
            self.oracle.put(op.key, seq)
        return (
            self._pricer.price_read(result.cost, 0, utilization) + write_price
        )

    # ------------------------------------------------------------------
    # The run loop.
    # ------------------------------------------------------------------
    def run(self, duration_s: int) -> RunResult:
        result = RunResult(engine=self.engine.name, duration_s=duration_s)
        metric_cache = self._pricer.metric_cache
        events_before = dict(self._pricer.event_tally.counts)
        last_stats = None
        for _ in range(duration_s):
            now = self.clock.now
            self.engine.tick(now)
            utilization = self.engine.disk.utilization()
            budget = float(self.client_threads) - self._debt
            ops = 0
            while budget > 0.0 and ops < _MAX_OPS_PER_TICK:
                priced = self._execute(utilization)
                budget -= priced
                result.read_latencies_s.append(priced / self.config.ops_scale)
                ops += 1
            self._debt = -budget if budget < 0.0 else 0.0
            result.reads_completed += ops
            result.throughput_qps.add(now, ops * self.config.ops_scale)
            result.db_size_mb.add(
                now,
                (self.engine.disk.live_kb + self.engine.disk.tick_temp_space_kb())
                * self.config.ops_scale
                / 1024.0,
            )
            result.disk_utilization.add(now, utilization)
            if metric_cache is not None and now % 20 == 0:
                stats = metric_cache.stats
                ratio = (
                    stats.hit_ratio
                    if last_stats is None
                    else stats.interval_hit_ratio(last_stats)
                )
                last_stats = stats.snapshot()
                result.hit_ratio.add(now, ratio)
            self.clock.advance(1)
        tally = self._pricer.event_tally.counts
        result.event_counts = {
            name: count - events_before.get(name, 0)
            for name, count in tally.items()
            if count - events_before.get(name, 0)
        }
        return result
