"""Time-series metric collection for experiment runs.

Every figure in the paper's evaluation is either a per-second time series
(hit ratio, throughput, database size) or an average of one over the run.
:class:`TimeSeries` stores one sampled quantity; :class:`RunResult` bundles
the standard set the driver collects, with the averaging helpers the
summary figures (9, 11, 13) need.  Per-read latencies are kept in a
:class:`LatencyReservoir` — a paper-length run completes tens of millions
of reads, far too many to hold as individual floats.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.metrics import Reservoir

#: The driver's per-read latency sample is the one shared reservoir
#: implementation (Vitter's Algorithm R) from :mod:`repro.obs.metrics` —
#: the same sampler Histogram percentiles use.
LatencyReservoir = Reservoir


class TimeSeries:
    """A uniformly sampled (time, value) series."""

    __slots__ = ("name", "times", "values")

    def __init__(self, name: str) -> None:
        self.name = name
        self.times: list[int] = []
        self.values: list[float] = []

    def add(self, time: int, value: float) -> None:
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TimeSeries):
            return NotImplemented
        return (
            self.name == other.name
            and self.times == other.times
            and self.values == other.values
        )

    def to_dict(self) -> dict[str, object]:
        """JSON-friendly form: name plus parallel time/value lists."""
        return {
            "name": self.name,
            "times": list(self.times),
            "values": list(self.values),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TimeSeries":
        series = cls(payload["name"])
        series.times = [int(time) for time in payload["times"]]
        series.values = [float(value) for value in payload["values"]]
        return series

    def mean(self, skip: int = 0) -> float:
        """Average of the samples after skipping ``skip`` warm-up samples."""
        window = self.values[skip:]
        if not window:
            return 0.0
        return sum(window) / len(window)

    def minimum(self, skip: int = 0) -> float:
        window = self.values[skip:]
        return min(window) if window else 0.0

    def maximum(self, skip: int = 0) -> float:
        window = self.values[skip:]
        return max(window) if window else 0.0

    def stddev(self, skip: int = 0) -> float:
        window = self.values[skip:]
        if len(window) < 2:
            return 0.0
        mean = sum(window) / len(window)
        return (sum((v - mean) ** 2 for v in window) / (len(window) - 1)) ** 0.5

    def bucketed(self, buckets: int) -> list[tuple[int, float]]:
        """Downsample into ``buckets`` (time, mean) points for printing."""
        if not self.values or buckets < 1:
            return []
        size = max(1, len(self.values) // buckets)
        points: list[tuple[int, float]] = []
        for start in range(0, len(self.values), size):
            chunk = self.values[start : start + size]
            points.append((self.times[start], sum(chunk) / len(chunk)))
        return points

    def dips_below(self, threshold: float, skip: int = 0) -> int:
        """Count downward crossings of ``threshold`` (periodicity probe).

        Fig. 8's oscillation shows up as repeated crossings; a steady
        series crosses at most once.
        """
        crossings = 0
        above = None
        for value in self.values[skip:]:
            is_above = value >= threshold
            if above is True and not is_above:
                crossings += 1
            above = is_above
        return crossings


#: The per-second series bundled in every result, in declaration order.
_SERIES_FIELDS = (
    "hit_ratio",
    "throughput_qps",
    "db_size_mb",
    "cache_usage",
    "disk_utilization",
    "buffer_size_mb",
    "stall",
)


@dataclass
class RunResult:
    """Everything one driver run measured."""

    engine: str
    config_note: str = ""
    hit_ratio: TimeSeries = field(default_factory=lambda: TimeSeries("hit_ratio"))
    throughput_qps: TimeSeries = field(
        default_factory=lambda: TimeSeries("throughput_qps")
    )
    db_size_mb: TimeSeries = field(default_factory=lambda: TimeSeries("db_size_mb"))
    cache_usage: TimeSeries = field(
        default_factory=lambda: TimeSeries("cache_usage")
    )
    disk_utilization: TimeSeries = field(
        default_factory=lambda: TimeSeries("disk_utilization")
    )
    buffer_size_mb: TimeSeries = field(
        default_factory=lambda: TimeSeries("buffer_size_mb")
    )
    #: Write-stall seconds accrued per sample window (see
    #: ``EngineStats.stall_seconds`` — this is its windowed derivative).
    stall: TimeSeries = field(default_factory=lambda: TimeSeries("stall"))
    reads_completed: int = 0
    writes_applied: int = 0
    duration_s: int = 0
    #: Total write-stall seconds over this run's window.
    stall_seconds: float = 0.0
    #: Modeled per-operation read latencies in real seconds (one
    #: observation per simulated read, already divided back by
    #: ``ops_scale``), reservoir-sampled to a bounded memory footprint.
    read_latencies_s: LatencyReservoir = field(default_factory=LatencyReservoir)
    #: Engine events observed during the run, counted by type name.
    event_counts: dict[str, int] = field(default_factory=dict)
    #: Per-cause background+foreground disk bandwidth (KB/s of combined
    #: read+write traffic), one series per attribution cause ("flush",
    #: "compaction:L1", "wal", "query", ...), sampled every driver tick.
    bandwidth_by_cause: dict[str, TimeSeries] = field(default_factory=dict)
    #: Per-cause disk traffic totals over this run's window, as
    #: ``{cause: {"read_kb": x, "write_kb": y}}`` — these sum-reconcile
    #: with the DiskStats sequential counters (the bandwidth-attribution
    #: invariant).
    bandwidth_kb_by_cause: dict[str, dict[str, float]] = field(
        default_factory=dict
    )
    #: The substrate registry's closing snapshot (set by run_experiment).
    metrics: dict[str, object] = field(default_factory=dict)

    def warmup_samples(self, fraction: float = 0.1) -> int:
        """Sample count to skip so summaries ignore the cold start."""
        return int(len(self.hit_ratio) * fraction)

    def mean_hit_ratio(self, warmup_fraction: float = 0.1) -> float:
        return self.hit_ratio.mean(self.warmup_samples(warmup_fraction))

    def mean_throughput(self, warmup_fraction: float = 0.1) -> float:
        return self.throughput_qps.mean(self.warmup_samples(warmup_fraction))

    def mean_db_size_mb(self, warmup_fraction: float = 0.0) -> float:
        return self.db_size_mb.mean(self.warmup_samples(warmup_fraction))

    def latency_percentile_s(self, percentile: float) -> float:
        """Read-latency percentile (e.g. 50, 99) over the whole run."""
        return self.read_latencies_s.percentile(percentile)

    def to_dict(self) -> dict[str, object]:
        """The *complete* run state as a JSON-friendly dict.

        Unlike :meth:`to_json_dict` (a human-oriented summary), this is
        the lossless transport format: every time series, the latency
        reservoir's retained sample, event counts, per-cause bandwidth
        and the metrics snapshot all round-trip exactly through
        :meth:`from_dict` — it is how sweep workers ship results across
        the process boundary.
        """
        return {
            "engine": self.engine,
            "config_note": self.config_note,
            "duration_s": self.duration_s,
            "reads_completed": self.reads_completed,
            "writes_applied": self.writes_applied,
            "stall_seconds": self.stall_seconds,
            "series": {
                name: getattr(self, name).to_dict() for name in _SERIES_FIELDS
            },
            "read_latencies_s": self.read_latencies_s.to_dict(),
            "event_counts": dict(self.event_counts),
            "bandwidth_by_cause": {
                cause: series.to_dict()
                for cause, series in sorted(self.bandwidth_by_cause.items())
            },
            "bandwidth_kb_by_cause": {
                cause: dict(totals)
                for cause, totals in sorted(self.bandwidth_kb_by_cause.items())
            },
            "metrics": dict(self.metrics),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RunResult":
        """Rebuild a result from :meth:`to_dict` output (the worker
        transport); the round-trip preserves equality."""
        result = cls(
            engine=payload["engine"],
            config_note=payload.get("config_note", ""),
            duration_s=int(payload["duration_s"]),
            reads_completed=int(payload["reads_completed"]),
            writes_applied=int(payload["writes_applied"]),
        )
        result.stall_seconds = float(payload.get("stall_seconds", 0.0))
        for name in _SERIES_FIELDS:
            # ``.get`` tolerates payloads written before a series existed.
            data = payload["series"].get(name)
            if data is not None:
                setattr(result, name, TimeSeries.from_dict(data))
        result.read_latencies_s = LatencyReservoir.from_dict(
            payload["read_latencies_s"]
        )
        result.event_counts = {
            name: int(count) for name, count in payload["event_counts"].items()
        }
        result.bandwidth_by_cause = {
            cause: TimeSeries.from_dict(series)
            for cause, series in payload["bandwidth_by_cause"].items()
        }
        result.bandwidth_kb_by_cause = {
            cause: {kind: float(kb) for kind, kb in totals.items()}
            for cause, totals in payload["bandwidth_kb_by_cause"].items()
        }
        result.metrics = dict(payload["metrics"])
        return result

    def to_json_dict(self) -> dict[str, object]:
        """The run summary as a JSON-serializable dict (``cli --json``)."""
        return {
            "engine": self.engine,
            "config_note": self.config_note,
            "duration_s": self.duration_s,
            "reads_completed": self.reads_completed,
            "writes_applied": self.writes_applied,
            "mean_hit_ratio": self.mean_hit_ratio(),
            "mean_throughput_qps": self.mean_throughput(),
            "mean_db_size_mb": self.mean_db_size_mb(),
            "latency_p50_ms": self.latency_percentile_s(50) * 1000,
            "latency_p99_ms": self.latency_percentile_s(99) * 1000,
            "stall_seconds": self.stall_seconds,
            "event_counts": dict(self.event_counts),
            "bandwidth_kb_by_cause": {
                cause: dict(totals)
                for cause, totals in sorted(self.bandwidth_kb_by_cause.items())
            },
            "metrics": dict(self.metrics),
        }

    def to_csv_rows(self) -> list[str]:
        """The per-second series as CSV lines (header first).

        Columns: time, throughput_qps, hit_ratio (blank between hit-ratio
        sampling windows), db_size_mb, cache_usage, disk_utilization,
        buffer_size_mb (blank for engines without a compaction buffer).
        """
        hit_by_time = dict(zip(self.hit_ratio.times, self.hit_ratio.values))
        usage_by_time = dict(zip(self.cache_usage.times, self.cache_usage.values))
        buffer_by_time = dict(
            zip(self.buffer_size_mb.times, self.buffer_size_mb.values)
        )
        rows = [
            "time_s,throughput_qps,hit_ratio,db_size_mb,cache_usage,"
            "disk_utilization,buffer_size_mb"
        ]
        for index, time in enumerate(self.throughput_qps.times):
            hit = hit_by_time.get(time)
            usage = usage_by_time.get(time)
            buffer_mb = buffer_by_time.get(time)
            rows.append(
                ",".join(
                    [
                        str(time),
                        f"{self.throughput_qps.values[index]:.3f}",
                        "" if hit is None else f"{hit:.4f}",
                        f"{self.db_size_mb.values[index]:.1f}",
                        "" if usage is None else f"{usage:.4f}",
                        f"{self.disk_utilization.values[index]:.4f}",
                        "" if buffer_mb is None else f"{buffer_mb:.1f}",
                    ]
                )
            )
        return rows
