"""Parallel experiment fleet: fan declarative specs across a process pool.

Every paper figure is a grid of (engine × seed × config) cells.  This
module runs such grids as fast as the hardware allows:

* :func:`expand_grid` turns axis lists (engines, seeds, config-override
  axes) into the cartesian list of :class:`~repro.sim.spec.ExperimentSpec`;
* :func:`run_sweep` executes a spec list — serially for ``jobs=1``, or
  fanned over a ``ProcessPoolExecutor`` — and transports every
  :class:`~repro.sim.metrics.RunResult` back through its lossless
  ``to_dict``/``from_dict`` round-trip, so the parallel path returns
  results *identical* to the serial path for the same specs and seeds;
* :func:`summarize_cells` aggregates seed replicas of the same cell into
  mean/std/min/max summaries per headline metric;
* :meth:`SweepOutcome.to_payload` emits the bench-schema JSON the CI
  smoke job validates and archives, including per-run wall clock and the
  sweep's measured parallel speedup.

Determinism: each spec carries its own seed and every worker builds its
stack from scratch, so a cell's result is a pure function of its spec —
scheduling order and worker count cannot change any number.
"""

from __future__ import annotations

import itertools
import json
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import ConfigError
from repro.sim.experiment import ENGINE_NAMES, execute
from repro.sim.metrics import RunResult
from repro.sim.spec import ExperimentSpec

#: Keep in sync with ``benchmarks.common.BENCH_SCHEMA_VERSION`` (the
#: validator lives there; src must not import the benchmarks package).
#: Version 2: run entries grew a required ``stall_seconds`` field and
#: serve cells may appear (tagged ``"kind": "serve"``).
#: Version 3: cluster run entries (tagged ``"kind": "cluster"``, from
#: ``repro cluster``) and cluster-shard spec payloads in the pool.
SWEEP_SCHEMA_VERSION = 3

#: Headline metrics aggregated per cell: name -> extractor.
SUMMARY_METRICS = {
    "hit_ratio": lambda result: result.mean_hit_ratio(),
    "throughput_qps": lambda result: result.mean_throughput(),
    "db_size_mb": lambda result: result.mean_db_size_mb(),
    "latency_p50_ms": lambda result: result.latency_percentile_s(50) * 1000,
    "latency_p99_ms": lambda result: result.latency_percentile_s(99) * 1000,
}


def expand_grid(
    engines: Sequence[str],
    seeds: Sequence[int] = (0,),
    *,
    base: str = "paper_scaled",
    scale: int = 2048,
    duration_s: int | None = None,
    scan_mode: bool = False,
    axes: dict[str, Sequence[object]] | None = None,
) -> list[ExperimentSpec]:
    """The cartesian grid ``engines × axes × seeds`` as a spec list.

    ``axes`` maps :class:`~repro.config.SystemConfig` field names to the
    values to sweep; every combination of one value per axis becomes one
    cell, replicated once per seed.
    """
    unknown = [name for name in engines if name not in ENGINE_NAMES]
    if unknown:
        raise ConfigError(
            f"unknown engines {unknown}; choose from {ENGINE_NAMES}"
        )
    if not engines or not seeds:
        raise ConfigError("expand_grid needs at least one engine and one seed")
    axes = axes or {}
    keys = list(axes)
    specs = []
    for name in engines:
        for combo in itertools.product(*(axes[key] for key in keys)):
            for seed in seeds:
                specs.append(
                    ExperimentSpec(
                        engine=name,
                        base=base,
                        scale=scale,
                        overrides=tuple(zip(keys, combo)),
                        duration_s=duration_s,
                        seed=seed,
                        scan_mode=scan_mode,
                    )
                )
    return specs


def _execute_payload(payload: dict) -> dict:
    """Worker entry point: spec dict in, ``{result, wall_clock_s}`` out.

    Takes and returns plain dicts so the transport format is exactly the
    documented ``to_dict`` round-trip on both sides of the pool — the
    ``jobs=1`` path calls this same function in-process, which is what
    makes serial and parallel runs bit-identical.  Spec dicts tagged
    ``"kind": "serve"`` run through the open-loop service layer instead
    of the closed-loop driver.
    """
    started = time.perf_counter()
    if payload.get("kind") == "serve":
        from repro.serve.service import execute_serve
        from repro.serve.spec import ServiceSpec

        result = execute_serve(ServiceSpec.from_dict(payload))
    elif payload.get("kind") == "cluster-shard":
        from repro.cluster.shard import ShardSpec, execute_shard

        result = execute_shard(ShardSpec.from_dict(payload))
    else:
        result = execute(ExperimentSpec.from_dict(payload))
    wall_clock_s = time.perf_counter() - started
    return {"result": result.to_dict(), "wall_clock_s": wall_clock_s}


def _load_result(payload: dict) -> RunResult:
    """Rebuild a transported result, dispatching on its ``kind`` tag."""
    if payload.get("kind") == "serve":
        from repro.serve.result import ServeResult

        return ServeResult.from_dict(payload)
    return RunResult.from_dict(payload)


@dataclass
class SpecOutcome:
    """One executed spec: the transported result plus worker telemetry."""

    spec: ExperimentSpec
    result: RunResult
    wall_clock_s: float

    @property
    def sim_ops_per_s(self) -> float:
        sim_ops = self.result.reads_completed + self.result.writes_applied
        return sim_ops / self.wall_clock_s if self.wall_clock_s > 0 else 0.0


@dataclass
class CellSummary:
    """Seed replicas of one grid cell, aggregated."""

    key: str
    engine: str
    seeds: list[int]
    #: metric -> {"mean", "std", "min", "max"} over the replicas.
    stats: dict[str, dict[str, float]]

    @property
    def replicas(self) -> int:
        return len(self.seeds)

    def to_json_dict(self) -> dict[str, object]:
        return {
            "cell": self.key,
            "engine": self.engine,
            "seeds": list(self.seeds),
            "stats": {name: dict(values) for name, values in self.stats.items()},
        }


def _aggregate(values: list[float]) -> dict[str, float]:
    mean = sum(values) / len(values)
    if len(values) > 1:
        std = (sum((v - mean) ** 2 for v in values) / (len(values) - 1)) ** 0.5
    else:
        std = 0.0
    return {"mean": mean, "std": std, "min": min(values), "max": max(values)}


def summarize_cells(outcomes: Iterable[SpecOutcome]) -> list[CellSummary]:
    """Group outcomes by cell (spec minus seed) and aggregate each metric."""
    groups: dict[str, list[SpecOutcome]] = {}
    for outcome in outcomes:
        groups.setdefault(outcome.spec.cell_key(), []).append(outcome)
    summaries = []
    for key, members in groups.items():
        stats = {
            name: _aggregate([extract(member.result) for member in members])
            for name, extract in SUMMARY_METRICS.items()
        }
        summaries.append(
            CellSummary(
                key=key,
                engine=members[0].spec.engine,
                seeds=[member.spec.seed for member in members],
                stats=stats,
            )
        )
    return summaries


@dataclass
class SweepOutcome:
    """Everything one sweep produced, plus how fast it ran."""

    outcomes: list[SpecOutcome]
    jobs: int
    wall_clock_s: float

    def cells(self) -> list[CellSummary]:
        return summarize_cells(self.outcomes)

    @property
    def serial_estimate_s(self) -> float:
        """Sum of per-run worker wall clocks ≈ the ``jobs=1`` wall clock."""
        return sum(outcome.wall_clock_s for outcome in self.outcomes)

    @property
    def speedup(self) -> float:
        """Measured parallel speedup over the serial estimate."""
        if self.wall_clock_s <= 0:
            return 1.0
        return self.serial_estimate_s / self.wall_clock_s

    def to_payload(self, name: str = "sweep") -> dict:
        """The sweep as a bench-schema JSON payload.

        Conforms to ``benchmarks.common.validate_bench``: each run entry
        is the result's summary plus its worker wall clock; sweep-level
        telemetry (jobs, total wall clock, serial estimate, speedup)
        lands in ``scalars`` and, structured, under ``"sweep"``.
        """
        runs: dict[str, dict] = {}
        for outcome in self.outcomes:
            entry = outcome.result.to_json_dict()
            entry["wall_clock_s"] = outcome.wall_clock_s
            entry["sim_ops_per_s"] = outcome.sim_ops_per_s
            runs[outcome.spec.label()] = entry
        specs = [outcome.spec for outcome in self.outcomes]
        scales = sorted({spec.scale for spec in specs})
        durations = sorted(
            {outcome.result.duration_s for outcome in self.outcomes}
        )
        cells = self.cells()
        return {
            "schema_version": SWEEP_SCHEMA_VERSION,
            "name": name,
            # Mixed-axis sweeps report 0 (no single value applies).
            "scale": scales[0] if len(scales) == 1 else 0,
            "duration_s": durations[0] if len(durations) == 1 else 0,
            "seed": specs[0].seed if specs else 0,
            "runs": runs,
            "scalars": {
                "sweep_jobs": float(self.jobs),
                "sweep_runs": float(len(self.outcomes)),
                "sweep_cells": float(len(cells)),
                "sweep_wall_clock_s": self.wall_clock_s,
                "sweep_serial_estimate_s": self.serial_estimate_s,
                "sweep_speedup_x": self.speedup,
            },
            "sweep": {
                "jobs": self.jobs,
                "wall_clock_s": self.wall_clock_s,
                "serial_estimate_s": self.serial_estimate_s,
                "speedup_x": self.speedup,
                "specs": [spec.to_dict() for spec in specs],
                "cells": [cell.to_json_dict() for cell in cells],
            },
        }

    def write_payload(self, path: str | Path, name: str = "sweep") -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.to_payload(name), indent=2, sort_keys=True) + "\n"
        )
        return path

    def write_runs(self, out_dir: str | Path) -> list[Path]:
        """One full (lossless ``to_dict``) JSON file per run."""
        out_dir = Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        paths = []
        for outcome in self.outcomes:
            stem = outcome.spec.label().replace("/", "_").replace("=", "-")
            path = out_dir / f"{stem}.json"
            path.write_text(
                json.dumps(outcome.result.to_dict(), sort_keys=True) + "\n"
            )
            paths.append(path)
        return paths


def run_sweep(specs: Sequence, jobs: int = 1) -> SweepOutcome:
    """Execute every spec, fanned over ``jobs`` worker processes.

    Accepts :class:`~repro.sim.spec.ExperimentSpec` and
    :class:`~repro.serve.spec.ServiceSpec` entries interchangeably (the
    worker dispatches on the spec dict's ``kind`` tag).
    Results come back in spec order regardless of completion order.
    Duplicate labels are rejected — they would collide in the payload's
    ``runs`` dict and silently drop data.
    """
    specs = list(specs)
    if jobs < 1:
        raise ConfigError(f"jobs must be >= 1, got {jobs}")
    labels = [spec.label() for spec in specs]
    duplicates = sorted({label for label in labels if labels.count(label) > 1})
    if duplicates:
        raise ConfigError(f"duplicate sweep specs: {duplicates}")
    payloads = [spec.to_dict() for spec in specs]
    started = time.perf_counter()
    if jobs == 1 or len(specs) <= 1:
        raws = [_execute_payload(payload) for payload in payloads]
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(specs))) as pool:
            raws = list(pool.map(_execute_payload, payloads))
    wall_clock_s = time.perf_counter() - started
    outcomes = [
        SpecOutcome(
            spec=spec,
            result=_load_result(raw["result"]),
            wall_clock_s=raw["wall_clock_s"],
        )
        for spec, raw in zip(specs, raws)
    ]
    return SweepOutcome(outcomes=outcomes, jobs=jobs, wall_clock_s=wall_clock_s)
