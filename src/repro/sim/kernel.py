"""The batched hot-path kernel for the read side of the simulation.

Profiling the Fig. 8 grid shows the read loop spends most of its time in
Python dispatch, not in the model: every read re-resolved a dozen config
attributes inside :func:`~repro.sim.driver.price_read`, paid a method
call per cost-model stage, appended its latency to the reservoir one
value at a time, and bumped registry counters per operation.  This
module batches all of that per *tick* instead of per *op*:

* :class:`ReadPricer` prebinds every pricing constant once and inlines
  the cost-model formulas, keeping the exact floating-point expression
  order of :func:`~repro.sim.driver.price_read` — the scalar function
  stays as the executable reference, and the differential tests assert
  the two produce bit-identical prices;
* :class:`ReadKernel` runs one tick's reads in a tight loop with every
  bound method hoisted, accumulates priced latencies in a pending batch,
  and flushes them to the run's reservoir in chunks of ``batch_size``
  via :meth:`~repro.obs.metrics.Reservoir.extend` — chunk size is
  observationally invisible (a hypothesis property test randomizes it),
  because the budget arithmetic, RNG consumption, and append order per
  read are unchanged.

The kernel is deliberately *not* speculative: the thread budget decides
after each read whether another starts, and the workload draws one key
per read from the shared RNG, so keys are drawn lazily — pre-drawing an
array would advance the RNG past what the scalar path consumes and break
bit-identity with it.  Everything downstream of the key draw is batched.
"""

from __future__ import annotations

from repro.config import SystemConfig
from repro.lsm.base import ReadCost
from repro.obs.prof import NULL_PROFILER, SpanProfiler
from repro.storage.iomodel import _MAX_UTILIZATION, IOCostModel

#: Latencies accumulated before a flush to the reservoir.  Any positive
#: value yields identical results (proven by the property tests); this is
#: purely an amortization knob.
DEFAULT_BATCH_SIZE = 256

#: Hard cap on simulated reads per tick, guarding against a degenerate
#: (near-zero) priced cost making a tick spin forever.  Shared with the
#: scalar path in :mod:`repro.sim.driver`.
MAX_READS_PER_TICK = 50_000


class ReadPricer:
    """:func:`~repro.sim.driver.price_read` with constants prebound.

    One instance per driver; every per-call ``config.*`` attribute fetch
    and cost-model method call is resolved at construction.  The inlined
    arithmetic preserves the scalar function's expression order exactly
    (float addition is not associative, and the RunResult series must be
    bit-identical between the two), including the conditional structure:
    zero-probe bloom terms still add ``0.0``, and disk terms are only
    added when the scalar path would add them.
    """

    __slots__ = (
        "config",
        "cost_model",
        "ops_scale",
        "_cache_hit_s",
        "_block_hit_s",
        "_os_hit_s",
        "_scan_pair_cpu_s",
        "_scan_table_cpu_s",
        "_bloom_probe_s",
        "_random_read_s",
        "_seek_s",
        "_fg_bandwidth",
    )

    def __init__(self, config: SystemConfig, cost_model: IOCostModel) -> None:
        self.config = config
        self.cost_model = cost_model
        self.ops_scale = config.ops_scale
        self._cache_hit_s = config.cache_hit_s
        self._block_hit_s = config.block_hit_s
        self._os_hit_s = config.os_hit_s
        self._scan_pair_cpu_s = config.scan_pair_cpu_s
        self._scan_table_cpu_s = config.scan_table_cpu_s
        self._bloom_probe_s = config.bloom_probe_s
        self._random_read_s = config.random_read_s
        self._seek_s = config.seek_s
        self._fg_bandwidth = config.foreground_bandwidth_kb_per_s

    def service_seconds(
        self,
        cost: ReadCost,
        pairs_returned: int,
        utilization: float,
        is_scan: bool = False,
    ) -> float:
        """Unscaled modeled service seconds of one (simulated) read.

        This is :meth:`price` without the final ``ops_scale`` multiply
        — the quantity the serve layer records as a request's service
        time, and exactly the left-to-right sum of
        :meth:`stage_terms`.
        """
        seconds = (
            self._cache_hit_s
            + cost.cache_hit_blocks * self._block_hit_s
            + cost.os_hit_blocks * self._os_hit_s
            + pairs_returned * self._scan_pair_cpu_s
        )
        if is_scan:
            seconds += cost.tables_checked * self._scan_table_cpu_s
        seconds += cost.bloom_probes * self._bloom_probe_s
        blocks = cost.disk_random_blocks
        seq_runs = cost.seq_runs
        seq_kb = cost.seq_kb
        if blocks or seq_runs or seq_kb:
            clamped = utilization
            if clamped < 0.0:
                clamped = 0.0
            elif clamped > _MAX_UTILIZATION:
                clamped = _MAX_UTILIZATION
            queueing = 1.0 / (1.0 - clamped)
            if blocks:
                seconds += blocks * self._random_read_s * queueing
            if seq_runs or seq_kb:
                seconds += (
                    seq_kb / self._fg_bandwidth + seq_runs * self._seek_s
                ) * queueing
        return seconds

    def stage_terms(
        self,
        cost: ReadCost,
        pairs_returned: int,
        utilization: float,
        is_scan: bool = False,
    ) -> list[tuple[str, float]]:
        """The labeled addends of :meth:`service_seconds`, in order.

        Exactness contract (what the tracing layer depends on): the
        terms are exactly the addends of :meth:`service_seconds` in its
        evaluation order, so a plain left-to-right float accumulation
        of the returned values is *bitwise equal* to
        ``service_seconds(...)`` — float addition isn't associative,
        but this is the same sequence of additions.  Absent conditional
        terms would contribute ``+0.0``, which is bitwise identity on
        these positive partial sums, so the list may safely be filtered
        to its nonzero entries downstream.
        """
        terms = [
            ("cpu", self._cache_hit_s),
            ("db_cache", cost.cache_hit_blocks * self._block_hit_s),
            ("os_cache", cost.os_hit_blocks * self._os_hit_s),
            ("scan_pairs", pairs_returned * self._scan_pair_cpu_s),
        ]
        if is_scan:
            terms.append(
                ("scan_tables", cost.tables_checked * self._scan_table_cpu_s)
            )
        terms.append(("bloom", cost.bloom_probes * self._bloom_probe_s))
        blocks = cost.disk_random_blocks
        seq_runs = cost.seq_runs
        seq_kb = cost.seq_kb
        if blocks or seq_runs or seq_kb:
            clamped = utilization
            if clamped < 0.0:
                clamped = 0.0
            elif clamped > _MAX_UTILIZATION:
                clamped = _MAX_UTILIZATION
            queueing = 1.0 / (1.0 - clamped)
            if blocks:
                terms.append(
                    ("disk_random", blocks * self._random_read_s * queueing)
                )
            if seq_runs or seq_kb:
                terms.append(
                    (
                        "disk_seq",
                        (seq_kb / self._fg_bandwidth + seq_runs * self._seek_s)
                        * queueing,
                    )
                )
        return terms

    def price(
        self,
        cost: ReadCost,
        pairs_returned: int,
        utilization: float,
        is_scan: bool = False,
    ) -> float:
        """Modeled service seconds of one (simulated) read, scaled.

        The body duplicates :meth:`service_seconds` (plus the final
        ``ops_scale`` multiply) rather than calling it: this is the
        per-read closed-loop hot path, and the extra call costs the
        speed-gate floor real throughput.  The two must stay
        addend-identical — ``price == service_seconds * ops_scale``
        bitwise is pinned by ``tests/test_tracing.py``.
        """
        seconds = (
            self._cache_hit_s
            + cost.cache_hit_blocks * self._block_hit_s
            + cost.os_hit_blocks * self._os_hit_s
            + pairs_returned * self._scan_pair_cpu_s
        )
        if is_scan:
            seconds += cost.tables_checked * self._scan_table_cpu_s
        seconds += cost.bloom_probes * self._bloom_probe_s
        blocks = cost.disk_random_blocks
        seq_runs = cost.seq_runs
        seq_kb = cost.seq_kb
        if blocks or seq_runs or seq_kb:
            clamped = utilization
            if clamped < 0.0:
                clamped = 0.0
            elif clamped > _MAX_UTILIZATION:
                clamped = _MAX_UTILIZATION
            queueing = 1.0 / (1.0 - clamped)
            if blocks:
                seconds += blocks * self._random_read_s * queueing
            if seq_runs or seq_kb:
                seconds += (
                    seq_kb / self._fg_bandwidth + seq_runs * self._seek_s
                ) * queueing
        return seconds * self.ops_scale

    def price_batch(
        self,
        shapes: list[tuple[ReadCost, int]],
        utilization: float,
        is_scan: bool = False,
    ) -> list[float]:
        """Price an array of ``(cost, pairs_returned)`` shapes.

        One utilization applies to the whole batch (utilization is a
        per-tick quantity); element ``i`` equals
        ``price(shapes[i][0], shapes[i][1], utilization, is_scan)``.
        """
        price = self.price
        return [price(cost, pairs, utilization, is_scan) for cost, pairs in shapes]


class ReadKernel:
    """Executes one tick's thread-budgeted reads as a batched loop.

    Owned by :class:`~repro.sim.driver.MixedReadWriteDriver` when it is
    constructed with ``kernel="batched"`` (the default).  The driver
    keeps the budget/debt bookkeeping; the kernel runs the loop.
    """

    __slots__ = ("engine", "workload", "pricer", "scan_mode", "batch_size")

    def __init__(
        self,
        engine,
        workload,
        pricer: ReadPricer,
        scan_mode: bool = False,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.engine = engine
        self.workload = workload
        self.pricer = pricer
        self.scan_mode = scan_mode
        self.batch_size = batch_size

    def run_tick(
        self,
        rng,
        budget: float,
        utilization: float,
        result,
        profiler: SpanProfiler = NULL_PROFILER,
        max_reads: int = MAX_READS_PER_TICK,
    ) -> tuple[int, float]:
        """Issue reads until ``budget`` is spent; ``(reads, budget)``.

        Observationally identical to the scalar per-op chain: same key
        draws from ``rng``, same per-read budget subtraction, same
        latency values appended to ``result.read_latencies_s`` in the
        same order (just flushed ``batch_size`` at a time), and the same
        profiler hook per read when profiling is enabled.
        """
        price = self.pricer.price
        ops_scale = self.pricer.ops_scale
        latencies = result.read_latencies_s
        flush = latencies.extend
        batch_size = self.batch_size
        profiling = profiler.enabled
        pending: list[float] = []
        append = pending.append
        reads = 0
        if self.scan_mode:
            next_scan_range = self.workload.next_scan_range
            scan = self.engine.scan
            while budget > 0.0 and reads < max_reads:
                low, high = next_scan_range(rng)
                got = scan(low, high)
                cost = got.cost
                pairs = len(got.entries)
                priced = price(cost, pairs, utilization, True)
                if profiling:
                    profiler.record_read(cost, utilization, pairs, True)
                budget -= priced
                append(priced)
                reads += 1
                if len(pending) >= batch_size:
                    flush([p / ops_scale for p in pending])
                    pending.clear()
        else:
            next_read_key = self.workload.next_read_key
            get = self.engine.get
            # Point reads inline the pricer body with its constants as
            # locals: same expression order as ReadPricer.price with
            # ``pairs_returned=0, is_scan=False`` (the dropped zero terms
            # add +0.0, which is bitwise identity on the positive
            # partial sums), so priced values stay bit-identical to the
            # scalar path — the differential tests prove it.
            pricer = self.pricer
            cache_hit_s = pricer._cache_hit_s
            block_hit_s = pricer._block_hit_s
            os_hit_s = pricer._os_hit_s
            bloom_probe_s = pricer._bloom_probe_s
            random_read_s = pricer._random_read_s
            seek_s = pricer._seek_s
            fg_bandwidth = pricer._fg_bandwidth
            clamped = utilization
            if clamped < 0.0:
                clamped = 0.0
            elif clamped > _MAX_UTILIZATION:
                clamped = _MAX_UTILIZATION
            queueing = 1.0 / (1.0 - clamped)
            while budget > 0.0 and reads < max_reads:
                cost = get(next_read_key(rng)).cost
                seconds = (
                    cache_hit_s
                    + cost.cache_hit_blocks * block_hit_s
                    + cost.os_hit_blocks * os_hit_s
                )
                seconds += cost.bloom_probes * bloom_probe_s
                blocks = cost.disk_random_blocks
                seq_runs = cost.seq_runs
                seq_kb = cost.seq_kb
                if blocks or seq_runs or seq_kb:
                    if blocks:
                        seconds += blocks * random_read_s * queueing
                    if seq_runs or seq_kb:
                        seconds += (
                            seq_kb / fg_bandwidth + seq_runs * seek_s
                        ) * queueing
                priced = seconds * ops_scale
                if profiling:
                    profiler.record_read(cost, utilization, 0, False)
                budget -= priced
                append(priced)
                reads += 1
                if len(pending) >= batch_size:
                    flush([p / ops_scale for p in pending])
                    pending.clear()
        if pending:
            flush([p / ops_scale for p in pending])
        return reads, budget
