"""Declarative experiment specifications.

An :class:`ExperimentSpec` is the fully-declarative, picklable
description of one experiment run: which engine, which configuration
(a named :class:`~repro.config.SystemConfig` base plus field overrides),
how long, which seed, point reads or scans, and whether the profiling or
tracing layers are attached.  Because a spec carries only primitives it
can cross a process boundary — :mod:`repro.sim.sweep` fans lists of
specs out over a process pool — and serialize to JSON, so a sweep's
output records exactly what produced every number.

The executable counterpart lives in :mod:`repro.sim.experiment`:
``execute(spec)`` builds the engine stack and drives it;
``run_experiment``/``run_profiled`` are thin wrappers that construct a
spec first.
"""

from __future__ import annotations

import dataclasses
import zlib
from dataclasses import dataclass

from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.obs.prof import DEFAULT_SAMPLE_EVERY

#: Named configuration bases a spec can start from.  ``explicit`` means
#: the overrides tuple carries *every* ``SystemConfig`` field (used by
#: :meth:`ExperimentSpec.from_config` to wrap an arbitrary config).
CONFIG_BASES = ("paper", "paper_scaled", "ssd_scaled", "tiny", "explicit")

#: Bases for which ``scale`` is meaningful.
_SCALED_BASES = ("paper_scaled", "ssd_scaled")

_CONFIG_FIELDS = {field.name for field in dataclasses.fields(SystemConfig)}


def _format_value(value: object) -> str:
    """A compact, deterministic rendering of one override value."""
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


@dataclass(frozen=True)
class ExperimentSpec:
    """One run of one engine, described entirely by primitives.

    ``overrides`` is a sorted tuple of ``(field, value)`` pairs applied
    on top of the named configuration base; keeping it a tuple (not a
    dict) makes the spec hashable, so specs can key caches directly.
    """

    engine: str
    base: str = "paper_scaled"
    scale: int = 2048
    overrides: tuple[tuple[str, object], ...] = ()
    duration_s: int | None = None
    seed: int = 0
    scan_mode: bool = False
    do_preload: bool = True
    profile: bool = False
    sample_every: int = DEFAULT_SAMPLE_EVERY
    trace_path: str | None = None

    def __post_init__(self) -> None:
        if self.base not in CONFIG_BASES:
            raise ConfigError(
                f"unknown config base {self.base!r}; choose from {CONFIG_BASES}"
            )
        normalized = tuple(sorted(dict(self.overrides).items()))
        unknown = [key for key, _ in normalized if key not in _CONFIG_FIELDS]
        if unknown:
            raise ConfigError(f"unknown SystemConfig fields: {unknown}")
        object.__setattr__(self, "overrides", normalized)

    # ------------------------------------------------------------------
    # Construction helpers.
    # ------------------------------------------------------------------
    @classmethod
    def from_config(
        cls, engine: str, config: SystemConfig, **changes: object
    ) -> "ExperimentSpec":
        """Wrap an arbitrary already-built config as an explicit spec.

        Every field of ``config`` is captured in ``overrides``, so
        ``spec.config() == config`` exactly — this is how the imperative
        ``run_experiment(engine, config, ...)`` API funnels into the
        declarative path.
        """
        overrides = tuple(sorted(dataclasses.asdict(config).items()))
        return cls(
            engine=engine, base="explicit", scale=0, overrides=overrides,
            **changes,
        )

    def replace(self, **changes: object) -> "ExperimentSpec":
        """A copy with the given fields changed (and re-validated)."""
        return dataclasses.replace(self, **changes)

    def with_seed(self, seed: int) -> "ExperimentSpec":
        return self.replace(seed=seed)

    # ------------------------------------------------------------------
    # Materialization.
    # ------------------------------------------------------------------
    def config(self) -> SystemConfig:
        """Build the :class:`SystemConfig` this spec describes."""
        if self.base == "explicit":
            return SystemConfig(**dict(self.overrides))
        if self.base == "paper":
            config = SystemConfig.paper()
        elif self.base == "tiny":
            config = SystemConfig.tiny()
        elif self.base == "ssd_scaled":
            config = SystemConfig.ssd_scaled(self.scale)
        else:
            config = SystemConfig.paper_scaled(self.scale)
        if self.overrides:
            config = config.replace(**dict(self.overrides))
        return config

    # ------------------------------------------------------------------
    # Labels.
    # ------------------------------------------------------------------
    def cell_key(self) -> str:
        """The grid-cell identity: everything but the seed.

        Seed replicas of the same cell share this key, which is what the
        sweep aggregator groups by.  Explicit-base specs summarize their
        (whole-config) overrides as a CRC so the key stays short while
        distinct configs stay distinct.
        """
        parts = [self.engine]
        if self.base in _SCALED_BASES:
            if self.base != "paper_scaled":
                parts.append(self.base)
            parts.append(f"x{self.scale}")
            parts.extend(
                f"{key}={_format_value(value)}" for key, value in self.overrides
            )
        elif self.base == "explicit":
            digest = zlib.crc32(repr(self.overrides).encode())
            parts.append(f"cfg{digest:08x}")
        else:
            parts.append(self.base)
            parts.extend(
                f"{key}={_format_value(value)}" for key, value in self.overrides
            )
        if self.scan_mode:
            parts.append("scan")
        if self.duration_s is not None:
            parts.append(f"t{self.duration_s}")
        return "/".join(parts)

    def label(self) -> str:
        """The run identity: the cell key plus the seed."""
        return f"{self.cell_key()}/s{self.seed}"

    # ------------------------------------------------------------------
    # Serialization (JSON-friendly; the sweep transport format).
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        return {
            "engine": self.engine,
            "base": self.base,
            "scale": self.scale,
            "overrides": dict(self.overrides),
            "duration_s": self.duration_s,
            "seed": self.seed,
            "scan_mode": self.scan_mode,
            "do_preload": self.do_preload,
            "profile": self.profile,
            "sample_every": self.sample_every,
            "trace_path": self.trace_path,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ExperimentSpec":
        return cls(
            engine=payload["engine"],
            base=payload.get("base", "paper_scaled"),
            scale=payload.get("scale", 2048),
            overrides=tuple(payload.get("overrides", {}).items()),
            duration_s=payload.get("duration_s"),
            seed=payload.get("seed", 0),
            scan_mode=payload.get("scan_mode", False),
            do_preload=payload.get("do_preload", True),
            profile=payload.get("profile", False),
            sample_every=payload.get("sample_every", DEFAULT_SAMPLE_EVERY),
            trace_path=payload.get("trace_path"),
        )
