"""Plain-text reporting: the rows and series the paper's figures plot.

The benchmarks print their results through these helpers so that a run's
output can be compared side by side with the paper (EXPERIMENTS.md keeps
the paper-vs-measured record).
"""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Sequence

from repro.sim.metrics import TimeSeries

_BAR_GLYPHS = " ▁▂▃▄▅▆▇█"


def ascii_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a fixed-width table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def sparkline(series: TimeSeries, buckets: int = 60, lo: float | None = None,
              hi: float | None = None) -> str:
    """One-line unicode rendering of a time series (the figures' curves)."""
    points = series.bucketed(buckets)
    if not points:
        return "(empty)"
    values = [v for _, v in points]
    low = min(values) if lo is None else lo
    high = max(values) if hi is None else hi
    span = (high - low) or 1.0
    glyphs = []
    for value in values:
        scaled = (value - low) / span
        glyphs.append(_BAR_GLYPHS[min(8, max(0, int(scaled * 8.999)))])
    return "".join(glyphs)


def mark_line(series: TimeSeries, mark_times: Sequence[int],
              buckets: int = 60, glyph: str = "^") -> str:
    """A marker row aligned under :func:`sparkline`'s buckets.

    Each time in ``mark_times`` (e.g. a dip's sample time, a compaction's
    end) is mapped to the sparkline bucket containing it and marked with
    ``glyph``, so events can be read off directly beneath the curve they
    explain.
    """
    points = series.bucketed(buckets)
    if not points:
        return ""
    size = max(1, len(series) // buckets)
    cells = [" "] * len(points)
    for time in mark_times:
        index = bisect_right(series.times, time) - 1
        if index < 0:
            continue
        cells[min(len(cells) - 1, index // size)] = glyph
    return "".join(cells)


def series_block(title: str, series: TimeSeries, unit: str = "",
                 buckets: int = 60) -> str:
    """A titled sparkline with min/mean/max annotations."""
    if not len(series):
        return f"{title}: (no samples)"
    return (
        f"{title}\n"
        f"  {sparkline(series, buckets)}\n"
        f"  min={series.minimum():.3g}{unit}"
        f" mean={series.mean():.3g}{unit}"
        f" max={series.maximum():.3g}{unit}"
        f" over {len(series)} samples"
    )


def format_qps(value: float) -> str:
    return f"{value:,.0f}"


def format_ratio(value: float) -> str:
    return f"{value:.3f}"
