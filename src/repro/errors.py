"""Exception hierarchy for the repro library.

Every error raised intentionally by this package derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ConfigError(ReproError):
    """A :class:`~repro.config.SystemConfig` is internally inconsistent.

    Raised by :meth:`repro.config.SystemConfig.validate` when, for example,
    the block size does not divide the file size, or the cache is larger
    than the dataset it is supposed to cache a fraction of.
    """


class StorageError(ReproError):
    """The simulated disk was used incorrectly.

    Typical causes: reading a block from an extent that has been freed,
    freeing an extent twice, or allocating a non-positive extent.
    """


class TableError(ReproError):
    """An SSTable-level invariant was violated.

    Typical causes: adding out-of-order entries to a
    :class:`~repro.sstable.builder.TableBuilder`, or installing overlapping
    files into a sorted table that must stay fully sorted.
    """


class EngineError(ReproError):
    """An LSM engine was driven into an invalid state.

    Typical causes: operating on a closed engine, or a compaction-scheduler
    invariant (such as gear pacing) failing internally.
    """


class WorkloadError(ReproError):
    """A workload generator was configured with impossible parameters."""
