"""Key-value entries.

Keys are integers (YCSB-style numeric keys); a value is reconstructed
deterministically from ``(key, seq)`` so the simulation never materializes
payload bytes, while correctness tests can still verify that a read
returned the value written by the latest put.  ``seq`` is a global
sequence number assigned at write time; a larger ``seq`` is a newer
version.  Deletes are tombstone entries, dropped when they reach the last
level.
"""

from __future__ import annotations

import enum
from typing import NamedTuple


class Kind(enum.IntEnum):
    """What an entry means."""

    PUT = 0
    DELETE = 1


class Entry(NamedTuple):
    """One versioned key-value record."""

    key: int
    seq: int
    kind: Kind = Kind.PUT

    @property
    def is_tombstone(self) -> bool:
        return self.kind == Kind.DELETE

    def value(self) -> str | None:
        """The payload this entry carries (``None`` for a tombstone)."""
        if self.is_tombstone:
            return None
        return value_for(self.key, self.seq)


def value_for(key: int, seq: int) -> str:
    """The deterministic payload of version ``seq`` of ``key``."""
    return f"v{key}:{seq}"


def newest(a: Entry, b: Entry) -> Entry:
    """The more recent of two versions of the same key."""
    if a.key != b.key:
        raise ValueError(f"entries for different keys: {a.key} vs {b.key}")
    return a if a.seq >= b.seq else b
