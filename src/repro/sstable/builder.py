"""Building files from sorted entry streams.

Compactions and memtable flushes both end in the same step: stream sorted,
deduplicated entries out to new on-disk files.  :class:`TableBuilder` packs
entries into single-page blocks, blocks into files, files into super-files
(Section IV-C), allocates each file's contiguous extent and charges the
disk with the sequential write traffic.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.config import SystemConfig
from repro.obs.events import EventBus, FileCreated
from repro.sstable.block import Block
from repro.sstable.entry import Entry
from repro.sstable.sstable import FileIdSource, SSTableFile
from repro.sstable.superfile import (
    SuperFile,
    SuperFileIdSource,
    group_into_superfiles,
)
from repro.storage.disk import SimulatedDisk


class TableBuilder:
    """Turns sorted entry streams into files and super-files.

    Every built file is announced as a
    :class:`~repro.obs.events.FileCreated` event when a bus is attached —
    the opening half of the file-lifecycle ledger the conformance tests
    reconcile against the disk's final state.
    """

    def __init__(
        self,
        config: SystemConfig,
        disk: SimulatedDisk,
        file_ids: FileIdSource,
        superfile_ids: SuperFileIdSource,
        bus: EventBus | None = None,
    ) -> None:
        self._config = config
        self._disk = disk
        self._file_ids = file_ids
        self._superfile_ids = superfile_ids
        self._bus = bus

    def build(
        self,
        entries: Iterable[Entry],
        charge_write: bool = True,
        cause: str = "unattributed",
    ) -> list[SSTableFile]:
        """Build files from ``entries`` (strictly sorted, unique keys).

        ``charge_write`` controls whether the sequential write traffic is
        billed to the disk; the normal path always charges, tests may
        disable it to isolate other counters.  ``cause`` labels the
        charged writes for the per-cause bandwidth attribution ("flush",
        "compaction:L2", "preload"); engine call sites always tag it.
        """
        config = self._config
        bits_per_key = config.bloom_bits_per_key
        pairs_per_block = config.pairs_per_block
        block_size_kb = config.block_size_kb
        entries_per_file = pairs_per_block * config.blocks_per_file
        disk = self._disk
        next_id = self._file_ids.next_id
        bus = self._bus
        emit = bus is not None and bus.active
        entry_list = entries if isinstance(entries, list) else list(entries)
        files: list[SSTableFile] = []
        # Slice the sorted stream directly into per-file chunks and
        # per-block slices — the same grouping the old per-entry
        # accumulation produced, without a Python-level step per entry.
        for file_start in range(0, len(entry_list), entries_per_file):
            chunk = entry_list[file_start : file_start + entries_per_file]
            blocks = [
                # ``from_sorted`` skips per-entry validation: builder
                # inputs are strictly sorted by contract (see docstring).
                Block.from_sorted(
                    chunk[block_start : block_start + pairs_per_block],
                    bits_per_key,
                    block_start // pairs_per_block,
                )
                for block_start in range(0, len(chunk), pairs_per_block)
            ]
            size_kb = len(blocks) * block_size_kb
            extent = disk.allocate(size_kb)
            if charge_write:
                disk.background_write(size_kb, cause=cause)
            file = SSTableFile(next_id(), blocks, extent)
            files.append(file)
            if emit:
                if bus.counting_only:
                    bus.count(FileCreated)
                else:
                    bus.emit(
                        FileCreated(
                            file_id=file.file_id,
                            size_kb=file.size_kb,
                            extent_start=extent.start,
                        )
                    )
        return files

    def build_grouped(
        self,
        entries: Iterable[Entry],
        charge_write: bool = True,
        cause: str = "unattributed",
    ) -> tuple[list[SSTableFile], list[SuperFile]]:
        """Build files and pack them into super-files of ``r`` members."""
        files = self.build(entries, charge_write=charge_write, cause=cause)
        superfiles = group_into_superfiles(
            files, self._config.superfile_files, self._superfile_ids
        )
        return files, superfiles
