"""Multi-page blocks — the paper's "files".

"Multiple continuous single-page blocks are packed into one unit called
multi-page block.  All data in a multi-page block are sequentially stored
on a continuous disk region ... In practice, a multi-page block is
implemented as a regular file."  (Section II-A.)

An :class:`SSTableFile` is immutable once built.  It owns one contiguous
disk extent; deleting the file frees the extent and is what invalidates
its cached blocks.  Compaction-buffer semantics add one twist (Section
IV-A): a file *removed from the compaction buffer* keeps its identity and
its ``[min_key, max_key]`` range as a marker — queries that meet the marker
must fall back to the underlying LSM-tree (Algorithms 3 and 4) — but its
block data and index are gone.
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Iterator

from repro.errors import TableError
from repro.sstable.block import Block
from repro.sstable.entry import Entry
from repro.storage.extent import Extent


class FileIdSource:
    """Monotonic file-id generator; one per engine keeps runs deterministic."""

    def __init__(self) -> None:
        self._next = 0

    def next_id(self) -> int:
        value = self._next
        self._next += 1
        return value


class SSTableFile:
    """An immutable sorted file of blocks on one contiguous extent."""

    #: Global removal-marker epoch: bumped by every :meth:`mark_removed`.
    #: A file's ``size_kb`` contribution to any containing
    #: :class:`~repro.sstable.sorted_table.SortedTable` drops to zero the
    #: instant it is marked removed — without the table being told — so
    #: tables key their cached sizes on this epoch to notice externally
    #: removed members without re-summing on every read.
    removal_epoch: int = 0

    __slots__ = (
        "file_id",
        "min_key",
        "max_key",
        "size_kb",
        "num_entries",
        "extent",
        "superfile_id",
        "_blocks",
        "_block_max_keys",
        "removed",
    )

    def __init__(
        self,
        file_id: int,
        blocks: list[Block],
        extent: Extent,
        superfile_id: int | None = None,
    ) -> None:
        if not blocks:
            raise TableError("a file must contain at least one block")
        max_keys = []
        num_entries = 0
        previous_max = None
        for block in blocks:
            if previous_max is not None and previous_max >= block.min_key:
                raise TableError("file blocks must be sorted and disjoint")
            previous_max = block.max_key
            max_keys.append(previous_max)
            num_entries += len(block)
        self.file_id = file_id
        self._blocks = blocks
        self._block_max_keys = max_keys
        self.min_key = blocks[0].min_key
        self.max_key = previous_max
        self.num_entries = num_entries
        self.size_kb = extent.size_kb
        self.extent = extent
        #: Id of the super-file this file belongs to, if any (Section IV-C).
        self.superfile_id = superfile_id
        #: Compaction-buffer removal marker (Section IV-A): when ``True``
        #: only ``min_key``/``max_key`` remain meaningful.
        self.removed = False

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    @property
    def num_blocks(self) -> int:
        return len(self._blocks)

    @property
    def blocks(self) -> list[Block]:
        self._check_not_removed()
        return self._blocks

    def __repr__(self) -> str:
        flag = " removed" if self.removed else ""
        return (
            f"SSTableFile(id={self.file_id}, keys=[{self.min_key},"
            f" {self.max_key}], blocks={self.num_blocks}{flag})"
        )

    def covers(self, key: int) -> bool:
        return self.min_key <= key <= self.max_key

    def overlaps(self, low: int, high: int) -> bool:
        return self.min_key <= high and low <= self.max_key

    # ------------------------------------------------------------------
    # Removal marker (compaction-buffer semantics).
    # ------------------------------------------------------------------
    def mark_removed(self) -> None:
        """Drop block data and index, keeping only the key-range marker.

        "All its indices except the minimum and maximum keys will be
        removed from the memory, and all its data will be deleted from the
        disk."  The caller is responsible for freeing the extent and
        invalidating cached blocks.
        """
        self.removed = True
        self._blocks = []
        self._block_max_keys = []
        SSTableFile.removal_epoch += 1

    def _check_not_removed(self) -> None:
        if self.removed:
            raise TableError(f"file {self.file_id} was removed; data is gone")

    # ------------------------------------------------------------------
    # Lookups.
    # ------------------------------------------------------------------
    def find_block(self, key: int) -> Block | None:
        """The block whose range covers ``key``, if one exists."""
        if self.removed:
            self._check_not_removed()
        max_keys = self._block_max_keys
        position = bisect_left(max_keys, key)
        if position == len(max_keys):
            return None
        block = self._blocks[position]
        # bisect_left guarantees key <= block.max_key here.
        return block if block.min_key <= key else None

    def blocks_overlapping(self, low: int, high: int) -> list[Block]:
        """All blocks intersecting ``[low, high]`` in key order."""
        self._check_not_removed()
        if high < low:
            return []
        start = bisect_left(self._block_max_keys, low)
        result: list[Block] = []
        for block in self._blocks[start:]:
            if block.min_key > high:
                break
            result.append(block)
        return result

    def entries(self) -> Iterator[Entry]:
        """All entries of the file in key order."""
        self._check_not_removed()
        for block in self._blocks:
            yield from block

    def entry_list(self) -> list[Entry]:
        """All entries as a list (the compaction merge's bulk read)."""
        self._check_not_removed()
        blocks = self._blocks
        if len(blocks) == 1:
            return list(blocks[0].entries)
        result: list[Entry] = []
        for block in blocks:
            result.extend(block.entries)
        return result
