"""Merging iterators for compactions.

A compaction merge-sorts several sorted sources into one, keeping only the
newest version of each key (the version with the largest sequence number)
and optionally dropping tombstones when the output lands in the last level
— at that point no older version can exist below, so the tombstone has
done its job.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable, Iterator

from repro.sstable.entry import Entry


def merge_entries(
    sources: list[Iterable[Entry]],
    drop_tombstones: bool = False,
) -> Iterator[Entry]:
    """K-way merge of sorted entry sources with newest-wins deduplication.

    Each source must be strictly sorted by key with unique keys *within*
    the source; across sources the same key may appear with different
    sequence numbers.  Yields strictly sorted unique keys.
    """
    # Heap items: (key, -seq, tiebreak, entry, iterator).  Ordering by
    # (key, -seq) surfaces the newest version of each key first.
    heap: list[tuple[int, int, int, Entry, Iterator[Entry]]] = []
    for tiebreak, source in enumerate(sources):
        iterator = iter(source)
        first = next(iterator, None)
        if first is not None:
            heap.append((first.key, -first.seq, tiebreak, first, iterator))
    heapq.heapify(heap)

    previous_key: int | None = None
    while heap:
        key, _, tiebreak, entry, iterator = heapq.heappop(heap)
        following = next(iterator, None)
        if following is not None:
            heapq.heappush(
                heap,
                (following.key, -following.seq, tiebreak, following, iterator),
            )
        if key == previous_key:
            continue  # An older version of a key already emitted.
        previous_key = key
        if drop_tombstones and entry.is_tombstone:
            continue
        yield entry


def merge_with_obsolete_count(
    sources: list[list[Entry]],
    drop_tombstones: bool = False,
) -> tuple[list[Entry], int]:
    """Merge ``sources`` fully, returning (result, obsolete entry count).

    The obsolete count — how many input entries were shadowed by newer
    versions or dropped as expired tombstones — is what LSbM's freeze
    detector (Section IV-A) reacts to: when a merge into level ``i+1``
    drops data, the level received repeated keys and ``B(i+1)`` must be
    frozen.  ``sources`` must be materialized lists so they can be both
    counted and merged.
    """
    if len(sources) == 1:
        # One source: already strictly sorted with unique keys, so the
        # merge reduces to an optional tombstone filter.
        source = sources[0]
        if drop_tombstones:
            merged = [e for e in source if not e.is_tombstone]
        else:
            merged = list(source)
        return merged, len(source) - len(merged)

    total_inputs = sum(len(source) for source in sources)
    # With fully materialized sources a flat timsort on the heap's own
    # ordering tuples ``(key, -seq, tiebreak)`` beats the per-entry
    # Python heap loop, and yields the exact same sequence: ascending
    # key, newest version first within a key, source order on seq ties.
    # Full tuple ties cannot occur (keys are unique within a source and
    # ``tiebreak`` is unique across sources), so the trailing Entry is
    # never compared.
    decorated: list[tuple[int, int, int, Entry]] = []
    for tiebreak, source in enumerate(sources):
        for entry in source:
            decorated.append((entry.key, -entry.seq, tiebreak, entry))
    decorated.sort()
    merged = []
    previous_key: int | None = None
    for key, _, _, entry in decorated:
        if key == previous_key:
            continue  # An older version of a key already emitted.
        previous_key = key
        if drop_tombstones and entry.is_tombstone:
            continue
        merged.append(entry)
    return merged, total_inputs - len(merged)
