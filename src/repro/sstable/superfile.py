"""Super-files (Section IV-C).

The underlying LSM-tree wants large compaction units (fewer, bigger
sequential I/Os); the compaction buffer wants small trim units (precise
identification of frequently visited data).  The paper resolves the tension
with an extra index layer: "Each super-file mapping to a fixed number of
continuous files, and all these files stored in a continuous disk region.
A super-file is the basic operation unit for the underlying LSM-tree while
a file is the basic operation unit for the compaction buffer."

Here a :class:`SuperFile` is a lightweight grouping of consecutively built
:class:`~repro.sstable.sstable.SSTableFile` objects.  The builder tags each
file with its super-file id; engines that compact at super-file granularity
consume whole groups, while the compaction buffer appends and trims the
member files individually.
"""

from __future__ import annotations

from repro.errors import TableError
from repro.sstable.sstable import SSTableFile


class SuperFileIdSource:
    """Monotonic super-file-id generator."""

    def __init__(self) -> None:
        self._next = 0

    def next_id(self) -> int:
        value = self._next
        self._next += 1
        return value


class SuperFile:
    """A fixed group of contiguous files treated as one compaction unit."""

    __slots__ = ("superfile_id", "files")

    def __init__(self, superfile_id: int, files: list[SSTableFile]) -> None:
        if not files:
            raise TableError("a super-file must contain at least one file")
        for left, right in zip(files, files[1:]):
            if left.max_key >= right.min_key:
                raise TableError("super-file members must be sorted and disjoint")
        self.superfile_id = superfile_id
        self.files = files
        for member in files:
            member.superfile_id = superfile_id

    @property
    def min_key(self) -> int:
        return self.files[0].min_key

    @property
    def max_key(self) -> int:
        return self.files[-1].max_key

    @property
    def size_kb(self) -> int:
        return sum(member.size_kb for member in self.files)

    def __len__(self) -> int:
        return len(self.files)

    def __repr__(self) -> str:
        return (
            f"SuperFile(id={self.superfile_id}, files={len(self.files)},"
            f" keys=[{self.min_key}, {self.max_key}])"
        )


def group_into_superfiles(
    files: list[SSTableFile],
    files_per_superfile: int,
    ids: SuperFileIdSource,
) -> list[SuperFile]:
    """Pack consecutively built files into super-files of fixed arity.

    The trailing group may be smaller; it is still a valid compaction
    unit (the last super-file of a build is simply short).
    """
    if files_per_superfile < 1:
        raise TableError("files_per_superfile must be >= 1")
    groups: list[SuperFile] = []
    for start in range(0, len(files), files_per_superfile):
        members = files[start : start + files_per_superfile]
        groups.append(SuperFile(ids.next_id(), members))
    return groups
