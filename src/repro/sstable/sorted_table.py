"""Sorted tables (Section II-A).

"The data in each of those levels are organized as one or multiple sorted
structures ... called sorted tables.  Each sorted table is a B-tree-like
directory structure."  A sorted table here is an ordered collection of
non-overlapping files with binary-search access by key and by range.

The same class backs both the underlying LSM-tree's runs and the
compaction-buffer lists; the only compaction-buffer peculiarity is that
member files may carry the ``removed`` marker (data gone, key range kept),
which lookups surface to the caller instead of hiding — Algorithms 3/4
must *stop* when they meet a removed file.
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Iterable, Iterator

from repro.errors import TableError
from repro.sstable.entry import Entry
from repro.sstable.sstable import SSTableFile


class SortedTable:
    """An ordered, non-overlapping collection of files."""

    def __init__(self, files: Iterable[SSTableFile] = ()) -> None:
        self._files: list[SSTableFile] = []
        self._max_keys: list[int] = []
        for file in files:
            self.append(file)

    # ------------------------------------------------------------------
    # Mutation (compactions install/remove whole files).
    # ------------------------------------------------------------------
    def append(self, file: SSTableFile) -> None:
        """Add ``file`` at the high end (files arrive in key order)."""
        if self._files and file.min_key <= self._files[-1].max_key:
            raise TableError(
                f"file {file.file_id} overlaps the table tail "
                f"({file.min_key} <= {self._files[-1].max_key})"
            )
        self._files.append(file)
        self._max_keys.append(file.max_key)

    def remove(self, file: SSTableFile) -> None:
        """Detach ``file`` from the table (it keeps its own state)."""
        try:
            position = self._files.index(file)
        except ValueError:
            raise TableError(f"file {file.file_id} not in table") from None
        del self._files[position]
        del self._max_keys[position]

    def replace_range(
        self, old: list[SSTableFile], new: list[SSTableFile]
    ) -> None:
        """Atomically substitute a contiguous run of files.

        This is the install step of a compaction: the overlapping input
        files ``old`` leave the table and the freshly written ``new`` files
        take their place.
        """
        if not old:
            for file in new:
                self.insert_sorted(file)
            return
        start = self._files.index(old[0])
        if self._files[start : start + len(old)] != old:
            raise TableError("replace_range: old files are not contiguous")
        self._files[start : start + len(old)] = new
        self._max_keys[start : start + len(old)] = [f.max_key for f in new]
        self._check_sorted()

    def insert_sorted(self, file: SSTableFile) -> None:
        """Insert ``file`` at its key-order position."""
        position = bisect_left(self._max_keys, file.min_key)
        self._files.insert(position, file)
        self._max_keys.insert(position, file.max_key)
        self._check_sorted()

    def pop_first(self) -> SSTableFile:
        """Remove and return the file with the smallest keys."""
        if not self._files:
            raise TableError("pop from an empty sorted table")
        self._max_keys.pop(0)
        return self._files.pop(0)

    def _check_sorted(self) -> None:
        for left, right in zip(self._files, self._files[1:]):
            if left.max_key >= right.min_key:
                raise TableError(
                    f"files {left.file_id} and {right.file_id} overlap"
                )

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._files)

    def __bool__(self) -> bool:
        return bool(self._files)

    def __iter__(self) -> Iterator[SSTableFile]:
        return iter(self._files)

    @property
    def files(self) -> list[SSTableFile]:
        return list(self._files)

    @property
    def size_kb(self) -> int:
        """Live data size (removed markers contribute nothing)."""
        return sum(f.size_kb for f in self._files if not f.removed)

    @property
    def min_key(self) -> int | None:
        return self._files[0].min_key if self._files else None

    @property
    def max_key(self) -> int | None:
        return self._files[-1].max_key if self._files else None

    # ------------------------------------------------------------------
    # Lookups.
    # ------------------------------------------------------------------
    def find_file(self, key: int) -> SSTableFile | None:
        """The file whose range covers ``key`` (may carry ``removed``)."""
        position = bisect_left(self._max_keys, key)
        if position >= len(self._files):
            return None
        file = self._files[position]
        return file if file.covers(key) else None

    def files_overlapping(self, low: int, high: int) -> list[SSTableFile]:
        """All files intersecting ``[low, high]`` in key order."""
        if high < low:
            return []
        position = bisect_left(self._max_keys, low)
        result: list[SSTableFile] = []
        for file in self._files[position:]:
            if file.min_key > high:
                break
            result.append(file)
        return result

    def entries(self) -> Iterator[Entry]:
        """All live entries in key order (skips removed markers)."""
        for file in self._files:
            if not file.removed:
                yield from file.entries()
