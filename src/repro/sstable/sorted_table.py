"""Sorted tables (Section II-A).

"The data in each of those levels are organized as one or multiple sorted
structures ... called sorted tables.  Each sorted table is a B-tree-like
directory structure."  A sorted table here is an ordered collection of
non-overlapping files with binary-search access by key and by range.

The same class backs both the underlying LSM-tree's runs and the
compaction-buffer lists; the only compaction-buffer peculiarity is that
member files may carry the ``removed`` marker (data gone, key range kept),
which lookups surface to the caller instead of hiding — Algorithms 3/4
must *stop* when they meet a removed file.
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Iterable, Iterator

from repro.errors import TableError
from repro.sstable.entry import Entry
from repro.sstable.sstable import SSTableFile


class SortedTable:
    """An ordered, non-overlapping collection of files."""

    __slots__ = ("_files", "_max_keys", "_size_cache", "_size_epoch")

    def __init__(self, files: Iterable[SSTableFile] = ()) -> None:
        self._files: list[SSTableFile] = []
        self._max_keys: list[int] = []
        # ``size_kb`` is read on nearly every engine operation (gear
        # scheduling, pacing, sampling) but membership changes only at
        # compaction boundaries, so the sum is cached.  Two things
        # invalidate it: our own mutators (set the cache to None) and a
        # member being marked removed externally, which bumps the global
        # ``SSTableFile.removal_epoch`` the cache is keyed on.
        self._size_cache: int | None = None
        self._size_epoch: int = -1
        for file in files:
            self.append(file)

    # ------------------------------------------------------------------
    # Mutation (compactions install/remove whole files).
    # ------------------------------------------------------------------
    def append(self, file: SSTableFile) -> None:
        """Add ``file`` at the high end (files arrive in key order)."""
        if self._files and file.min_key <= self._files[-1].max_key:
            raise TableError(
                f"file {file.file_id} overlaps the table tail "
                f"({file.min_key} <= {self._files[-1].max_key})"
            )
        self._files.append(file)
        self._max_keys.append(file.max_key)
        self._size_cache = None

    def remove(self, file: SSTableFile) -> None:
        """Detach ``file`` from the table (it keeps its own state)."""
        try:
            position = self._files.index(file)
        except ValueError:
            raise TableError(f"file {file.file_id} not in table") from None
        del self._files[position]
        del self._max_keys[position]
        self._size_cache = None

    def replace_range(
        self, old: list[SSTableFile], new: list[SSTableFile]
    ) -> None:
        """Atomically substitute a contiguous run of files.

        This is the install step of a compaction: the overlapping input
        files ``old`` leave the table and the freshly written ``new`` files
        take their place.
        """
        if not old:
            for file in new:
                self.insert_sorted(file)
            return
        start = self._files.index(old[0])
        if self._files[start : start + len(old)] != old:
            raise TableError("replace_range: old files are not contiguous")
        self._files[start : start + len(old)] = new
        self._max_keys[start : start + len(old)] = [f.max_key for f in new]
        self._size_cache = None
        self._check_sorted_around(start - 1, start + len(new))

    def insert_sorted(self, file: SSTableFile) -> None:
        """Insert ``file`` at its key-order position."""
        position = bisect_left(self._max_keys, file.min_key)
        self._files.insert(position, file)
        self._max_keys.insert(position, file.max_key)
        self._size_cache = None
        self._check_sorted_around(position - 1, position + 1)

    def pop_first(self) -> SSTableFile:
        """Remove and return the file with the smallest keys."""
        if not self._files:
            raise TableError("pop from an empty sorted table")
        self._max_keys.pop(0)
        self._size_cache = None
        return self._files.pop(0)

    def _check_sorted(self) -> None:
        for left, right in zip(self._files, self._files[1:]):
            if left.max_key >= right.min_key:
                raise TableError(
                    f"files {left.file_id} and {right.file_id} overlap"
                )

    def _check_sorted_around(self, lo: int, hi: int) -> None:
        """Validate ordering across the just-edited slice ``[lo, hi]``.

        A local edit can only introduce overlaps between the new members
        and each other or their immediate neighbours, so checking the
        touched window (inclusive of one neighbour on each side) gives
        the same protection as the full :meth:`_check_sorted` walk
        without re-scanning hundreds of untouched files per compaction.
        """
        files = self._files
        lo = max(lo, 0)
        hi = min(hi, len(files) - 1)
        for position in range(lo, hi):
            left = files[position]
            right = files[position + 1]
            if left.max_key >= right.min_key:
                raise TableError(
                    f"files {left.file_id} and {right.file_id} overlap"
                )

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._files)

    def __bool__(self) -> bool:
        return bool(self._files)

    def __iter__(self) -> Iterator[SSTableFile]:
        return iter(self._files)

    @property
    def files(self) -> list[SSTableFile]:
        return list(self._files)

    @property
    def size_kb(self) -> int:
        """Live data size (removed markers contribute nothing)."""
        epoch = SSTableFile.removal_epoch
        if self._size_cache is None or self._size_epoch != epoch:
            self._size_cache = sum(
                f.size_kb for f in self._files if not f.removed
            )
            self._size_epoch = epoch
        return self._size_cache

    @property
    def min_key(self) -> int | None:
        return self._files[0].min_key if self._files else None

    @property
    def max_key(self) -> int | None:
        return self._files[-1].max_key if self._files else None

    # ------------------------------------------------------------------
    # Lookups.
    # ------------------------------------------------------------------
    def find_file(self, key: int) -> SSTableFile | None:
        """The file whose range covers ``key`` (may carry ``removed``)."""
        max_keys = self._max_keys
        position = bisect_left(max_keys, key)
        if position == len(max_keys):
            return None
        file = self._files[position]
        # bisect_left guarantees key <= file.max_key here, so covering
        # reduces to the lower bound.
        return file if file.min_key <= key else None

    def files_overlapping(self, low: int, high: int) -> list[SSTableFile]:
        """All files intersecting ``[low, high]`` in key order."""
        if high < low:
            return []
        position = bisect_left(self._max_keys, low)
        result: list[SSTableFile] = []
        for file in self._files[position:]:
            if file.min_key > high:
                break
            result.append(file)
        return result

    def entries(self) -> Iterator[Entry]:
        """All live entries in key order (skips removed markers)."""
        for file in self._files:
            if not file.removed:
                yield from file.entries()
