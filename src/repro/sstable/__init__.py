"""The SSTable stack: entries, blocks, files, super-files, sorted tables."""

from repro.sstable.block import Block
from repro.sstable.builder import TableBuilder
from repro.sstable.entry import Entry, Kind, newest, value_for
from repro.sstable.iterator import merge_entries, merge_with_obsolete_count
from repro.sstable.sorted_table import SortedTable
from repro.sstable.sstable import FileIdSource, SSTableFile
from repro.sstable.superfile import (
    SuperFile,
    SuperFileIdSource,
    group_into_superfiles,
)

__all__ = [
    "Block",
    "Entry",
    "FileIdSource",
    "Kind",
    "SSTableFile",
    "SortedTable",
    "SuperFile",
    "SuperFileIdSource",
    "TableBuilder",
    "group_into_superfiles",
    "merge_entries",
    "merge_with_obsolete_count",
    "newest",
    "value_for",
]
