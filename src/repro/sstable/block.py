"""Single-page blocks (Section II-A).

"Continuous Key-Value pairs are packed in a single-page block which maps to
one single disk page.  For each single-page block, a bloom filter is built
to check whether a key is contained in this block."

A block is immutable after construction.  Lookups use binary search over
the sorted key array; the Bloom filter is consulted by the engines *before*
touching the block so that false positives cost a (possibly disk) block
read, exactly as in the paper's cost discussion (Section III).
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Iterator, Sequence
from functools import lru_cache

from repro.bloom import BloomFilter
from repro.bloom.hashing import probe_mask
from repro.errors import TableError
from repro.sstable.entry import Entry


@lru_cache(maxsize=262144)
def _shared_filter(keys: tuple[int, ...], bits_per_key: int) -> BloomFilter:
    """The Bloom filter for one block's key set, shared across rebuilds.

    A filter is a pure function of ``(keys, bits_per_key)``, and
    compactions rewrite blocks with identical key sets constantly, so
    identical blocks share one immutable filter instance.  Nothing
    mutates a block's filter after construction.
    """
    return BloomFilter.build(list(keys), bits_per_key)


class Block:
    """An immutable sorted run of entries occupying one disk page.

    The Bloom filter is built lazily on the first probe: most blocks
    written by a compaction are rewritten by a later one before any
    point lookup ever probes them, and the filter's bits are a pure
    function of the key set, so deferring construction changes nothing
    observable.
    """

    __slots__ = (
        "_keys",
        "_entries",
        "_bloom",
        "_bits_per_key",
        "min_key",
        "max_key",
        "index",
    )

    def __init__(
        self,
        entries: Sequence[Entry],
        bits_per_key: int,
        index: int,
    ) -> None:
        if not entries:
            raise TableError("a block must contain at least one entry")
        keys = [entry.key for entry in entries]
        previous = keys[0]
        for key in keys[1:]:
            if previous >= key:
                raise TableError(
                    "block entries must be strictly sorted by key"
                )
            previous = key
        self._keys = keys
        self._entries = tuple(entries)
        self._bloom: BloomFilter | None = None
        self._bits_per_key = bits_per_key
        self.min_key = keys[0]
        self.max_key = previous
        #: Position of this block inside its file.
        self.index = index

    @classmethod
    def from_sorted(
        cls, entries: Sequence[Entry], bits_per_key: int, index: int
    ) -> "Block":
        """Construct from entries the caller *guarantees* strictly sorted.

        The table builder's inputs (a memtable's sorted snapshot, a
        compaction merge's output) are strictly sorted by construction,
        so the per-entry validation of ``__init__`` is skipped on that
        hot path.  Everything else about the block is identical.
        """
        if not entries:
            raise TableError("a block must contain at least one entry")
        block = object.__new__(cls)
        keys = [entry.key for entry in entries]
        block._keys = keys
        block._entries = tuple(entries)
        block._bloom = None
        block._bits_per_key = bits_per_key
        block.min_key = keys[0]
        block.max_key = keys[-1]
        block.index = index
        return block

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    @property
    def bloom(self) -> BloomFilter:
        bloom = self._bloom
        if bloom is None:
            bloom = self._bloom = _shared_filter(
                tuple(self._keys), self._bits_per_key
            )
        return bloom

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Entry]:
        return iter(self._entries)

    @property
    def entries(self) -> tuple[Entry, ...]:
        return self._entries

    # ------------------------------------------------------------------
    # Lookups.
    # ------------------------------------------------------------------
    def covers(self, key: int) -> bool:
        """Whether ``key`` falls inside this block's key range."""
        return self.min_key <= key <= self.max_key

    def may_contain(self, key: int) -> bool:
        """The Bloom-filter membership test (probabilistic)."""
        # Inlines BloomFilter.may_contain — this is the single hottest
        # probe on the point-read path, so the mask test happens here
        # without a second method dispatch.
        bloom = self._bloom
        if bloom is None:
            bloom = self._bloom = _shared_filter(
                tuple(self._keys), self._bits_per_key
            )
        mask = probe_mask(key, bloom._num_bits, bloom._num_hashes)
        return bloom._bits & mask == mask

    def get(self, key: int) -> Entry | None:
        """Exact lookup inside the block."""
        position = bisect_left(self._keys, key)
        if position < len(self._keys) and self._keys[position] == key:
            return self._entries[position]
        return None

    def entries_in_range(self, low: int, high: int) -> list[Entry]:
        """All entries with ``low <= key <= high`` (inclusive bounds)."""
        if high < low:
            return []
        start = bisect_left(self._keys, low)
        end = bisect_left(self._keys, high + 1)
        return list(self._entries[start:end])
