"""Single-page blocks (Section II-A).

"Continuous Key-Value pairs are packed in a single-page block which maps to
one single disk page.  For each single-page block, a bloom filter is built
to check whether a key is contained in this block."

A block is immutable after construction.  Lookups use binary search over
the sorted key array; the Bloom filter is consulted by the engines *before*
touching the block so that false positives cost a (possibly disk) block
read, exactly as in the paper's cost discussion (Section III).
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Iterator, Sequence

from repro.bloom import BloomFilter
from repro.errors import TableError
from repro.sstable.entry import Entry


class Block:
    """An immutable sorted run of entries occupying one disk page."""

    __slots__ = ("_keys", "_entries", "bloom", "index")

    def __init__(
        self,
        entries: Sequence[Entry],
        bits_per_key: int,
        index: int,
    ) -> None:
        if not entries:
            raise TableError("a block must contain at least one entry")
        keys = [entry.key for entry in entries]
        if any(keys[i] >= keys[i + 1] for i in range(len(keys) - 1)):
            raise TableError("block entries must be strictly sorted by key")
        self._keys = keys
        self._entries = tuple(entries)
        self.bloom = BloomFilter.build(keys, bits_per_key)
        #: Position of this block inside its file.
        self.index = index

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    @property
    def min_key(self) -> int:
        return self._keys[0]

    @property
    def max_key(self) -> int:
        return self._keys[-1]

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Entry]:
        return iter(self._entries)

    @property
    def entries(self) -> tuple[Entry, ...]:
        return self._entries

    # ------------------------------------------------------------------
    # Lookups.
    # ------------------------------------------------------------------
    def covers(self, key: int) -> bool:
        """Whether ``key`` falls inside this block's key range."""
        return self.min_key <= key <= self.max_key

    def may_contain(self, key: int) -> bool:
        """The Bloom-filter membership test (probabilistic)."""
        return self.bloom.may_contain(key)

    def get(self, key: int) -> Entry | None:
        """Exact lookup inside the block."""
        position = bisect_left(self._keys, key)
        if position < len(self._keys) and self._keys[position] == key:
            return self._entries[position]
        return None

    def entries_in_range(self, low: int, high: int) -> list[Entry]:
        """All entries with ``low <= key <= high`` (inclusive bounds)."""
        if high < low:
            return []
        start = bisect_left(self._keys, low)
        end = bisect_left(self._keys, high + 1)
        return list(self._entries[start:end])
