"""The paper's contribution: the LSbM-tree and its compaction buffer."""

from repro.core.compaction_buffer import BufferLevel
from repro.core.lsbm import LSbMStats, LSbMTree
from repro.core.trim import TrimProcess

__all__ = ["BufferLevel", "LSbMStats", "LSbMTree", "TrimProcess"]
