"""The trim process (Section IV-B, Algorithm 2).

The compaction buffer must keep *only* frequently visited data: files whose
blocks are not resident in the buffer cache merely add sorted tables for
queries to wade through and disk space to pay for.  Periodically (every
``trim_interval_s`` virtual seconds) an independent pass inspects every
trimmable file and removes those whose cached-block fraction falls below
the threshold (80% in the paper's setup).

Removal keeps the file's ``[min_key, max_key]`` marker inside its sorted
table: Algorithms 3 and 4 stop searching a buffer list the moment a marker
covers the requested key/range, falling back to the underlying LSM-tree —
that is what makes trimming safe for correctness.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.config import SystemConfig
from repro.core.compaction_buffer import BufferLevel
from repro.obs.events import EventBus, TrimRun
from repro.sstable.sstable import SSTableFile


class TrimProcess:
    """Periodic eviction of infrequently visited compaction-buffer files."""

    def __init__(
        self,
        config: SystemConfig,
        cached_blocks: Callable[[int], int],
        remove_file: Callable[[SSTableFile], None],
        bus: EventBus | None = None,
    ) -> None:
        """``cached_blocks`` maps a file id to its resident block count
        (the DB buffer cache's per-file counter); ``remove_file`` performs
        the engine-side removal (marker + extent free + invalidation)."""
        self._interval = config.trim_interval_s
        self._threshold = config.trim_threshold
        self._cached_blocks = cached_blocks
        self._remove_file = remove_file
        self._bus = bus
        self._last_run: int | None = None
        self.files_trimmed = 0
        self.runs = 0

    @property
    def threshold(self) -> float:
        """Live cached-fraction threshold below which a file is trimmed."""
        return self._threshold

    @property
    def interval_s(self) -> int:
        """Live virtual seconds between trim passes."""
        return self._interval

    def retune(
        self,
        threshold: float | None = None,
        interval_s: int | None = None,
    ) -> None:
        """Move the trim knobs mid-run (runtime-controller actuator).

        A higher threshold trims more aggressively (files must be hotter
        to stay buffered); a longer interval defers trim I/O-free passes
        but lets cold files linger.  Values are clamped to the same
        ranges :class:`~repro.config.SystemConfig` validates.
        """
        if threshold is not None:
            self._threshold = min(1.0, max(0.05, float(threshold)))
        if interval_s is not None:
            self._interval = max(1, int(interval_s))

    def due(self, now: int) -> bool:
        return self._last_run is None or now - self._last_run >= self._interval

    def maybe_run(self, now: int, buffer_levels: list[BufferLevel]) -> int:
        """Run the trim pass if the interval has elapsed; returns removals."""
        if not self.due(now):
            return 0
        self._last_run = now
        return self.run(buffer_levels)

    def run(self, buffer_levels: list[BufferLevel]) -> int:
        """One full trim pass over every level (Algorithm 2)."""
        self.runs += 1
        removed = 0
        for level in buffer_levels:
            for table in level.trimmable_tables():
                for file in list(table):
                    if file.removed:
                        continue
                    cached = self._cached_blocks(file.file_id)
                    if cached / file.num_blocks < self._threshold:
                        self._remove_file(file)
                        removed += 1
        self.files_trimmed += removed
        bus = self._bus
        if bus is not None and bus.active:
            if bus.counting_only:
                bus.count(TrimRun)
            else:
                bus.emit(TrimRun(removed=removed, run_index=self.runs))
        return removed
