"""Compaction-buffer data structures (Sections III and IV).

The compaction buffer is LSbM's second on-disk structure: per level it
keeps lists of sorted tables built purely by *re-referencing* files that
the underlying LSM-tree's compactions would otherwise delete.  Because the
files never move, the DB buffer cache blocks indexed through them survive
the compaction that rewrote the same logical data inside the tree.

Per level ``i`` (1 ≤ i ≤ k) a :class:`BufferLevel` holds three pieces,
mirroring the paper's notation:

* ``incoming`` — the table currently being appended, ``Bi^0``: it receives
  the files drained from ``C'(i-1)`` during the present merge round and is
  the key-range complement of ``C'(i-1)``.
* ``tables`` — the completed lists ``Bi^j`` (newest first), serving reads
  against ``Ci``.
* ``draining`` — ``B'i``: the former ``tables``, moved here when ``Ci``
  rotated into ``C'i``; its files are *gradually* removed in lockstep with
  ``C'i``'s drain (Algorithm 1 lines 18-20) so the buffer cache never
  loses the whole hot set at once.

``frozen`` implements the repeated-data rule of Section IV-A: once a merge
into level ``i`` is observed dropping obsolete entries, appends stop (and
the accumulated lists are discarded) until ``Ci`` itself is merged down.

The structures here are pure bookkeeping; the engine performs the actual
removal side effects (freeing extents, invalidating cached blocks).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sstable.sorted_table import SortedTable
from repro.sstable.sstable import SSTableFile


@dataclass
class BufferLevel:
    """The compaction-buffer state of one on-disk level."""

    level: int
    incoming: SortedTable = field(default_factory=SortedTable)
    tables: list[SortedTable] = field(default_factory=list)
    draining: list[SortedTable] = field(default_factory=list)
    draining_initial_kb: float = 0.0
    frozen: bool = False

    # ------------------------------------------------------------------
    # Sizes.
    # ------------------------------------------------------------------
    @property
    def live_kb(self) -> int:
        """Live buffer data serving ``Ci`` (incoming + completed tables)."""
        total = self.incoming.size_kb
        for table in self.tables:
            total += table.size_kb
        return total

    @property
    def draining_live_kb(self) -> int:
        """Live data in ``B'i`` (removed markers excluded)."""
        total = 0
        for table in self.draining:
            total += table.size_kb
        return total

    @property
    def total_live_kb(self) -> int:
        # Sampled every driver tick; a flat loop keeps it off the profile.
        total = self.incoming.size_kb
        for table in self.tables:
            total += table.size_kb
        for table in self.draining:
            total += table.size_kb
        return total

    # ------------------------------------------------------------------
    # Round transitions.
    # ------------------------------------------------------------------
    def finalize_incoming(self) -> None:
        """Close ``Bi^0``: it becomes the newest completed table."""
        if self.incoming:
            self.tables.insert(0, self.incoming)
        self.incoming = SortedTable()

    def start_drain(self) -> list[SortedTable]:
        """Move ``Bi`` into ``B'i`` at a level rotation.

        Returns any leftover previous ``B'i`` tables; the engine removes
        their remaining files outright (the previous round is over, so
        their reads have fully transferred to the next level).
        """
        leftovers = self.draining
        self.draining = self.tables
        self.tables = []
        self.draining_initial_kb = float(self.draining_live_kb)
        return leftovers

    def take_all_serving(self) -> list[SortedTable]:
        """Detach ``incoming`` + ``tables`` (freeze path); returns them."""
        detached = list(self.tables)
        if self.incoming:
            detached.insert(0, self.incoming)
        self.tables = []
        self.incoming = SortedTable()
        return detached

    # ------------------------------------------------------------------
    # Pace removal support.
    # ------------------------------------------------------------------
    def smallest_draining_file(self) -> SSTableFile | None:
        """The live ``B'i`` file with the smallest maximum key.

        Algorithm 1 removes files in key order so that ``B'i`` sheds the
        same key-space portion that ``C'i`` has already merged down.
        """
        best: SSTableFile | None = None
        for table in self.draining:
            for file in table:
                if file.removed:
                    continue
                if best is None or file.max_key < best.max_key:
                    best = file
                break  # Files are key-ordered; first live one is minimal.
        return best

    # ------------------------------------------------------------------
    # Trim support.
    # ------------------------------------------------------------------
    def trimmable_tables(self) -> list[SortedTable]:
        """Tables eligible for the trim process.

        Algorithm 2 skips ``Bi^0`` — the most recent data, still actively
        warming the buffer cache.  Here that means the ``incoming`` table
        and the newest completed table are exempt; older completed tables
        and every draining table are trimmed.
        """
        return self.tables[1:] + self.draining

    def live_files(self) -> list[SSTableFile]:
        """Every non-removed file currently referenced by this level."""
        files = [f for f in self.incoming if not f.removed]
        for table in self.tables:
            files.extend(f for f in table if not f.removed)
        for table in self.draining:
            files.extend(f for f in table if not f.removed)
        return files
