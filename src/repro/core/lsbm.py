"""The LSbM-tree: Log-Structured buffered-Merge tree (the paper's core).

LSbM keeps two on-disk structures (Section III):

* the **underlying LSM-tree** — a gear-scheduled bLSM holding the entire
  data set, fully sorted per level, serving range queries and cold reads;
* the **compaction buffer** — per-level lists of sorted tables built by
  *appending the input files of compactions instead of deleting them*
  (Algorithm 1's buffered merge).  Since those files already exist on
  disk, the buffer costs no additional I/O, and since they never move,
  the DB buffer cache blocks indexed through them survive compactions.

Queries consult the compaction buffer first for data likely resident in
the buffer cache (Algorithm 3 for point reads, Algorithm 4 for ranges) and
fall back to the underlying tree otherwise; a periodic trim process
(Algorithm 2) evicts buffer files that are not actually hot.

Engineering notes on the two under-specified corners of the paper, both
validated by the model-equivalence property tests:

* **Freeze detector.**  "If the size of Ci+1 is smaller than the data
  compacted into it, there must exist repeated data."  Uniform writes over
  a finite key space *always* collide occasionally, so the detector here
  fires on the cumulative obsolete *fraction* of a level's current merge
  round exceeding ``config.freeze_duplicate_fraction``.  Freezing discards
  the level's serving lists (their obsolete versions could otherwise
  shadow newer data once appends stop) and suspends appends until the
  level rotates.
* **Coverage flags.**  A range query may be answered entirely from a
  buffer list only if that list records *every* round merged into its run
  (otherwise recently merged keys would be missed).  A freeze breaks that
  completeness until the level next rotates; ``BufferLevel`` coverage
  flags track it, and scans fall back to the underlying run while
  coverage is broken.  Point reads never need the flag: Algorithm 3 falls
  back to ``Ci`` per key whenever the buffer misses.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass

from repro.bloom.hashing import probe_mask
from repro.core.compaction_buffer import BufferLevel
from repro.core.trim import TrimProcess
from repro.lsm.base import GetResult, MergeOutcome, ReadCost, ScanResult
from repro.lsm.blsm import BLSMTree
from repro.lsm.policy import GearPolicy
from repro.obs.events import BufferFrozen, BufferUnfrozen, FileDiscarded
from repro.sstable.block import _shared_filter
from repro.sstable.entry import Entry
from repro.sstable.iterator import merge_entries
from repro.sstable.sorted_table import SortedTable
from repro.sstable.sstable import SSTableFile
from repro.sstable.superfile import group_into_superfiles


@dataclass
class _RoundAccounting:
    """Per-level bytes merged in / dropped since the level's last rotation."""

    in_kb: float = 0.0
    obsolete_kb: float = 0.0

    def duplicate_fraction(self) -> float:
        if self.in_kb <= 0:
            return 0.0
        return self.obsolete_kb / self.in_kb


@dataclass
class LSbMStats:
    """LSbM-specific counters, on top of the base engine stats."""

    buffer_files_appended: int = 0
    buffer_files_removed: int = 0
    freeze_events: int = 0
    trim_runs: int = 0
    reads_served_by_buffer: int = 0
    reads_served_by_tree: int = 0


class LSbMTree(BLSMTree):
    """bLSM underlying tree + compaction buffer = LSbM (Sections III-V)."""

    name = "lsbm"

    def __init__(
        self,
        config=None,
        clock=None,
        disk=None,
        db_cache=None,
        os_cache=None,
        *,
        substrate=None,
    ) -> None:
        super().__init__(
            config, clock, disk, db_cache, os_cache, substrate=substrate
        )
        #: Same gear control flow as bLSM, but the hooks below adopt
        #: merge inputs into the compaction buffer: the data-movement
        #: axis flips to lazy adoption.
        self.policy = GearPolicy(movement="lazy-adoption")
        #: buffer[1..k]; index 0 unused (level 0 lives in DRAM + C0').
        self.buffer: list[BufferLevel] = [
            BufferLevel(level) for level in range(self.num_levels + 1)
        ]
        #: Whether a level's serving lists record every round merged into
        #: its C run since the last rotation (see module docstring).
        self._covers: list[bool] = [True] * (self.num_levels + 1)
        #: Same property for the draining lists vs the C' run.
        self._draining_covers: list[bool] = [True] * (self.num_levels + 1)
        self._rounds: list[_RoundAccounting] = [
            _RoundAccounting() for _ in range(self.num_levels + 1)
        ]
        self.lsbm_stats = LSbMStats()
        # Buffer appends and trim removals move no data — the paper's
        # "no additional I/O" claim.  Registering them as zero-I/O causes
        # makes per-cause bandwidth reports state that explicitly (0 KB)
        # instead of omitting the rows.
        self.disk.record_cause("buffer-append")
        self.disk.record_cause("trim")
        self.trim = TrimProcess(
            self.config,
            cached_blocks=self._cached_blocks_of,
            remove_file=self._remove_buffer_file,
            bus=self.bus,
        )
        #: ``buffer[1..k]`` in level order — the per-tick walks (sampling
        #: the buffer size, the trim pass) reuse this stable view instead
        #: of rebuilding a list every virtual second.  The BufferLevel
        #: objects are created once above and only ever mutated in place.
        self._buffer_levels = self.buffer[1:]
        # The sampled buffer size is cached between membership changes:
        # every path that adds or removes a buffer file bumps one of the
        # append/remove counters (removals also bump the global
        # ``SSTableFile.removal_epoch``), so the key below invalidates on
        # exactly the events that can change the total.
        self._buffer_kb_key: tuple[int, int, int] | None = None
        self._buffer_kb_total = 0

    # ------------------------------------------------------------------
    # Substrate helpers.
    # ------------------------------------------------------------------
    def _cached_blocks_of(self, file_id: int) -> int:
        if self.db_cache is None:
            return 0
        return self.db_cache.cached_blocks(file_id)

    def _remove_buffer_file(self, file: SSTableFile) -> None:
        """Remove a file from the compaction buffer (Section IV-A).

        The file's data leaves the disk and the cache; only its key-range
        marker survives inside its sorted table so queries know to fall
        back to the underlying tree.
        """
        if self.db_cache is not None:
            self.db_cache.invalidate_file(file.file_id)
        self.disk.free(file.extent)
        file.mark_removed()
        self.lsbm_stats.buffer_files_removed += 1
        bus = self.bus
        if bus.active:
            if bus.counting_only:
                bus.count(FileDiscarded)
            else:
                bus.emit(
                    FileDiscarded(
                        file_id=file.file_id,
                        size_kb=file.size_kb,
                        reason="buffer",
                    )
                )

    def _remove_table_files(self, table: SortedTable) -> None:
        for file in table:
            if not file.removed:
                self._remove_buffer_file(file)

    @property
    def compaction_buffer_kb(self) -> int:
        """Live on-disk size of the whole compaction buffer."""
        stats = self.lsbm_stats
        key = (
            SSTableFile.removal_epoch,
            stats.buffer_files_appended,
            stats.buffer_files_removed,
        )
        if key != self._buffer_kb_key:
            total = 0
            for buf in self._buffer_levels:
                total += buf.total_live_kb
            self._buffer_kb_total = total
            self._buffer_kb_key = key
        return self._buffer_kb_total

    # ------------------------------------------------------------------
    # Buffered merge (Algorithm 1): hook overrides of the gear scheduler.
    # ------------------------------------------------------------------
    def _rotate(self, level: int) -> None:
        if level >= 1:
            buf = self.buffer[level]
            # Close the in-flight Bi^0 so it travels with Bi into B'i.
            buf.finalize_incoming()
            for table in buf.start_drain():
                # Any leftover previous-round B' files: their reads have
                # fully transferred to the next level.
                self._remove_table_files(table)
            self._draining_covers[level] = self._covers[level]
            # "When Ci becomes full and is merged down to next level,
            # Bi is unfrozen" — and its coverage restarts with the empty
            # new Ci.
            if buf.frozen and self.bus.active:
                self.bus.emit(BufferUnfrozen(level=level))
            buf.frozen = False
            self._covers[level] = True
            self._rounds[level] = _RoundAccounting()
        super()._rotate(level)
        target = level + 1
        if target <= self.num_levels:
            # Line 11: create an empty sorted table in B(i+1) as B(i+1)^0.
            self.buffer[target].finalize_incoming()

    def _compact_unit(self, level: int, unit: list[SSTableFile]) -> MergeOutcome:
        target = level + 1
        buf = self.buffer[target]
        outcome = self._merge_into_run(
            unit,
            self.c[target],
            last_level=target == self.num_levels,
            dispose_sources=False,  # The buffered merge re-uses the inputs.
            level=level,
        )
        group_into_superfiles(
            outcome.new_files, self.config.superfile_files, self.superfile_ids
        )

        round_acct = self._rounds[target]
        round_acct.in_kb += sum(f.size_kb for f in unit)
        round_acct.obsolete_kb += (
            outcome.obsolete_entries * self.config.pair_size_kb
        )
        if (
            not buf.frozen
            and round_acct.duplicate_fraction()
            > self.config.freeze_duplicate_fraction
        ):
            self._freeze_level(target)

        if buf.frozen:
            for file in unit:
                self._discard_file(file)
        else:
            for file in unit:
                buf.incoming.append(file)
                self.lsbm_stats.buffer_files_appended += 1

        if level >= 1:
            self._pace_remove(level)
        return outcome

    def _freeze_level(self, level: int) -> None:
        """Stop buffering a level that is absorbing repeated data."""
        buf = self.buffer[level]
        buf.frozen = True
        self._covers[level] = False
        self.lsbm_stats.freeze_events += 1
        if self.bus.active:
            self.bus.emit(BufferFrozen(level=level))
        for table in buf.take_all_serving():
            self._remove_table_files(table)

    def _pace_remove(self, level: int) -> None:
        """Drain B' in lockstep with C' (Algorithm 1, lines 18-20).

        Keeps ``|B'i| / S̄i <= |C'i| / Si`` by removing the file with the
        smallest maximum key — the key range C' has already merged down —
        so the buffer cache transfers its hot set to the next level
        gradually instead of losing it at once.
        """
        buf = self.buffer[level]
        initial = buf.draining_initial_kb
        if initial <= 0:
            return
        capacity = self.config.level_capacity_kb(level)
        target_ratio = self.cp[level].size_kb / capacity
        while True:
            live = buf.draining_live_kb
            if live <= 0 or live / initial <= target_ratio:
                return
            file = buf.smallest_draining_file()
            if file is None:
                return
            self._remove_buffer_file(file)

    # ------------------------------------------------------------------
    # Housekeeping: the trim process runs on the virtual-second tick.
    # ------------------------------------------------------------------
    def tick(self, now: int) -> None:
        super().tick(now)
        removed = self.trim.maybe_run(now, self._buffer_levels)
        if removed or self.trim.due(now):
            self.lsbm_stats.trim_runs = self.trim.runs

    # ------------------------------------------------------------------
    # Random access (Algorithm 3, plus the C'/B0 combination rule).
    # ------------------------------------------------------------------
    def get(self, key: int) -> GetResult:
        if self._closed:
            self._check_open()
        self.stats.gets += 1
        cost = ReadCost()
        cost.memtable_probes += 1
        entry = self.memtable.get(key)
        if entry is not None:
            return self._make_entry_result(entry, cost)
        # Each component search is gated on emptiness first: a component
        # whose run (and complement) hold no files contributes exactly
        # one ``tables_checked`` and nothing else, so the call is skipped
        # with the same accounting — unpopulated C'/B0 components are
        # the common case over a run's lifetime.
        # Level 0's draining run, combined with B1^0 (its drained part).
        complement = self.buffer[1].incoming
        if self.c0_prime._max_keys or complement._max_keys:
            entry = self._search_component(
                self.c0_prime, key, cost,
                buffer_tables=[],
                complement=complement,
            )
            if entry is not None:
                return self._make_entry_result(entry, cost)
        else:
            cost.tables_checked += 1
        for level in range(1, self.num_levels + 1):
            buf = self.buffer[level]
            if self.c[level]._max_keys:
                entry = self._search_component(
                    self.c[level], key, cost, buffer_tables=buf.tables
                )
                if entry is not None:
                    return self._make_entry_result(entry, cost)
            else:
                cost.tables_checked += 1
            if level < self.num_levels:
                cp = self.cp[level]
                complement = self.buffer[level + 1].incoming
                if cp._max_keys or complement._max_keys:
                    entry = self._search_component(
                        cp, key, cost,
                        buffer_tables=buf.draining,
                        complement=complement,
                    )
                    if entry is not None:
                        return self._make_entry_result(entry, cost)
                else:
                    cost.tables_checked += 1
        return GetResult(False, None, cost)

    def _search_component(
        self,
        run: SortedTable,
        key: int,
        cost: ReadCost,
        buffer_tables: list[SortedTable],
        complement: SortedTable | None = None,
    ) -> Entry | None:
        """One level component: run's index/Bloom gate, buffer first.

        ``complement`` is the B0 table of the next level holding the files
        already drained out of ``run`` — together they cover the original
        sorted run (Section V's "treated as a whole").
        """
        # The index walk and Bloom gate are fused (same steps as
        # ``find_file``/``find_block``/``may_contain``, identical cost
        # accounting) — this runs several times per read.
        cost.tables_checked += 1
        max_keys = run._max_keys
        position = bisect_left(max_keys, key)
        if position == len(max_keys):
            file = None
        else:
            file = run._files[position]
            if file.min_key > key:
                file = None
        if file is None and complement is not None:
            max_keys = complement._max_keys
            position = bisect_left(max_keys, key)
            if position < len(max_keys):
                file = complement._files[position]
                if file.min_key > key:
                    file = None
        if file is None:
            return None
        if file.removed:
            file._check_not_removed()
        block_keys = file._block_max_keys
        position = bisect_left(block_keys, key)
        if position == len(block_keys):
            return None
        block = file._blocks[position]
        if block.min_key > key:
            return None
        cost.bloom_probes += 1
        bloom = block._bloom
        if bloom is None:
            bloom = block._bloom = _shared_filter(
                tuple(block._keys), block._bits_per_key
            )
        mask = probe_mask(key, bloom._num_bits, bloom._num_hashes)
        if bloom._bits & mask != mask:
            # The buffer lists hold subsets of this component, so a
            # negative here clears them too (Algorithm 3's level skip).
            return None
        entry = self._search_buffer_lists(buffer_tables, key, cost)
        if entry is not None:
            self.lsbm_stats.reads_served_by_buffer += 1
            return entry
        self._read_block(file, block, cost)
        entry = block.get(key)
        if entry is None:
            cost.false_positive_blocks += 1
        else:
            self.lsbm_stats.reads_served_by_tree += 1
        return entry

    def _search_buffer_lists(
        self, tables: list[SortedTable], key: int, cost: ReadCost
    ) -> Entry | None:
        """Check a compaction-buffer list newest-table-first.

        A removed-file marker covering the key stops the whole check
        (Algorithm 3 lines 15-16): the newest version might have been in
        the removed file, so only the underlying tree can answer safely.
        """
        for table in tables:
            cost.index_probes += 1
            max_keys = table._max_keys
            position = bisect_left(max_keys, key)
            if position == len(max_keys):
                continue
            file = table._files[position]
            if file.min_key > key:
                continue
            if file.removed:
                return None
            block_keys = file._block_max_keys
            position = bisect_left(block_keys, key)
            if position == len(block_keys):
                continue
            block = file._blocks[position]
            if block.min_key > key:
                continue
            cost.bloom_probes += 1
            bloom = block._bloom
            if bloom is None:
                bloom = block._bloom = _shared_filter(
                    tuple(block._keys), block._bits_per_key
                )
            mask = probe_mask(key, bloom._num_bits, bloom._num_hashes)
            if bloom._bits & mask != mask:
                continue
            self._read_block(file, block, cost)
            entry = block.get(key)
            if entry is not None:
                return entry
            cost.false_positive_blocks += 1
        return None

    # ------------------------------------------------------------------
    # Range queries (Algorithm 4, plus the combination rule).
    # ------------------------------------------------------------------
    def scan(self, low: int, high: int) -> ScanResult:
        self._check_open()
        self.stats.scans += 1
        cost = ReadCost()
        sources: list[list[Entry]] = [self.memtable.entries_in_range(low, high)]
        self._scan_component(
            sources, self.c0_prime, low, high, cost,
            buffer_tables=[], buffer_complete=False,
            complement=self.buffer[1].incoming,
        )
        for level in range(1, self.num_levels + 1):
            buf = self.buffer[level]
            self._scan_component(
                sources, self.c[level], low, high, cost,
                buffer_tables=buf.tables,
                buffer_complete=self._covers[level],
            )
            if level < self.num_levels:
                self._scan_component(
                    sources, self.cp[level], low, high, cost,
                    buffer_tables=buf.draining,
                    buffer_complete=self._draining_covers[level],
                    complement=self.buffer[level + 1].incoming,
                )
        entries = [e for e in merge_entries(sources) if not e.is_tombstone]  # type: ignore[arg-type]
        return ScanResult(entries, cost)

    def _scan_component(
        self,
        sources: list[list[Entry]],
        run: SortedTable,
        low: int,
        high: int,
        cost: ReadCost,
        buffer_tables: list[SortedTable],
        buffer_complete: bool,
        complement: SortedTable | None = None,
    ) -> None:
        """Collect one component's range data into ``sources``.

        Serves from the buffer list only when it is a complete record of
        the run (no freeze since rotation) and no removed-file marker
        overlaps the range; otherwise reads the underlying run (plus its
        drained complement).
        """
        run_files = run.files_overlapping(low, high)
        complement_files = (
            complement.files_overlapping(low, high)
            if complement is not None
            else []
        )
        if not run_files and not complement_files:
            return
        cost.tables_checked += 1
        buffer_groups: list[list[SSTableFile]] | None = None
        if buffer_complete and buffer_tables:
            collected: list[list[SSTableFile]] = []
            usable = True
            for table in buffer_tables:
                overlapping = table.files_overlapping(low, high)
                if any(f.removed for f in overlapping):
                    usable = False  # Algorithm 4 lines 11-13: clear F.
                    break
                if overlapping:
                    collected.append(overlapping)
            if usable and collected:
                buffer_groups = collected
        if buffer_groups is not None:
            # Served by the buffer lists: one disk run per Bij touched.
            for group in buffer_groups:
                sources.extend(self._scan_table_files(group, low, high, cost))
        else:
            # Served by the underlying run (plus its drained complement):
            # each is one contiguous sorted table.
            for group in (run_files, complement_files):
                if group:
                    sources.extend(
                        self._scan_table_files(group, low, high, cost)
                    )
