"""Bloom filters for single-page blocks (Section II-A)."""

from repro.bloom.bloom import BloomFilter
from repro.bloom.hashing import fnv1a_64, hash_pair, splitmix64

__all__ = ["BloomFilter", "fnv1a_64", "hash_pair", "splitmix64"]
