"""A real Bloom filter with genuine false positives.

Section II-A: every single-page block carries a Bloom filter so point
lookups can skip blocks that cannot contain the key; Section VI-A sets the
budget to 15 bits per element.  False positives matter to the reproduction
because the paper charges LSM variants with many sorted tables per level
(SM-tree, and LSbM's compaction-buffer lists) for "reading false blocks
caused by false bloom filter tests" (Section III) — so the filter must
actually produce them rather than being an oracle.
"""

from __future__ import annotations

import math

from repro.bloom.hashing import probe_mask


class BloomFilter:
    """Fixed-size Bloom filter over integer keys.

    Probes use *enhanced* double hashing (Dillinger & Manolios): plain
    ``h1 + i*h2`` degrades on small filters — whenever ``gcd(h2 % m, m)``
    is large the k probes cycle through a handful of bit positions (one
    bit in the worst case ``h2 % m == 0``), which measurably inflates
    the false-positive rate.  The accelerating increment ``y += i + 1``
    keeps the probe sequence out of short cycles.
    """

    __slots__ = ("_bits", "_num_bits", "_num_hashes", "_num_keys")

    def __init__(self, expected_keys: int, bits_per_key: int) -> None:
        if expected_keys < 0:
            raise ValueError(f"expected_keys must be >= 0, got {expected_keys}")
        if bits_per_key < 1:
            raise ValueError(f"bits_per_key must be >= 1, got {bits_per_key}")
        self._num_bits = max(8, expected_keys * bits_per_key)
        # k = ln(2) * bits/key minimizes the false-positive rate.
        self._num_hashes = max(1, min(30, round(math.log(2) * bits_per_key)))
        # The bit array is one Python int: insertion is a single ``|=``
        # with the key's memoized probe mask and a membership test is a
        # single ``&`` — block filters are ~60 bits, so the ints are
        # machine-word sized.
        self._bits = 0
        self._num_keys = 0

    @classmethod
    def build(cls, keys: list[int], bits_per_key: int) -> "BloomFilter":
        """Build a filter sized for and populated with ``keys``."""
        bloom = cls(len(keys), bits_per_key)
        num_bits, num_hashes = bloom._num_bits, bloom._num_hashes
        bits = 0
        for key in keys:
            bits |= probe_mask(key, num_bits, num_hashes)
        bloom._bits = bits
        bloom._num_keys = len(keys)
        return bloom

    def add(self, key: int) -> None:
        """Insert ``key`` into the filter."""
        self._bits |= probe_mask(key, self._num_bits, self._num_hashes)
        self._num_keys += 1

    def may_contain(self, key: int) -> bool:
        """Membership check: ``False`` is definite, ``True`` is probabilistic."""
        mask = probe_mask(key, self._num_bits, self._num_hashes)
        return self._bits & mask == mask

    @property
    def num_bits(self) -> int:
        return self._num_bits

    @property
    def num_hashes(self) -> int:
        return self._num_hashes

    @property
    def num_keys(self) -> int:
        return self._num_keys

    def fill_fraction(self) -> float:
        """Fraction of bits set.

        ``fill_fraction() ** num_hashes`` is the instance-exact expected
        FP rate for independent uniform probes — unlike
        :meth:`theoretical_fp_rate`, it reflects this filter's realized
        fill rather than the ensemble average, which matters for small
        filters.
        """
        return self._bits.bit_count() / self._num_bits

    def theoretical_fp_rate(self) -> float:
        """Expected false-positive rate for the current fill level."""
        if self._num_keys == 0:
            return 0.0
        exponent = -self._num_hashes * self._num_keys / self._num_bits
        return (1.0 - math.exp(exponent)) ** self._num_hashes
