"""Deterministic hashing for Bloom filters.

Python's built-in ``hash`` is randomized per process, which would make
simulation runs non-reproducible, so the filters use a 64-bit FNV-1a hash
followed by a splitmix64 finalizer.  Two independent 32-bit values are
extracted and combined with double hashing (Kirsch & Mitzenmacher) to
derive the k probe positions — the same construction LevelDB uses.
"""

from __future__ import annotations

from functools import lru_cache

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1


def fnv1a_64(data: bytes) -> int:
    """64-bit FNV-1a hash of ``data``."""
    value = _FNV_OFFSET
    for byte in data:
        value ^= byte
        value = (value * _FNV_PRIME) & _MASK64
    return value


def splitmix64(value: int) -> int:
    """The splitmix64 finalizer; a cheap, well-mixed 64-bit permutation."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def hash_pair(key: int) -> tuple[int, int]:
    """Two independent 32-bit hash values for an integer key."""
    mixed = splitmix64(fnv1a_64(key.to_bytes(8, "little", signed=True)))
    return mixed & 0xFFFFFFFF, (mixed >> 32) & 0xFFFFFFFF


@lru_cache(maxsize=262144)
def probe_positions(key: int, num_bits: int, num_hashes: int) -> tuple[int, ...]:
    """The enhanced-double-hashing probe sequence for ``key``.

    Exactly the bit positions a :class:`~repro.bloom.bloom.BloomFilter`
    of ``num_bits``/``num_hashes`` probes for ``key`` — a pure function
    of its arguments, so it is memoized: workload key spaces are small
    and the same hot keys are hashed millions of times per run.
    """
    h1, h2 = hash_pair(key)
    x, y = h1 % num_bits, h2 % num_bits
    positions = []
    for i in range(num_hashes):
        positions.append(x)
        x = (x + y) % num_bits
        y = (y + i + 1) % num_bits
    return tuple(positions)


@lru_cache(maxsize=262144)
def probe_mask(key: int, num_bits: int, num_hashes: int) -> int:
    """The probe sequence of :func:`probe_positions` as one bitmask.

    Filters that store their bits as an integer insert a key with a
    single ``|=`` and test membership with a single ``&`` against this
    mask — the per-position loop runs only on a cache miss.
    """
    mask = 0
    for position in probe_positions(key, num_bits, num_hashes):
        mask |= 1 << position
    return mask
