"""Deterministic hashing for Bloom filters.

Python's built-in ``hash`` is randomized per process, which would make
simulation runs non-reproducible, so the filters use a 64-bit FNV-1a hash
followed by a splitmix64 finalizer.  Two independent 32-bit values are
extracted and combined with double hashing (Kirsch & Mitzenmacher) to
derive the k probe positions — the same construction LevelDB uses.
"""

from __future__ import annotations

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1


def fnv1a_64(data: bytes) -> int:
    """64-bit FNV-1a hash of ``data``."""
    value = _FNV_OFFSET
    for byte in data:
        value ^= byte
        value = (value * _FNV_PRIME) & _MASK64
    return value


def splitmix64(value: int) -> int:
    """The splitmix64 finalizer; a cheap, well-mixed 64-bit permutation."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def hash_pair(key: int) -> tuple[int, int]:
    """Two independent 32-bit hash values for an integer key."""
    mixed = splitmix64(fnv1a_64(key.to_bytes(8, "little", signed=True)))
    return mixed & 0xFFFFFFFF, (mixed >> 32) & 0xFFFFFFFF
