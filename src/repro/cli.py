"""Command-line interface: run experiments and comparisons from a shell.

Usage (installed or via ``python -m repro.cli``):

    # one engine, paper workload, summary + sparklines
    python -m repro.cli run --engine lsbm --scale 2048 --duration 8000

    # several engines side by side (the Fig. 9 / Fig. 11 view)
    python -m repro.cli compare --engines blsm,leveldb,lsbm --duration 8000

    # seed replication: mean ± std over three seeds, two worker processes
    python -m repro.cli run --engine lsbm --seeds 0,1,2 --jobs 2

    # a parallel grid sweep (engines × seeds × config overrides)
    python -m repro.cli sweep --engines blsm,leveldb,lsbm --seeds 0,1 \\
        --set trim_interval_s=10,30 --jobs 4 --out sweep.json

    # range-query mode, CSV time series out
    python -m repro.cli run --engine lsbm --scan --csv out.csv

    # machine-readable summaries
    python -m repro.cli run --engine lsbm --json
    python -m repro.cli compare --engines blsm,lsbm --json

    # record every engine event as a JSONL trace
    python -m repro.cli trace --engine lsbm --out trace.jsonl

    # open-loop serving: latency vs offered load (the hockey stick)
    python -m repro.cli serve --engines leveldb,lsbm --rate 2000,8000 \\
        --policy fifo,read-priority --json

    # sharded cluster: engines x shard counts x partitioners, fanned
    python -m repro.cli cluster --engines leveldb,lsbm --shards 4 \\
        --partitioner range --rate 8000 --jobs 4 --json

    # end-to-end request tracing: tail exemplars + flight recorder
    python -m repro.cli serve --engines lsbm --rate 8000 \\
        --trace exemplar --trace-dir traces/

    # live per-shard telemetry (and an OpenMetrics snapshot)
    python -m repro.cli top --engine lsbm --shards 2 --plain \\
        --metrics-out metrics.prom

    # render an archived payload (bench, serve, or cluster JSON)
    python -m repro.cli report --from BENCH_cluster.json

    # replay an archived operation trace against an engine
    python -m repro.cli trace replay trace.txt --engine lsbm --json

    # causal profiling report: span traces, per-cause disk bandwidth,
    # event-annotated hit-ratio curve, dip diagnosis
    python -m repro.cli report --engine leveldb --duration 8000

    # differential correctness harness (JSON verdict, exit 0 iff green)
    python -m repro.cli check --seed 0 --ops 20000 --engines all

    # list available engines
    python -m repro.cli engines
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path

from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.sim.experiment import ENGINE_NAMES, run_experiment, run_profiled
from repro.sim.metrics import RunResult
from repro.sim.report import (
    ascii_table,
    format_qps,
    mark_line,
    series_block,
    sparkline,
)
from repro.sim.sweep import expand_grid, run_sweep


def _add_replication(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--seeds",
        help="comma-separated seeds; replicate each run and report "
        "mean ± std instead of a single-seed point",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for replicated runs (default 1)",
    )


def _add_tracing(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        default="off",
        choices=("off", "exemplar", "full"),
        help="end-to-end request tracing: tail-biased exemplars "
        "('exemplar') or every completed request ('full'); default off",
    )
    parser.add_argument(
        "--trace-dir",
        help="write exemplar span trees and flight-recorder dumps as "
        "JSONL files under this directory",
    )
    parser.add_argument(
        "--trace-slo",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="flight-recorder SLO-breach trigger: total request latency "
        "over this many seconds (default 1.0)",
    )
    parser.add_argument(
        "--trace-stall-spike",
        type=float,
        default=0.25,
        metavar="SECONDS",
        help="flight-recorder stall-spike trigger: one engine stall "
        "over this many seconds (default 0.25)",
    )
    parser.add_argument(
        "--trace-dip",
        type=float,
        default=0.7,
        metavar="RATIO",
        help="flight-recorder hit-ratio-dip trigger threshold, same "
        "family as repro diagnose (default 0.7)",
    )


def _add_control(parser: argparse.ArgumentParser) -> None:
    from repro.control import CONTROLLER_NAMES

    parser.add_argument(
        "--controller",
        default="off",
        choices=CONTROLLER_NAMES,
        help="runtime feedback controller: 'static' (inert anchor), "
        "'rules' (banded hysteresis) or 'gradient' (hill-climb); "
        "default off",
    )
    parser.add_argument(
        "--control-interval",
        type=int,
        default=30,
        metavar="SECONDS",
        help="virtual seconds between control ticks (default 30)",
    )


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        type=int,
        default=2048,
        help="linear size scale vs the paper's setup (default 2048)",
    )
    parser.add_argument(
        "--duration",
        type=int,
        default=8000,
        help="virtual seconds to run (paper: 20000)",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--scan",
        action="store_true",
        help="drive range queries instead of point reads",
    )


def _summary_row(name: str, result: RunResult) -> list[str]:
    return [
        name,
        f"{result.mean_hit_ratio():.3f}",
        format_qps(result.mean_throughput()),
        f"{result.mean_db_size_mb():,.0f}",
        f"{result.latency_percentile_s(50) * 1000:.2f}",
        f"{result.latency_percentile_s(99) * 1000:.2f}",
    ]


_HEADERS = ["engine", "hit", "QPS", "DB MB", "p50 ms", "p99 ms"]

#: Headers for seed-replicated summaries (``--seeds``).
_REPLICA_HEADERS = [
    "engine", "n", "hit mean±std", "QPS mean±std", "p99 ms mean"
]


def _parse_seeds(text: str) -> list[int]:
    seeds = [int(part) for part in text.split(",") if part.strip()]
    if not seeds:
        raise ValueError(f"no seeds in {text!r}")
    return seeds


def _replicate(names: list[str], args: argparse.Namespace):
    """Run every engine once per seed (via the sweep runner).

    Returns the sweep outcome plus one cell summary per engine, in the
    order of ``names``.
    """
    specs = expand_grid(
        names,
        seeds=_parse_seeds(args.seeds),
        scale=args.scale,
        duration_s=args.duration,
        scan_mode=args.scan,
    )
    outcome = run_sweep(specs, jobs=args.jobs)
    by_engine = {cell.engine: cell for cell in outcome.cells()}
    return outcome, [by_engine[name] for name in names]


def _replica_row(name: str, cell) -> list[str]:
    hit = cell.stats["hit_ratio"]
    qps = cell.stats["throughput_qps"]
    p99 = cell.stats["latency_p99_ms"]
    return [
        name,
        str(cell.replicas),
        f"{hit['mean']:.3f} ± {hit['std']:.3f}",
        f"{qps['mean']:,.0f} ± {qps['std']:,.0f}",
        f"{p99['mean']:.2f}",
    ]


def _replica_json(outcome, cell) -> dict:
    replicas = [
        dict(o.result.to_json_dict(), seed=o.spec.seed, wall_clock_s=o.wall_clock_s)
        for o in outcome.outcomes
        if o.spec.engine == cell.engine
    ]
    return dict(cell.to_json_dict(), replicas=replicas)


def cmd_engines(args: argparse.Namespace) -> int:
    from repro.sim.experiment import ENGINE_SPECS

    if getattr(args, "json", False):
        entries = [
            {
                "name": spec.name,
                "wiring": spec.wiring,
                "summary": spec.summary,
                "axes": spec.axes.to_dict() if spec.axes else None,
            }
            for spec in ENGINE_SPECS.values()
        ]
        print(json.dumps(entries, indent=2, sort_keys=True))
        return 0
    rows = [
        [
            spec.name,
            spec.axes.describe() if spec.axes else "from config",
            spec.wiring,
            spec.summary,
        ]
        for spec in ENGINE_SPECS.values()
    ]
    print(ascii_table(["engine", "design point", "wiring", "summary"], rows))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    mode = "range queries" if args.scan else "point reads"
    if args.seeds is not None:
        if args.csv:
            print("--csv is per-run; use it with --seed, not --seeds",
                  file=sys.stderr)
            return 2
        if args.profile:
            print("--profile is per-run; use it with --seed, not --seeds",
                  file=sys.stderr)
            return 2
        print(
            f"running {args.engine} at 1/{args.scale} scale for "
            f"{args.duration} virtual seconds ({mode}), "
            f"seeds {args.seeds}, jobs={args.jobs}",
            file=sys.stderr,
        )
        outcome, (cell,) = _replicate([args.engine], args)
        if args.json:
            print(json.dumps(_replica_json(outcome, cell), indent=2,
                             sort_keys=True))
        else:
            print(ascii_table(
                _REPLICA_HEADERS, [_replica_row(args.engine, cell)]
            ))
        return 0
    config = SystemConfig.paper_scaled(args.scale)
    print(
        f"running {args.engine} at 1/{args.scale} scale for "
        f"{args.duration} virtual seconds ({mode})",
        file=sys.stderr,
    )
    if args.profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        result = run_experiment(
            args.engine,
            config,
            duration_s=args.duration,
            seed=args.seed,
            scan_mode=args.scan,
        )
        profiler.disable()
        out = Path(
            args.profile_out
            or f"results/profile_{args.engine.replace('+', '_')}.pstats"
        )
        out.parent.mkdir(parents=True, exist_ok=True)
        profiler.dump_stats(out)
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative").print_stats(args.profile_top)
        print(
            f"[cProfile dump written to {out}; inspect with "
            f"`python -m pstats {out}` or snakeviz]",
            file=sys.stderr,
        )
    else:
        result = run_experiment(
            args.engine,
            config,
            duration_s=args.duration,
            seed=args.seed,
            scan_mode=args.scan,
        )
    if args.json:
        print(json.dumps(result.to_json_dict(), indent=2, sort_keys=True))
    else:
        print(ascii_table(_HEADERS, [_summary_row(args.engine, result)]))
        print()
        print(series_block("hit ratio", result.hit_ratio))
        print(series_block("throughput (QPS)", result.throughput_qps))
        print(series_block("DB size (MB)", result.db_size_mb))
    if args.csv:
        Path(args.csv).write_text("\n".join(result.to_csv_rows()) + "\n")
        print(f"\ntime series written to {args.csv}", file=sys.stderr)
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    names = [name.strip() for name in args.engines.split(",") if name.strip()]
    unknown = [name for name in names if name not in ENGINE_NAMES]
    if unknown:
        print(f"unknown engines: {unknown}; see `engines`", file=sys.stderr)
        return 2
    if args.seeds is not None:
        print(
            f"comparing {','.join(names)} over seeds {args.seeds}, "
            f"jobs={args.jobs} ...",
            file=sys.stderr,
        )
        outcome, cells = _replicate(names, args)
        if args.json:
            print(json.dumps(
                [_replica_json(outcome, cell) for cell in cells],
                indent=2, sort_keys=True,
            ))
        else:
            print(ascii_table(
                _REPLICA_HEADERS,
                [_replica_row(name, cell)
                 for name, cell in zip(names, cells)],
            ))
        return 0
    config = SystemConfig.paper_scaled(args.scale)
    rows = []
    summaries = []
    for name in names:
        print(f"running {name} ...", file=sys.stderr)
        result = run_experiment(
            name,
            config,
            duration_s=args.duration,
            seed=args.seed,
            scan_mode=args.scan,
        )
        rows.append(_summary_row(name, result))
        summaries.append(result.to_json_dict())
    if args.json:
        print(json.dumps(summaries, indent=2, sort_keys=True))
    else:
        print(ascii_table(_HEADERS, rows))
    return 0


#: Parsers for ``--set field=v1,v2`` values, keyed by the annotated type
#: of the SystemConfig field (annotations are strings under
#: ``from __future__ import annotations``).
_AXIS_PARSERS = {
    "int": int,
    "float": float,
    "bool": lambda text: text.lower() in ("1", "true", "yes", "on"),
    "str": str,
}

_CONFIG_FIELD_TYPES = {
    field.name: str(field.type) for field in dataclasses.fields(SystemConfig)
}


def _parse_axis(setting: str) -> tuple[str, list[object]]:
    """Parse one ``--set field=v1,v2`` grid axis, typed per the config."""
    key, separator, raw = setting.partition("=")
    key = key.strip()
    if not separator or not raw.strip():
        raise ConfigError(f"--set expects field=v1,v2..., got {setting!r}")
    field_type = _CONFIG_FIELD_TYPES.get(key)
    if field_type is None:
        raise ConfigError(
            f"unknown SystemConfig field {key!r} in --set {setting!r}"
        )
    parse = _AXIS_PARSERS.get(field_type, str)
    return key, [parse(part.strip()) for part in raw.split(",") if part.strip()]


def cmd_sweep(args: argparse.Namespace) -> int:
    """Declarative grid sweep over engines × seeds × config overrides."""
    names = [name.strip() for name in args.engines.split(",") if name.strip()]
    unknown = [name for name in names if name not in ENGINE_NAMES]
    if unknown:
        print(f"unknown engines: {unknown}; see `engines`", file=sys.stderr)
        return 2
    try:
        seeds = _parse_seeds(args.seeds)
        axes = dict(_parse_axis(setting) for setting in args.set or [])
        specs = expand_grid(
            names,
            seeds=seeds,
            scale=args.scale,
            duration_s=args.duration,
            scan_mode=args.scan,
            axes=axes,
        )
    except (ConfigError, ValueError) as error:
        print(f"sweep: {error}", file=sys.stderr)
        return 2
    print(
        f"sweep: {len(specs)} runs "
        f"({len(names)} engines × {len(seeds)} seeds"
        + "".join(f" × {len(vals)} {key}" for key, vals in axes.items())
        + f") with jobs={args.jobs}",
        file=sys.stderr,
    )
    outcome = run_sweep(specs, jobs=args.jobs)
    payload = outcome.to_payload(args.name)
    if args.out:
        path = outcome.write_payload(args.out, args.name)
        print(f"sweep payload written to {path}", file=sys.stderr)
    if args.out_dir:
        outcome.write_payload(
            Path(args.out_dir) / f"BENCH_{args.name}.json", args.name
        )
        paths = outcome.write_runs(args.out_dir)
        print(
            f"{len(paths)} full per-run results written to {args.out_dir}",
            file=sys.stderr,
        )
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    rows = [
        [
            cell.key,
            str(cell.replicas),
            f"{cell.stats['hit_ratio']['mean']:.3f} ± "
            f"{cell.stats['hit_ratio']['std']:.3f}",
            f"{cell.stats['throughput_qps']['mean']:,.0f} ± "
            f"{cell.stats['throughput_qps']['std']:,.0f}",
            f"{cell.stats['latency_p99_ms']['mean']:.2f}",
        ]
        for cell in outcome.cells()
    ]
    print(ascii_table(
        ["cell", "n", "hit mean±std", "QPS mean±std", "p99 ms"], rows
    ))
    print(
        f"\n{len(outcome.outcomes)} runs in {outcome.wall_clock_s:.1f}s "
        f"with jobs={outcome.jobs} "
        f"(serial estimate {outcome.serial_estimate_s:.1f}s, "
        f"speedup {outcome.speedup:.2f}x)"
    )
    return 0


def cmd_tune(args: argparse.Namespace) -> int:
    """Search the compaction design space for an SLO objective."""
    from repro.sim.tune import OBJECTIVES, run_tune

    names = [name.strip() for name in args.engines.split(",") if name.strip()]
    unknown = [name for name in names if name not in ENGINE_NAMES]
    if unknown:
        print(f"unknown engines: {unknown}; see `engines`", file=sys.stderr)
        return 2
    try:
        seeds = _parse_seeds(args.seeds)
        axes = dict(_parse_axis(setting) for setting in args.set or [])
    except (ConfigError, ValueError) as error:
        print(f"tune: {error}", file=sys.stderr)
        return 2
    cells = len(names)
    for values in axes.values():
        cells *= len(values)
    print(
        f"tune: objective={args.objective}, {cells} candidates × "
        f"{len(seeds)} seeds with jobs={args.jobs}",
        file=sys.stderr,
    )
    try:
        outcome = run_tune(
            names,
            seeds,
            args.objective,
            axes=axes,
            scale=args.scale,
            duration_s=args.duration,
            jobs=args.jobs,
            rate_qps=args.rate,
            policy=args.policy,
        )
    except ConfigError as error:
        print(f"tune: {error}", file=sys.stderr)
        return 2
    payload = outcome.to_payload(args.name)
    if args.out:
        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"tune payload written to {path}", file=sys.stderr)
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    direction, description = OBJECTIVES[args.objective]
    rows = [
        [
            str(rank + 1),
            candidate.key,
            f"{candidate.score:.4g}",
            f"{candidate.evidence['hit_floor']:.3f}",
            f"{candidate.evidence['hit_dips']:.1f}",
            f"{candidate.evidence['stall_seconds']:.1f}",
            f"{candidate.stats['latency_p99_ms']['mean']:.2f}",
        ]
        for rank, candidate in enumerate(outcome.candidates)
    ]
    print(f"objective: {args.objective} ({direction}) — {description}")
    print(ascii_table(
        ["rank", "candidate", "score", "hit floor", "dips",
         "stall s", "p99 ms"],
        rows,
    ))
    explanation = outcome.explanation()
    print(f"\nwinner: {outcome.winner.key}")
    print(explanation["summary"])
    deltas = explanation.get("deltas", {})
    if deltas:
        print(ascii_table(
            ["evidence", "winner", "runner-up", "advantage"],
            [
                [
                    name,
                    f"{entry['winner']:.4g}",
                    f"{entry['runner_up']:.4g}",
                    f"{entry['advantage']:+.4g}",
                ]
                for name, entry in deltas.items()
            ],
        ))
    sweep = outcome.sweep
    print(
        f"\n{len(sweep.outcomes)} runs in {sweep.wall_clock_s:.1f}s "
        f"with jobs={sweep.jobs} "
        f"(serial estimate {sweep.serial_estimate_s:.1f}s, "
        f"speedup {sweep.speedup:.2f}x)"
    )
    return 0


#: Headers for the worst-exemplar digest table (tracing runs).
_EXEMPLAR_HEADERS = [
    "trace id", "shard", "class", "op", "sampled", "total ms",
    "queue ms", "service ms", "top stage", "stage ms",
]


def _exemplar_rows(digests: list[dict]) -> list[list[str]]:
    """Table rows from ``exemplar_summary`` digests (``.get``-tolerant)."""
    return [
        [
            str(digest.get("trace_id", "?")),
            "-" if digest.get("shard") is None else str(digest["shard"]),
            str(digest.get("klass", "?")),
            str(digest.get("op", "?")),
            str(digest.get("sampled", "?")),
            f"{digest.get('total_ms', 0.0):.3f}",
            f"{digest.get('queue_ms', 0.0):.3f}",
            f"{digest.get('service_ms', 0.0):.3f}",
            str(digest.get("top_stage", "?")),
            f"{digest.get('top_stage_ms', 0.0):.3f}",
        ]
        for digest in digests
    ]


#: Headers for the serve latency-vs-offered-load table.
_SERVE_HEADERS = [
    "run", "class", "offered", "goodput", "p50 ms", "p99 ms", "p99.9 ms",
    "queue p99 ms", "shed", "deferred",
]


def _serve_rows(outcome) -> list[list[str]]:
    """One row per run × client class from a serve sweep outcome."""
    rows = []
    for spec_outcome in outcome.outcomes:
        result = spec_outcome.result
        for name, stats in sorted(result.class_stats.items()):
            rows.append(
                [
                    spec_outcome.spec.label(),
                    name,
                    format_qps(result.offered_read_qps)
                    if stats.op != "write"
                    else "-",
                    format_qps(
                        stats.completed * result.ops_scale / result.duration_s
                    ),
                    f"{stats.latency_s.percentile(50) * 1000:.2f}",
                    f"{stats.latency_s.percentile(99) * 1000:.2f}",
                    f"{stats.latency_s.percentile(99.9) * 1000:.2f}",
                    f"{stats.queue_delay_s.percentile(99) * 1000:.2f}",
                    str(stats.shed),
                    str(stats.deferred),
                ]
            )
    return rows


def cmd_serve(args: argparse.Namespace) -> int:
    """Open-loop serving grid: engines × offered rates × policies."""
    from repro.serve.scheduler import SCHEDULER_NAMES
    from repro.serve.spec import expand_serve_grid

    names = [name.strip() for name in args.engines.split(",") if name.strip()]
    unknown = [name for name in names if name not in ENGINE_NAMES]
    if unknown:
        print(f"unknown engines: {unknown}; see `engines`", file=sys.stderr)
        return 2
    policies = [p.strip() for p in args.policy.split(",") if p.strip()]
    bad = [p for p in policies if p not in SCHEDULER_NAMES]
    if bad:
        print(
            f"unknown policies: {bad}; choose from {SCHEDULER_NAMES}",
            file=sys.stderr,
        )
        return 2
    try:
        rates = [float(r) for r in args.rate.split(",") if r.strip()]
        seeds = _parse_seeds(args.seeds)
        specs = expand_serve_grid(
            names,
            rates,
            policies,
            seeds,
            arrival=args.arrival,
            scale=args.scale,
            duration_s=args.duration,
            queue_bound=args.queue_bound,
            trace=args.trace,
            trace_dir=args.trace_dir,
            trace_slo_s=args.trace_slo,
            trace_stall_spike_s=args.trace_stall_spike,
            trace_dip_threshold=args.trace_dip,
            controller=args.controller,
            control_interval_s=args.control_interval,
        )
    except (ConfigError, ValueError) as error:
        print(f"serve: {error}", file=sys.stderr)
        return 2
    print(
        f"serve: {len(specs)} runs ({len(names)} engines × {len(rates)} "
        f"rates × {len(policies)} policies × {len(seeds)} seeds), "
        f"{args.arrival} arrivals, queue bound {args.queue_bound}, "
        f"jobs={args.jobs}",
        file=sys.stderr,
    )
    outcome = run_sweep(specs, jobs=args.jobs)
    payload = outcome.to_payload(args.name)
    if args.out:
        path = outcome.write_payload(args.out, args.name)
        print(f"serve payload written to {path}", file=sys.stderr)
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(ascii_table(_SERVE_HEADERS, _serve_rows(outcome)))
    for spec_outcome in outcome.outcomes:
        result = spec_outcome.result
        if result.trace_mode == "off" or not result.exemplars:
            continue
        print(
            f"\nworst exemplars — {spec_outcome.spec.label()} "
            f"({len(result.exemplars)} kept, "
            f"{len(result.flight_dumps)} flight dumps)"
        )
        print(ascii_table(
            _EXEMPLAR_HEADERS, _exemplar_rows(result.worst_exemplars(5))
        ))
    print(
        f"\n{len(outcome.outcomes)} runs in {outcome.wall_clock_s:.1f}s "
        f"with jobs={outcome.jobs} "
        f"(serial estimate {outcome.serial_estimate_s:.1f}s, "
        f"speedup {outcome.speedup:.2f}x)"
    )
    return 0


#: Headers for the cluster summary table (one row per cluster cell).
_CLUSTER_HEADERS = [
    "cluster", "shards", "goodput", "p50 ms", "p99 ms", "imbalance",
    "hottest", "shed", "deferred",
]

#: Headers for the per-shard detail table.
_SHARD_HEADERS = [
    "cluster", "shard", "reads", "writes", "goodput", "p99 ms", "hit",
    "stall s", "shed",
]


def cmd_cluster(args: argparse.Namespace) -> int:
    """Sharded cluster grid: engines × shard counts × partitioners."""
    from repro.cluster import (
        PARTITIONERS,
        cluster_payload,
        expand_cluster_grid,
        run_cluster_grid,
    )
    from repro.serve.scheduler import SCHEDULER_NAMES

    names = [name.strip() for name in args.engines.split(",") if name.strip()]
    unknown = [name for name in names if name not in ENGINE_NAMES]
    if unknown:
        print(f"unknown engines: {unknown}; see `engines`", file=sys.stderr)
        return 2
    if args.policy not in SCHEDULER_NAMES:
        print(
            f"unknown policy {args.policy!r}; choose from {SCHEDULER_NAMES}",
            file=sys.stderr,
        )
        return 2
    partitioners = [p.strip() for p in args.partitioner.split(",") if p.strip()]
    bad = [p for p in partitioners if p not in PARTITIONERS]
    if bad:
        print(
            f"unknown partitioners: {bad}; choose from {PARTITIONERS}",
            file=sys.stderr,
        )
        return 2
    try:
        shard_counts = [int(s) for s in args.shards.split(",") if s.strip()]
        rates = [float(r) for r in args.rate.split(",") if r.strip()]
        seeds = _parse_seeds(args.seeds)
        common: dict[str, object] = {
            "scale": args.scale,
            "duration_s": args.duration,
            "policy": args.policy,
            "arrival": args.arrival,
            "queue_bound": args.queue_bound,
            "verify": args.verify,
            "trace": args.trace,
            "trace_dir": args.trace_dir,
            "trace_slo_s": args.trace_slo,
            "trace_stall_spike_s": args.trace_stall_spike,
            "trace_dip_threshold": args.trace_dip,
            "controller": args.controller,
            "control_interval_s": args.control_interval,
        }
        if args.write_rate is not None:
            common["write_rate_qps"] = args.write_rate
        if args.split_at is not None:
            common.update(
                split_at_s=args.split_at,
                split_source=args.split_source,
                split_target=args.split_target,
                split_fraction=args.split_fraction,
            )
        specs = expand_cluster_grid(
            names, shard_counts, partitioners, rates, seeds, **common
        )
    except (ConfigError, ValueError) as error:
        print(f"cluster: {error}", file=sys.stderr)
        return 2
    print(
        f"cluster: {len(specs)} cells ({len(names)} engines × "
        f"{len(shard_counts)} shard counts × {len(partitioners)} "
        f"partitioners × {len(rates)} rates × {len(seeds)} seeds), "
        f"jobs={args.jobs}",
        file=sys.stderr,
    )
    try:
        entries = run_cluster_grid(specs, jobs=args.jobs)
    except ConfigError as error:
        print(f"cluster: {error}", file=sys.stderr)
        return 2
    payload = cluster_payload(args.name, entries)
    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"cluster payload written to {out}", file=sys.stderr)
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    summary_rows = []
    shard_rows = []
    for spec, result, _wall in entries:
        summary_rows.append(
            [
                spec.label(),
                str(result.num_shards),
                format_qps(result.goodput_qps()),
                f"{result.read_percentile_ms(50):.2f}",
                f"{result.read_percentile_ms(99):.2f}",
                f"{result.read_imbalance():.2f}x",
                str(result.hottest_shard()),
                str(result.total_shed),
                str(result.total_deferred),
            ]
        )
        for index, summary in result.per_shard_summary().items():
            shard_rows.append(
                [
                    spec.label(),
                    index,
                    str(summary["reads_completed"]),
                    str(summary["writes_applied"]),
                    format_qps(summary["goodput_qps"]),
                    f"{summary['latency_p99_ms']:.2f}",
                    f"{summary['mean_hit_ratio']:.3f}",
                    f"{summary['stall_seconds']:.1f}",
                    str(summary["shed"]),
                ]
            )
        if result.migration is not None:
            m = result.migration
            print(
                f"{spec.label()}: migrated [{m.low}, {m.high}) "
                f"({m.entries} entries, {m.drained_requests} queued, "
                f"{m.moved_retries} retries) shard {m.source} -> "
                f"{m.target} at t={m.at_s}s",
                file=sys.stderr,
            )
        if result.verify is not None:
            print(
                f"{spec.label()}: oracle checked "
                f"{result.verify['reads_checked']} reads, "
                f"{result.verify['read_mismatches']} mismatches",
                file=sys.stderr,
            )
    print(ascii_table(_CLUSTER_HEADERS, summary_rows))
    print()
    print(ascii_table(_SHARD_HEADERS, shard_rows))
    for spec, result, _wall in entries:
        if all(shard.trace_mode == "off" for shard in result.shards):
            continue
        worst = result.worst_exemplars(5)
        if not worst:
            continue
        kept = sum(len(shard.exemplars) for shard in result.shards)
        dumps = sum(len(shard.flight_dumps) for shard in result.shards)
        print(
            f"\nworst exemplars — {spec.label()} "
            f"({kept} kept, {dumps} flight dumps)"
        )
        print(ascii_table(_EXEMPLAR_HEADERS, _exemplar_rows(worst)))
    total_wall = sum(wall for _, _, wall in entries)
    print(f"\n{len(entries)} cluster cells in {total_wall:.1f}s")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    if getattr(args, "trace_command", None) == "replay":
        return cmd_trace_replay(args)
    if args.engine is None:
        print("trace: --engine is required", file=sys.stderr)
        return 2
    config = SystemConfig.paper_scaled(args.scale)
    print(
        f"tracing {args.engine} at 1/{args.scale} scale for "
        f"{args.duration} virtual seconds -> {args.out}",
        file=sys.stderr,
    )
    result = run_experiment(
        args.engine,
        config,
        duration_s=args.duration,
        seed=args.seed,
        scan_mode=args.scan,
        trace_path=args.out,
    )
    for name in sorted(result.event_counts):
        print(f"{name}: {result.event_counts[name]}", file=sys.stderr)
    print(f"trace written to {args.out}", file=sys.stderr)
    return 0


def cmd_trace_replay(args: argparse.Namespace) -> int:
    """Replay an archived operation trace against one engine."""
    from repro.errors import WorkloadError
    from repro.sim.experiment import build_engine, preload
    from repro.workload.trace import load_trace, replay_trace

    try:
        ops = load_trace(args.file)
    except OSError as error:
        print(f"trace replay: {error}", file=sys.stderr)
        return 2
    except WorkloadError as error:
        print(f"trace replay: {error}", file=sys.stderr)
        return 2
    config = SystemConfig.paper_scaled(args.scale)
    setup = build_engine(args.engine, config)
    if args.preload:
        preload(setup)
    print(
        f"replaying {len(ops)} trace ops against {args.engine} "
        f"at 1/{args.scale} scale",
        file=sys.stderr,
    )
    result = replay_trace(setup.engine, setup.clock, ops)
    summary = dataclasses.asdict(result)
    summary["engine"] = args.engine
    summary["ops"] = len(ops)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    rows = [
        [field, str(getattr(result, field))]
        for field in (
            "puts", "gets", "deletes", "scans", "ticks",
            "found", "pairs_scanned",
        )
    ]
    print(ascii_table(["counter", "value"], rows))
    return 0


#: Span stages summarized by ``repro report`` (field -> printed label).
_SPAN_STAGES = (
    ("cpu_s", "cpu"),
    ("bloom_s", "bloom"),
    ("db_cache_s", "db cache"),
    ("os_cache_s", "os cache"),
    ("disk_random_s", "disk random"),
    ("disk_seq_s", "disk seq"),
)


def _span_summary(records: list[dict]) -> dict[str, object]:
    """Mean per-stage time over a trace's sampled ReadSpan records."""
    spans = [r for r in records if r.get("event") == "ReadSpan"]
    summary: dict[str, object] = {"count": len(spans)}
    if not spans:
        return summary
    for field, _label in _SPAN_STAGES + (("total_s", "total"),):
        summary[f"mean_{field}"] = sum(s[field] for s in spans) / len(spans)
    return summary


def _queueing_decomposition(records: list[dict]) -> dict[str, object]:
    """Queueing delay vs service time over a trace's sampled spans.

    Splits every ReadSpan with :func:`repro.obs.prof.span_queueing_split`
    and aggregates: mean/max of both components, the queueing share of
    total sampled time, and the count of spans that queued at all.
    Returns ``{"count": 0}`` when the trace holds no spans, so callers
    degrade gracefully.
    """
    from repro.obs.prof import span_queueing_split

    spans = [r for r in records if r.get("event") == "ReadSpan"]
    summary: dict[str, object] = {"count": len(spans)}
    if not spans:
        return summary
    splits = [span_queueing_split(span) for span in spans]
    total = sum(s["total_s"] for s in splits) or 1.0
    queueing = [s["queueing_s"] for s in splits]
    service = [s["service_s"] for s in splits]
    summary["mean_queueing_s"] = sum(queueing) / len(splits)
    summary["mean_service_s"] = sum(service) / len(splits)
    summary["max_queueing_s"] = max(queueing)
    summary["max_service_s"] = max(service)
    summary["queueing_share"] = sum(queueing) / total
    summary["spans_queued"] = sum(1 for q in queueing if q > 0)
    return summary


def _render_trace_section(trace: dict) -> None:
    """Print a payload's ``trace`` digest (mode, dumps, worst requests)."""
    triggers = trace.get("flight_triggers") or []
    print(
        f"trace: mode={trace.get('mode', '?')} "
        f"exemplars={trace.get('exemplars', 0)} "
        f"flight_dumps={trace.get('flight_dumps', 0)} "
        f"triggers={','.join(str(t) for t in triggers) or '-'}"
    )
    worst = trace.get("worst_exemplars")
    if isinstance(worst, list) and worst:
        print(ascii_table(_EXEMPLAR_HEADERS, _exemplar_rows(worst)))


def _render_cluster_entry(label: str, entry: dict) -> None:
    """Cluster bench entry as summary + per-shard tables (``.get``-based)."""
    print(ascii_table(
        ["cluster", "shards", "goodput", "p50 ms", "p99 ms",
         "imbalance", "shed", "deferred"],
        [[
            label,
            str(entry.get("num_shards", "?")),
            format_qps(float(entry.get("goodput_qps", 0.0))),
            f"{entry.get('latency_p50_ms', 0.0):.2f}",
            f"{entry.get('latency_p99_ms', 0.0):.2f}",
            f"{entry.get('read_imbalance', 1.0):.2f}x",
            str(entry.get("shed", 0)),
            str(entry.get("deferred", 0)),
        ]],
    ))
    per_shard = entry.get("per_shard")
    if isinstance(per_shard, dict) and per_shard:
        rows = []
        for index in sorted(
            per_shard, key=lambda s: int(s) if str(s).isdigit() else -1
        ):
            shard = per_shard[index]
            if not isinstance(shard, dict):
                continue
            rows.append([
                str(index),
                str(shard.get("reads_completed", 0)),
                str(shard.get("writes_applied", 0)),
                format_qps(float(shard.get("goodput_qps", 0.0))),
                f"{shard.get('latency_p99_ms', 0.0):.2f}",
                f"{shard.get('mean_hit_ratio', 0.0):.3f}",
                f"{shard.get('stall_seconds', 0.0):.1f}",
                str(shard.get("shed", 0)),
            ])
        print(ascii_table(
            ["shard", "reads", "writes", "goodput", "p99 ms", "hit",
             "stall s", "shed"],
            rows,
        ))
    migration = entry.get("migration")
    if isinstance(migration, dict):
        print(
            f"migration: [{migration.get('low')}, {migration.get('high')}) "
            f"shard {migration.get('source')} -> {migration.get('target')} "
            f"at t={migration.get('at_s')}s "
            f"({migration.get('entries')} entries)"
        )
    verify = entry.get("verify")
    if isinstance(verify, dict):
        print(
            f"oracle: {verify.get('reads_checked', 0)} reads checked, "
            f"{verify.get('read_mismatches', 0)} mismatches"
        )


def _render_generic_entry(label: str, entry: dict) -> None:
    """Any run/serve bench entry as a one-row summary (``.get``-based)."""
    print(ascii_table(
        ["run", "kind", "reads", "writes", "hit", "p50 ms", "p99 ms"],
        [[
            label,
            str(entry.get("kind", "run")),
            str(entry.get("reads_completed", 0)),
            str(entry.get("writes_applied", 0)),
            f"{entry.get('mean_hit_ratio', 0.0):.3f}",
            f"{entry.get('latency_p50_ms', 0.0):.2f}",
            f"{entry.get('latency_p99_ms', 0.0):.2f}",
        ]],
    ))


def _render_run_entry(label: str, entry: dict) -> None:
    if entry.get("kind") == "cluster":
        _render_cluster_entry(label, entry)
    else:
        _render_generic_entry(label, entry)
    trace = entry.get("trace")
    if isinstance(trace, dict):
        _render_trace_section(trace)


def _report_digest(payload: dict) -> dict:
    """Compact machine-readable digest of a loaded payload (``--json``)."""
    runs = payload.get("runs")
    if isinstance(runs, dict):
        return {
            "name": payload.get("name"),
            "runs": {
                label: {
                    "kind": entry.get("kind", "run"),
                    "reads_completed": entry.get("reads_completed"),
                    "latency_p99_ms": entry.get("latency_p99_ms"),
                    "trace": entry.get("trace"),
                }
                for label, entry in runs.items()
                if isinstance(entry, dict)
            },
        }
    shards = payload.get("shards")
    return {
        "kind": payload.get("kind", "run"),
        "reads_completed": payload.get("reads_completed"),
        "num_shards": len(shards) if isinstance(shards, list) else None,
    }


def _report_from_file(args: argparse.Namespace) -> int:
    """``repro report --from FILE``: render an archived payload.

    Accepts any of the repo's JSON artifact shapes and degrades
    gracefully: a bench payload (``"runs"`` dict, each entry rendered
    by its ``kind`` — cluster entries get per-shard tables), a lossless
    ``"kind": "cluster"`` ClusterResult dict, or a lossless
    ``"kind": "serve"`` ServeResult dict.
    """
    from repro.cluster.result import ClusterResult
    from repro.serve.result import ServeResult

    try:
        payload = json.loads(Path(args.from_file).read_text())
    except (OSError, ValueError) as error:
        print(f"report: cannot load {args.from_file}: {error}",
              file=sys.stderr)
        return 2
    if not isinstance(payload, dict):
        print(f"report: {args.from_file} is not a JSON object",
              file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(_report_digest(payload), indent=2, sort_keys=True))
        return 0
    runs = payload.get("runs")
    if isinstance(runs, dict):
        print(
            f"payload {payload.get('name', '?')!r}: {len(runs)} runs "
            f"(schema v{payload.get('schema_version', '?')})"
        )
        for label in sorted(runs):
            entry = runs[label]
            if not isinstance(entry, dict):
                continue
            print()
            _render_run_entry(label, entry)
        return 0
    kind = payload.get("kind")
    if kind == "cluster" and "spec" in payload and "shards" in payload:
        result = ClusterResult.from_dict(payload)
        _render_run_entry(result.spec.label(), result.to_json_dict())
        return 0
    if kind == "serve":
        result = ServeResult.from_dict(payload)
        entry = result.to_json_dict()
        label = (
            f"{entry.get('policy', '?')}@"
            f"{float(entry.get('offered_read_qps', 0.0)):g}qps"
        )
        _render_run_entry(label, entry)
        return 0
    if "reads_completed" in payload:
        _render_run_entry(args.from_file, payload)
        return 0
    # Unrecognized kinds (a newer schema, a foreign tool's dump — e.g.
    # a ``"kind": "control"`` decision log) still render their digest
    # and any bench metadata instead of erroring, so re-rendering never
    # breaks on payloads this build doesn't know how to pretty-print.
    print(
        f"payload {payload.get('name', args.from_file)!r}: "
        f"unrecognized kind {kind!r}; showing digest"
    )
    for key in ("name", "schema_version", "generated_by", "bench"):
        if key in payload:
            print(f"  {key}: {payload[key]}")
    digest = _report_digest(payload)
    for key, value in sorted(digest.items()):
        if value is not None:
            print(f"  {key}: {value}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Profiled run: spans + per-cause bandwidth + dip diagnosis."""
    from repro.obs.diagnose import diagnose_dips, format_dip_report

    if args.from_file:
        return _report_from_file(args)
    if args.engine is None:
        print("report: --engine or --from FILE is required", file=sys.stderr)
        return 2
    config = SystemConfig.paper_scaled(args.scale)
    print(
        f"profiling {args.engine} at 1/{args.scale} scale for "
        f"{args.duration} virtual seconds "
        f"(one span per {args.sample_every} reads)",
        file=sys.stderr,
    )
    result, recorder = run_profiled(
        args.engine,
        config,
        duration_s=args.duration,
        seed=args.seed,
        scan_mode=args.scan,
        sample_every=args.sample_every,
        trace_path=args.trace_out,
    )
    diagnosis = diagnose_dips(
        result.hit_ratio, recorder.records, threshold=args.dip_threshold
    )
    spans = _span_summary(recorder.records)
    queueing = _queueing_decomposition(recorder.records)

    if args.json:
        payload = result.to_json_dict()
        payload["dip_diagnosis"] = diagnosis.to_json_dict()
        payload["span_summary"] = spans
        payload["queueing_decomposition"] = queueing
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0

    print(ascii_table(_HEADERS, [_summary_row(args.engine, result)]))
    print()
    print(f"hit ratio (^ marks a dip below {args.dip_threshold:g})")
    print("  " + sparkline(result.hit_ratio))
    marks = [d.dip.time for d in diagnosis.diagnoses]
    if marks:
        print("  " + mark_line(result.hit_ratio, marks))
    print(format_dip_report(diagnosis))
    print()
    print("disk bandwidth by cause")
    totals = result.bandwidth_kb_by_cause
    grand = sum(t["read_kb"] + t["write_kb"] for t in totals.values()) or 1.0
    rows = [
        [
            cause,
            f"{t['read_kb']:,.0f}",
            f"{t['write_kb']:,.0f}",
            f"{(t['read_kb'] + t['write_kb']) / grand:.1%}",
        ]
        for cause, t in sorted(
            totals.items(),
            key=lambda item: -(item[1]["read_kb"] + item[1]["write_kb"]),
        )
    ]
    print(ascii_table(["cause", "read KB", "write KB", "share"], rows))
    print()
    if spans["count"]:
        print(f"read-path spans ({spans['count']} sampled)")
        stage_rows = [
            [label, f"{spans[f'mean_{field}'] * 1000:.3f}"]
            for field, label in _SPAN_STAGES
        ]
        stage_rows.append(["total", f"{spans['mean_total_s'] * 1000:.3f}"])
        print(ascii_table(["stage", "mean ms"], stage_rows))
        print()
        print(
            f"queueing delay vs service time "
            f"({queueing['spans_queued']}/{queueing['count']} spans queued "
            f"behind compaction I/O)"
        )
        print(ascii_table(
            ["component", "mean ms", "max ms"],
            [
                [
                    "queueing delay",
                    f"{queueing['mean_queueing_s'] * 1000:.3f}",
                    f"{queueing['max_queueing_s'] * 1000:.3f}",
                ],
                [
                    "service time",
                    f"{queueing['mean_service_s'] * 1000:.3f}",
                    f"{queueing['max_service_s'] * 1000:.3f}",
                ],
            ],
        ))
        print(f"  queueing share of sampled read time: "
              f"{queueing['queueing_share']:.1%}")
    else:
        print("read-path spans: none sampled (raise duration or lower "
              "--sample-every); queueing decomposition unavailable")
    if args.trace_out:
        print(f"\ntrace written to {args.trace_out}", file=sys.stderr)
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    """Live per-shard telemetry over one coordinated cluster run."""
    from repro.cluster import ClusterSpec, run_coordinated
    from repro.obs.expo import render_openmetrics_many

    try:
        spec = ClusterSpec(
            engine=args.engine,
            num_shards=args.shards,
            partitioner=args.partitioner,
            read_rate_qps=args.rate,
            seed=args.seed,
            scale=args.scale,
            duration_s=args.duration,
            policy=args.policy,
            arrival=args.arrival,
            queue_bound=args.queue_bound,
            trace=args.trace,
            trace_dir=args.trace_dir,
            trace_slo_s=args.trace_slo,
            trace_stall_spike_s=args.trace_stall_spike,
            trace_dip_threshold=args.trace_dip,
            controller=args.controller,
            control_interval_s=args.control_interval,
        )
    except ConfigError as error:
        print(f"top: {error}", file=sys.stderr)
        return 2
    interval = max(1, args.refresh)
    live = sys.stdout.isatty() and not args.plain
    headers = ["shard", "reads", "writes", "p99 ms", "hit", "stall s"]
    if spec.controller != "off":
        headers = headers + ["ctl"]

    def on_tick(tick: int, sessions) -> None:
        now = tick + 1
        if now % interval:
            return
        rows = []
        for shard, session in enumerate(sessions):
            result = session.simulator.current_result
            if result is None:
                continue
            hit = (
                result.hit_ratio.values[-1]
                if result.hit_ratio.values
                else 0.0
            )
            row = [
                str(shard),
                str(result.reads_completed),
                str(result.writes_applied),
                f"{result.latency_percentile_s(99) * 1000:.2f}",
                f"{hit:.3f}",
                f"{result.stall_seconds:.1f}",
            ]
            if spec.controller != "off":
                row.append(str(len(result.control_decisions)))
            rows.append(row)
        if live:
            sys.stdout.write("\x1b[H\x1b[2J")
        print(f"repro top — {spec.label()} — t={now}s")
        print(ascii_table(headers, rows))
        sys.stdout.flush()

    try:
        result = run_coordinated(spec, on_tick=on_tick)
    except ConfigError as error:
        print(f"top: {error}", file=sys.stderr)
        return 2
    print(f"\nfinal — {spec.label()}")
    print(ascii_table(_CLUSTER_HEADERS, [[
        spec.label(),
        str(result.num_shards),
        format_qps(result.goodput_qps()),
        f"{result.read_percentile_ms(50):.2f}",
        f"{result.read_percentile_ms(99):.2f}",
        f"{result.read_imbalance():.2f}x",
        str(result.hottest_shard()),
        str(result.total_shed),
        str(result.total_deferred),
    ]]))
    if spec.controller != "off":
        total = sum(len(s.control_decisions) for s in result.shards)
        print(
            f"controller {spec.controller}: {total} decisions "
            f"across {result.num_shards} shards"
        )
    if any(shard.trace_mode != "off" for shard in result.shards):
        worst = result.worst_exemplars(5)
        if worst:
            print("\nworst exemplars (fleet)")
            print(ascii_table(_EXEMPLAR_HEADERS, _exemplar_rows(worst)))
        dumps = sum(len(shard.flight_dumps) for shard in result.shards)
        if dumps:
            triggers = sorted({
                dump["trigger"]
                for shard in result.shards
                for dump in shard.flight_dumps
            })
            print(
                f"flight recorder: {dumps} dumps "
                f"({', '.join(triggers)})"
            )
    if args.metrics_out:
        out = Path(args.metrics_out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(render_openmetrics_many([
            ({"shard": str(index)}, shard.metrics)
            for index, shard in enumerate(result.shards)
        ]))
        print(f"OpenMetrics snapshot written to {out}", file=sys.stderr)
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    """Differential harness over one seed; prints a JSON verdict."""
    from repro.check.crash import CrashRecoveryHarness
    from repro.check.differential import DifferentialRunner
    from repro.check.schedule import ScheduleSpec

    if args.engines == "all":
        names = list(ENGINE_NAMES)
    else:
        names = [n.strip() for n in args.engines.split(",") if n.strip()]
        unknown = [n for n in names if n not in ENGINE_NAMES]
        if unknown:
            print(f"unknown engines: {unknown}; see `engines`", file=sys.stderr)
            return 2
    verdict: dict = {
        "seed": args.seed,
        "ops": args.ops,
        "key_space": args.key_space,
        "engines": {},
    }
    for name in names:
        print(f"checking {name} ...", file=sys.stderr)
        runner = DifferentialRunner(
            name, seed=args.seed, ops=args.ops, key_space=args.key_space
        )
        report = runner.run().to_json_dict()
        if args.crash:
            harness = CrashRecoveryHarness(
                name,
                ScheduleSpec(
                    seed=args.seed,
                    ops=min(args.ops, args.crash_ops),
                    key_space=args.key_space,
                ),
            )
            outcomes = [o.to_json_dict() for o in harness.run_all()]
            report["crash"] = {
                "outcomes": outcomes,
                "ok": all(o["consistent"] for o in outcomes),
            }
            report["ok"] = report["ok"] and report["crash"]["ok"]
        verdict["engines"][name] = report
    verdict["ok"] = all(r["ok"] for r in verdict["engines"].values())
    print(json.dumps(verdict, indent=2, sort_keys=True))
    return 0 if verdict["ok"] else 1


def cmd_bench_baseline(args: argparse.Namespace) -> int:
    from repro.sim import speedgate

    path = Path(args.baseline) if args.baseline else speedgate.find_baseline_path()
    trials = args.trials if args.trials is not None else speedgate.DEFAULT_TRIALS
    print(
        f"timing the Fig. 8 grid x{trials} "
        f"({'+'.join(speedgate.GRID_ENGINES)})...",
        file=sys.stderr,
    )
    measured = speedgate.measure_grid(trials=trials)
    baseline = speedgate.load_baseline(path) if path.exists() else None
    outcome = None
    exit_code = 0
    if args.check:
        if baseline is None:
            print(f"no baseline at {path}; record one first", file=sys.stderr)
            return 2
        outcome = speedgate.evaluate_gate(measured, baseline)
        exit_code = 0 if outcome.passed else 1
    print(speedgate.format_report(measured, baseline, outcome))
    if args.record:
        written = speedgate.record_baseline(measured, path)
        print(f"[baseline recorded to {written}]", file=sys.stderr)
    if args.out:
        artifact: dict = {"measured": measured}
        if baseline is not None:
            artifact["baseline"] = baseline
        if outcome is not None:
            artifact["gate"] = {
                "status": outcome.status,
                "ratio": outcome.ratio,
                "min_ratio": outcome.min_ratio,
                "reasons": outcome.reasons,
            }
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(artifact, indent=2) + "\n")
        print(f"[comparison artifact written to {out}]", file=sys.stderr)
    return exit_code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LSbM-tree reproduction: run simulated experiments.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    engines = commands.add_parser("engines", help="list engine variants")
    engines.add_argument(
        "--json", action="store_true",
        help="print the engine catalog as JSON (name, wiring, axes)",
    )
    engines.set_defaults(func=cmd_engines)

    run = commands.add_parser("run", help="run one engine, print its series")
    run.add_argument("--engine", required=True, choices=ENGINE_NAMES)
    run.add_argument("--csv", help="write the per-second series to this file")
    run.add_argument(
        "--json",
        action="store_true",
        help="print the run summary as JSON instead of tables",
    )
    run.add_argument(
        "--profile",
        action="store_true",
        help="run under cProfile: print the top functions and dump "
        "a .pstats file (single-seed runs only)",
    )
    run.add_argument(
        "--profile-out",
        help="cProfile dump path (default results/profile_<engine>.pstats)",
    )
    run.add_argument(
        "--profile-top",
        type=int,
        default=25,
        help="rows in the printed cumulative-time table (default 25)",
    )
    _add_common(run)
    _add_replication(run)
    run.set_defaults(func=cmd_run)

    compare = commands.add_parser("compare", help="run several engines")
    compare.add_argument(
        "--engines",
        default="blsm,leveldb,lsbm",
        help="comma-separated engine names",
    )
    compare.add_argument(
        "--json",
        action="store_true",
        help="print all run summaries as a JSON list",
    )
    _add_common(compare)
    _add_replication(compare)
    compare.set_defaults(func=cmd_compare)

    sweep = commands.add_parser(
        "sweep",
        help="parallel grid sweep: engines × seeds × config overrides",
    )
    sweep.add_argument(
        "--engines",
        default="blsm,leveldb,lsbm",
        help="comma-separated engine names",
    )
    sweep.add_argument(
        "--seeds",
        default="0",
        help="comma-separated seeds replicated per cell (default 0)",
    )
    sweep.add_argument(
        "--set",
        action="append",
        metavar="FIELD=V1,V2",
        help="add a config-override axis, e.g. --set trim_interval_s=10,30 "
        "(repeatable; axes multiply)",
    )
    sweep.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (default 1 = serial, same results)",
    )
    sweep.add_argument(
        "--scale",
        type=int,
        default=2048,
        help="linear size scale vs the paper's setup (default 2048)",
    )
    sweep.add_argument(
        "--duration",
        type=int,
        default=8000,
        help="virtual seconds per run (paper: 20000)",
    )
    sweep.add_argument(
        "--scan",
        action="store_true",
        help="drive range queries instead of point reads",
    )
    sweep.add_argument(
        "--name", default="sweep", help="payload name (default sweep)"
    )
    sweep.add_argument(
        "--json",
        action="store_true",
        help="print the bench-schema payload as JSON",
    )
    sweep.add_argument(
        "--out", help="write the bench-schema payload to this file"
    )
    sweep.add_argument(
        "--out-dir",
        help="write the payload plus one lossless JSON per run here",
    )
    sweep.set_defaults(func=cmd_sweep)

    tune = commands.add_parser(
        "tune",
        help="search the compaction design space for an SLO objective",
    )
    tune.add_argument(
        "--engines",
        default="design",
        help="comma-separated candidate engines (default: design, whose "
        "axes come from --set compaction_* overrides)",
    )
    tune.add_argument(
        "--objective",
        choices=("p99", "hit-stability"),
        default="hit-stability",
        help="SLO to optimize: open-loop read p99 (min) or the "
        "hit-ratio floor (max; default)",
    )
    tune.add_argument(
        "--seeds",
        default="0",
        help="comma-separated seeds replicated per candidate (default 0)",
    )
    tune.add_argument(
        "--set",
        action="append",
        metavar="FIELD=V1,V2",
        help="add a candidate axis, e.g. "
        "--set compaction_layout=tiering,lazy-leveling "
        "(repeatable; axes multiply)",
    )
    tune.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (the winner is jobs-independent)",
    )
    tune.add_argument(
        "--scale",
        type=int,
        default=2048,
        help="linear size scale vs the paper's setup (default 2048)",
    )
    tune.add_argument(
        "--duration",
        type=int,
        default=8000,
        help="virtual seconds per run (paper: 20000)",
    )
    tune.add_argument(
        "--rate",
        type=float,
        default=2000.0,
        help="offered read rate for the p99 objective (default 2000 QPS)",
    )
    tune.add_argument(
        "--policy",
        default="fifo",
        help="scheduler policy for the p99 objective (default fifo)",
    )
    tune.add_argument(
        "--name",
        default="design_space",
        help="payload name (default design_space)",
    )
    tune.add_argument(
        "--json",
        action="store_true",
        help="print the bench-schema payload as JSON",
    )
    tune.add_argument(
        "--out", help="write the bench-schema payload to this file"
    )
    tune.set_defaults(func=cmd_tune)

    serve = commands.add_parser(
        "serve",
        help="open-loop serving: latency vs offered load per policy",
    )
    serve.add_argument(
        "--engines",
        default="leveldb,lsbm",
        help="comma-separated engine names",
    )
    serve.add_argument(
        "--rate",
        default="2000,8000",
        help="comma-separated offered read rates in paper-scale QPS",
    )
    serve.add_argument(
        "--policy",
        default="fifo",
        help="comma-separated scheduling policies "
        "(fifo, read-priority, weighted-fair)",
    )
    serve.add_argument(
        "--arrival",
        default="poisson",
        choices=("poisson", "bursty", "diurnal"),
        help="arrival process for all client classes (default poisson)",
    )
    serve.add_argument(
        "--queue-bound",
        type=int,
        default=64,
        help="total request-queue depth bound (default 64)",
    )
    serve.add_argument(
        "--seeds",
        default="0",
        help="comma-separated seeds replicated per cell (default 0)",
    )
    serve.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (default 1 = serial, same results)",
    )
    serve.add_argument(
        "--scale",
        type=int,
        default=2048,
        help="linear size scale vs the paper's setup (default 2048)",
    )
    serve.add_argument(
        "--duration",
        type=int,
        default=2000,
        help="virtual seconds per run (default 2000)",
    )
    serve.add_argument(
        "--name", default="serve", help="payload name (default serve)"
    )
    serve.add_argument(
        "--json",
        action="store_true",
        help="print the bench-schema payload as JSON",
    )
    serve.add_argument(
        "--out", help="write the bench-schema payload to this file"
    )
    _add_tracing(serve)
    _add_control(serve)
    serve.set_defaults(func=cmd_serve)

    trace = commands.add_parser(
        "trace",
        help="record an engine's events as JSONL, or replay an "
        "operation trace",
    )
    trace.add_argument("--engine", choices=ENGINE_NAMES)
    trace.add_argument(
        "--out", default="trace.jsonl", help="JSONL output path"
    )
    _add_common(trace)
    trace.set_defaults(func=cmd_trace, trace_command=None)
    trace_sub = trace.add_subparsers(dest="trace_command")
    replay = trace_sub.add_parser(
        "replay",
        help="replay an operation-trace file against one engine",
    )
    replay.add_argument("file", help="trace file (one operation per line)")
    replay.add_argument("--engine", required=True, choices=ENGINE_NAMES)
    replay.add_argument(
        "--scale",
        type=int,
        default=2048,
        help="linear size scale vs the paper's setup (default 2048)",
    )
    replay.add_argument(
        "--preload",
        action="store_true",
        help="bulk-load the unique data set before replaying",
    )
    replay.add_argument(
        "--json",
        action="store_true",
        help="print the replay counters as JSON",
    )

    cluster = commands.add_parser(
        "cluster",
        help="sharded cluster grid: engines × shard counts × partitioners",
    )
    cluster.add_argument(
        "--engines",
        default="leveldb,lsbm",
        help="comma-separated engine names",
    )
    cluster.add_argument(
        "--shards",
        default="2",
        help="comma-separated shard counts (default 2)",
    )
    cluster.add_argument(
        "--partitioner",
        default="hash",
        help="comma-separated partitioners (hash, range)",
    )
    cluster.add_argument(
        "--rate",
        default="2000",
        help="comma-separated cluster-wide offered read rates "
        "(paper-scale QPS)",
    )
    cluster.add_argument(
        "--write-rate",
        type=float,
        default=None,
        help="cluster-wide offered write rate (default: config write OPS)",
    )
    cluster.add_argument(
        "--policy",
        default="fifo",
        help="per-shard scheduling policy (fifo, read-priority, "
        "weighted-fair)",
    )
    cluster.add_argument(
        "--arrival",
        default="poisson",
        choices=("poisson", "bursty", "diurnal"),
        help="arrival process (default poisson)",
    )
    cluster.add_argument(
        "--queue-bound",
        type=int,
        default=64,
        help="per-shard request-queue depth bound (default 64)",
    )
    cluster.add_argument(
        "--seeds",
        default="0",
        help="comma-separated seeds replicated per cell (default 0)",
    )
    cluster.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for shard fan-out (default 1)",
    )
    cluster.add_argument(
        "--scale",
        type=int,
        default=2048,
        help="linear size scale vs the paper's setup (default 2048)",
    )
    cluster.add_argument(
        "--duration",
        type=int,
        default=2000,
        help="virtual seconds per run (default 2000)",
    )
    cluster.add_argument(
        "--split-at",
        type=int,
        default=None,
        help="migrate a key range mid-run at this virtual second "
        "(range partitioner only; forces coordinated execution)",
    )
    cluster.add_argument(
        "--split-source",
        type=int,
        default=0,
        help="shard whose range the split cuts (default 0)",
    )
    cluster.add_argument(
        "--split-target",
        type=int,
        default=1,
        help="shard that adopts the migrated range (default 1)",
    )
    cluster.add_argument(
        "--split-fraction",
        type=float,
        default=0.5,
        help="upper fraction of the source range to migrate (default 0.5)",
    )
    cluster.add_argument(
        "--verify",
        action="store_true",
        help="shadow every dispatch with a cluster-wide KV oracle "
        "(forces coordinated execution)",
    )
    cluster.add_argument(
        "--name", default="cluster", help="payload name (default cluster)"
    )
    cluster.add_argument(
        "--json",
        action="store_true",
        help="print the bench-schema payload as JSON",
    )
    cluster.add_argument(
        "--out", help="write the bench-schema payload to this file"
    )
    _add_tracing(cluster)
    _add_control(cluster)
    cluster.set_defaults(func=cmd_cluster)

    top = commands.add_parser(
        "top",
        help="live per-shard telemetry for one coordinated cluster run",
    )
    top.add_argument("--engine", default="lsbm", choices=ENGINE_NAMES)
    top.add_argument(
        "--shards", type=int, default=2, help="shard count (default 2)"
    )
    top.add_argument(
        "--partitioner", default="hash", help="hash or range (default hash)"
    )
    top.add_argument(
        "--rate",
        type=float,
        default=2000.0,
        help="cluster-wide offered read rate in paper-scale QPS",
    )
    top.add_argument(
        "--policy",
        default="fifo",
        help="per-shard scheduling policy (default fifo)",
    )
    top.add_argument(
        "--arrival",
        default="poisson",
        choices=("poisson", "bursty", "diurnal"),
        help="arrival process (default poisson)",
    )
    top.add_argument(
        "--queue-bound",
        type=int,
        default=64,
        help="per-shard request-queue depth bound (default 64)",
    )
    top.add_argument(
        "--scale",
        type=int,
        default=2048,
        help="linear size scale vs the paper's setup (default 2048)",
    )
    top.add_argument(
        "--duration",
        type=int,
        default=2000,
        help="virtual seconds to run (default 2000)",
    )
    top.add_argument("--seed", type=int, default=0)
    top.add_argument(
        "--refresh",
        type=int,
        default=20,
        help="virtual seconds between frames (default 20)",
    )
    top.add_argument(
        "--plain",
        action="store_true",
        help="append frames instead of redrawing (the non-tty default)",
    )
    top.add_argument(
        "--metrics-out",
        help="write a final OpenMetrics snapshot of every shard "
        "registry to this file",
    )
    _add_tracing(top)
    _add_control(top)
    top.set_defaults(func=cmd_top)

    report = commands.add_parser(
        "report",
        help="profiled run: spans, per-cause bandwidth, dip diagnosis; "
        "or render an archived payload with --from",
    )
    report.add_argument("--engine", choices=ENGINE_NAMES)
    report.add_argument(
        "--from",
        dest="from_file",
        metavar="FILE",
        help="render an archived JSON payload (bench payload or "
        "lossless serve/cluster result) instead of running",
    )
    report.add_argument(
        "--sample-every",
        type=int,
        default=32,
        help="emit one read span per this many reads (default 32)",
    )
    report.add_argument(
        "--dip-threshold",
        type=float,
        default=0.7,
        help="hit-ratio threshold whose downward crossings are diagnosed",
    )
    report.add_argument(
        "--trace-out", help="also write the full JSONL trace to this path"
    )
    report.add_argument(
        "--json",
        action="store_true",
        help="print the report as JSON instead of tables",
    )
    _add_common(report)
    report.set_defaults(func=cmd_report)

    check = commands.add_parser(
        "check",
        help="differential correctness harness: oracle + invariants",
    )
    check.add_argument(
        "--engines",
        default="all",
        help='comma-separated engine names, or "all" (default)',
    )
    check.add_argument("--seed", type=int, default=0)
    check.add_argument(
        "--ops",
        type=int,
        default=5000,
        help="schedule length per engine (default 5000)",
    )
    check.add_argument(
        "--key-space",
        type=int,
        default=2000,
        help="distinct keys in the schedule (default 2000)",
    )
    check.add_argument(
        "--crash",
        action="store_true",
        help="also run crash/recovery fault injection at every crash point",
    )
    check.add_argument(
        "--crash-ops",
        type=int,
        default=2500,
        help="schedule length for crash experiments (default 2500)",
    )
    check.set_defaults(func=cmd_check)

    bench = commands.add_parser(
        "bench-baseline",
        help="time the Fig. 8 grid against benchmarks/baseline.json",
    )
    bench.add_argument(
        "--trials",
        type=int,
        default=None,
        help="grid repetitions (default 5; best trial is the headline)",
    )
    bench.add_argument(
        "--record",
        action="store_true",
        help="re-record the baseline floor from this measurement",
    )
    bench.add_argument(
        "--check",
        action="store_true",
        help="enforce the speed gate: exit 1 if the best trial is more "
        "than (1 - min_ratio) below the recorded ops/s",
    )
    bench.add_argument(
        "--baseline",
        help="baseline.json path (default: benchmarks/baseline.json, "
        "or REPRO_BASELINE_PATH)",
    )
    bench.add_argument(
        "--out",
        help="write the measurement + comparison as a JSON artifact",
    )
    bench.set_defaults(func=cmd_bench_baseline)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
