"""Structural integrity checking for engine states.

Deep invariants that every healthy engine state satisfies — runs sorted
and disjoint, gear bounds respected, compaction-buffer bookkeeping
consistent, disk accounting closed.  Property tests call
:func:`check_engine` after arbitrary operation streams; it raises
:class:`~repro.errors.EngineError` with a precise message on the first
violation, which makes shrunk hypothesis counterexamples readable.
"""

from __future__ import annotations

from repro.core.lsbm import LSbMTree
from repro.errors import EngineError
from repro.lsm.blsm import BLSMTree
from repro.lsm.leveldb import LevelDBTree
from repro.lsm.sm_tree import SMTree
from repro.sstable.sorted_table import SortedTable
from repro.variants.hbase import HBaseStyleStore


def _check_run(table: SortedTable, label: str) -> None:
    """A sorted run's files must be key-ordered and disjoint."""
    files = table.files
    for left, right in zip(files, files[1:]):
        if left.max_key >= right.min_key:
            raise EngineError(
                f"{label}: files {left.file_id} and {right.file_id} overlap"
            )
    for file in files:
        if not file.removed and file.min_key > file.max_key:
            raise EngineError(f"{label}: file {file.file_id} has empty range")


def _check_live_extents(engine, tables: list[tuple[str, SortedTable]]) -> None:
    """Every live (non-removed) file must own a live disk extent, and the
    sum of live file sizes must not exceed the disk's live footprint."""
    total = 0
    for label, table in tables:
        for file in table:
            if file.removed:
                if engine.disk.is_live(file.extent):
                    raise EngineError(
                        f"{label}: removed file {file.file_id} still on disk"
                    )
                continue
            if not engine.disk.is_live(file.extent):
                raise EngineError(
                    f"{label}: live file {file.file_id} has a freed extent"
                )
            total += file.size_kb
    if total > engine.disk.live_kb:
        raise EngineError(
            f"live files ({total} KB) exceed disk footprint "
            f"({engine.disk.live_kb} KB)"
        )


def _leveldb_tables(engine: LevelDBTree) -> list[tuple[str, SortedTable]]:
    return [
        (f"level {level}", engine.levels[level])
        for level in range(1, engine.num_levels + 1)
    ]


def _blsm_tables(engine: BLSMTree) -> list[tuple[str, SortedTable]]:
    tables = [("C0'", engine.c0_prime)]
    for level in range(1, engine.num_levels + 1):
        tables.append((f"C{level}", engine.c[level]))
        if level < engine.num_levels:
            tables.append((f"C{level}'", engine.cp[level]))
    return tables


def _check_gear_bounds(engine: BLSMTree) -> None:
    """|Ci| + |Ci'| must respect each level's capacity within slack.

    The gear scheduler moves one compaction unit per pass, and the unit
    draining *out* of a level can transiently be smaller than the unit
    arriving (merge outputs are regrouped into new super-files with
    ragged tails), so totals legitimately wobble above ``Si`` by a few
    units plus one level-0 burst.  The wobble is absolute, not
    proportional — negligible at paper scale, visible in tiny tests.
    """
    slack = (
        engine.config.level0_size_kb + 4 * engine.config.superfile_size_kb
    )
    for level in range(1, engine.num_levels):
        total = engine.level_total_kb(level)
        capacity = engine.config.level_capacity_kb(level)
        if total > capacity + slack:
            raise EngineError(
                f"gear bound broken at level {level}: "
                f"{total} KB > {capacity} + {slack} KB"
            )


def _check_lsbm_buffer(engine: LSbMTree) -> None:
    for level in range(1, engine.num_levels + 1):
        buf = engine.buffer[level]
        _check_run(buf.incoming, f"B{level}^0")
        for index, table in enumerate(buf.tables):
            _check_run(table, f"B{level}[{index}]")
        for index, table in enumerate(buf.draining):
            _check_run(table, f"B{level}'[{index}]")
        if buf.frozen and buf.live_kb != 0:
            raise EngineError(f"frozen B{level} holds live data")
        # Incoming files are never removed while referenced.
        for file in buf.incoming:
            if file.removed:
                raise EngineError(
                    f"B{level}^0 references removed file {file.file_id}"
                )


def check_engine(engine) -> None:
    """Verify every structural invariant of ``engine``'s current state."""
    if isinstance(engine, LSbMTree):
        tables = _blsm_tables(engine)
        for level in range(1, engine.num_levels + 1):
            buf = engine.buffer[level]
            tables.append((f"B{level}^0", buf.incoming))
            tables.extend(
                (f"B{level}[{i}]", t) for i, t in enumerate(buf.tables)
            )
            tables.extend(
                (f"B{level}'[{i}]", t) for i, t in enumerate(buf.draining)
            )
        for label, table in tables:
            _check_run(table, label)
        _check_gear_bounds(engine)
        _check_lsbm_buffer(engine)
        _check_live_extents(engine, tables)
    elif isinstance(engine, BLSMTree):  # Includes the warmup variant.
        tables = _blsm_tables(engine)
        for label, table in tables:
            _check_run(table, label)
        _check_gear_bounds(engine)
        _check_live_extents(engine, tables)
    elif isinstance(engine, LevelDBTree):
        tables = _leveldb_tables(engine)
        for label, table in tables:
            _check_run(table, label)
        _check_live_extents(engine, tables)
    elif isinstance(engine, SMTree):
        tables = [
            (f"level {level}[{i}]", table)
            for level in range(1, engine.num_levels + 1)
            for i, table in enumerate(engine.levels[level])
        ]
        for label, table in tables:
            _check_run(table, label)
        _check_live_extents(engine, tables)
    elif isinstance(engine, HBaseStyleStore):
        tables = [(f"store[{i}]", t) for i, t in enumerate(engine.tables)]
        for label, table in tables:
            _check_run(table, label)
        _check_live_extents(engine, tables)
    else:
        raise EngineError(f"no integrity checks for {type(engine).__name__}")
