"""Operation-trace recording and replay.

Research workflows often need to re-run *exactly* the same operation
stream against several engines, or archive the stream that produced an
anomaly.  A trace is a plain text file, one operation per line:

    put 1234
    get 77
    del 9
    scan 100 50      # start, length-in-pairs
    tick             # advance one virtual second (housekeeping)

:class:`TraceRecorder` captures a stream (e.g. while a generator runs),
:func:`load_trace`/:func:`save_trace` round-trip it through a file, and
:func:`replay_trace` drives any engine with it, returning basic counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.errors import WorkloadError


@dataclass(frozen=True)
class TraceOp:
    """One operation in a trace."""

    op: str  # "put" | "get" | "del" | "scan" | "tick"
    key: int = 0
    length: int = 0

    def to_line(self) -> str:
        if self.op == "tick":
            return "tick"
        if self.op == "scan":
            return f"scan {self.key} {self.length}"
        return f"{self.op} {self.key}"


def parse_line(line: str) -> TraceOp | None:
    """Parse one trace line; returns ``None`` for blanks and comments."""
    body = line.split("#", 1)[0].strip()
    if not body:
        return None
    parts = body.split()
    op = parts[0].lower()
    if op == "tick":
        if len(parts) != 1:
            raise WorkloadError(f"malformed trace line: {line!r}")
        return TraceOp("tick")
    if op in ("put", "get", "del"):
        if len(parts) != 2:
            raise WorkloadError(f"malformed trace line: {line!r}")
        return TraceOp(op, int(parts[1]))
    if op == "scan":
        if len(parts) != 3:
            raise WorkloadError(f"malformed trace line: {line!r}")
        return TraceOp(op, int(parts[1]), int(parts[2]))
    raise WorkloadError(f"unknown trace operation: {line!r}")


class TraceRecorder:
    """Collects operations for later replay or archival."""

    def __init__(self) -> None:
        self.ops: list[TraceOp] = []

    def put(self, key: int) -> None:
        self.ops.append(TraceOp("put", key))

    def get(self, key: int) -> None:
        self.ops.append(TraceOp("get", key))

    def delete(self, key: int) -> None:
        self.ops.append(TraceOp("del", key))

    def scan(self, start: int, length: int) -> None:
        self.ops.append(TraceOp("scan", start, length))

    def tick(self) -> None:
        self.ops.append(TraceOp("tick"))

    def __len__(self) -> int:
        return len(self.ops)


def save_trace(ops: list[TraceOp], path: str | Path) -> None:
    Path(path).write_text("\n".join(op.to_line() for op in ops) + "\n")


def load_trace(path: str | Path) -> list[TraceOp]:
    ops = []
    for line in Path(path).read_text().splitlines():
        parsed = parse_line(line)
        if parsed is not None:
            ops.append(parsed)
    return ops


@dataclass
class ReplayResult:
    """What a replay did and found."""

    puts: int = 0
    gets: int = 0
    deletes: int = 0
    scans: int = 0
    ticks: int = 0
    found: int = 0
    pairs_scanned: int = 0


def replay_trace(engine, clock, ops: list[TraceOp]) -> ReplayResult:
    """Drive ``engine`` with a trace (clock advanced on ``tick`` ops)."""
    result = ReplayResult()
    for op in ops:
        if op.op == "put":
            engine.put(op.key)
            result.puts += 1
        elif op.op == "get":
            if engine.get(op.key).found:
                result.found += 1
            result.gets += 1
        elif op.op == "del":
            engine.delete(op.key)
            result.deletes += 1
        elif op.op == "scan":
            scan = engine.scan(op.key, op.key + max(op.length, 1) - 1)
            result.pairs_scanned += len(scan.entries)
            result.scans += 1
        else:  # tick
            clock.advance(1)
            engine.tick(clock.now)
            result.ticks += 1
    return result
