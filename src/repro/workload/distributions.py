"""Key-chooser distributions, following YCSB's generator semantics.

The paper drives its evaluation with YCSB (Section VI-B); the workload it
actually uses — RangeHot — is built from a hotspot-style distribution, but
the standard YCSB choosers (uniform, zipfian, scrambled zipfian, latest,
hotspot) are all provided so the example applications can run the YCSB
core workloads A-F against any engine.

All choosers draw from a caller-supplied :class:`random.Random` so that a
single seeded generator makes a whole experiment reproducible.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod

from repro.bloom.hashing import splitmix64
from repro.errors import WorkloadError


class KeyChooser(ABC):
    """Draws keys from some distribution over ``[0, num_keys)``."""

    @abstractmethod
    def next_key(self, rng: random.Random) -> int:
        """Draw one key."""


class UniformChooser(KeyChooser):
    """Uniform over ``[low, high)``."""

    def __init__(self, low: int, high: int) -> None:
        if high <= low:
            raise WorkloadError(f"empty key range [{low}, {high})")
        self.low = low
        self.high = high

    def next_key(self, rng: random.Random) -> int:
        return rng.randrange(self.low, self.high)


class ZipfianChooser(KeyChooser):
    """Zipfian over ``[0, num_keys)`` (Gray et al.'s rejection-free method).

    This is YCSB's ``ZipfianGenerator``: item ranks are zipf-distributed
    with exponent ``theta`` (0.99 by default), so rank 0 is the most
    popular key.
    """

    def __init__(self, num_keys: int, theta: float = 0.99) -> None:
        if num_keys < 1:
            raise WorkloadError("zipfian needs at least one key")
        if not 0.0 < theta < 1.0:
            raise WorkloadError(f"theta must be in (0, 1), got {theta}")
        self.num_keys = num_keys
        self.theta = theta
        self._zetan = self._zeta(num_keys, theta)
        self._zeta2 = self._zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = (1.0 - (2.0 / num_keys) ** (1.0 - theta)) / (
            1.0 - self._zeta2 / self._zetan
        )

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return sum(1.0 / (i ** theta) for i in range(1, n + 1))

    def next_key(self, rng: random.Random) -> int:
        u = rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(
            self.num_keys * (self._eta * u - self._eta + 1.0) ** self._alpha
        )


class ScrambledZipfianChooser(KeyChooser):
    """Zipfian popularity spread over the key space by hashing.

    YCSB's default request distribution: hot keys are scattered instead of
    clustered at the low end, which is the realistic shape for hashed row
    keys.
    """

    def __init__(self, num_keys: int, theta: float = 0.99) -> None:
        self.num_keys = num_keys
        self._zipfian = ZipfianChooser(num_keys, theta)

    def next_key(self, rng: random.Random) -> int:
        rank = self._zipfian.next_key(rng)
        return splitmix64(rank) % self.num_keys


class HotspotChooser(KeyChooser):
    """YCSB's hotspot distribution: a hot set absorbs most operations.

    ``hot_fraction`` of the key space receives ``hot_op_fraction`` of the
    operations; both the hot and cold draws are uniform within their sets.
    """

    def __init__(
        self,
        num_keys: int,
        hot_fraction: float,
        hot_op_fraction: float,
        hot_start: int = 0,
    ) -> None:
        if not 0.0 < hot_fraction <= 1.0:
            raise WorkloadError("hot_fraction must be in (0, 1]")
        if not 0.0 <= hot_op_fraction <= 1.0:
            raise WorkloadError("hot_op_fraction must be in [0, 1]")
        self.num_keys = num_keys
        self.hot_start = hot_start
        self.hot_size = max(1, int(num_keys * hot_fraction))
        if hot_start + self.hot_size > num_keys:
            raise WorkloadError("hot range exceeds the key space")
        self.hot_op_fraction = hot_op_fraction

    def next_key(self, rng: random.Random) -> int:
        if rng.random() < self.hot_op_fraction:
            return self.hot_start + rng.randrange(self.hot_size)
        return rng.randrange(self.num_keys)


class LatestChooser(KeyChooser):
    """YCSB's "latest" distribution: recency-skewed toward new inserts.

    Popularity is zipfian over recency rank; the caller must keep
    :attr:`max_key` current as inserts happen.
    """

    def __init__(self, initial_max_key: int, theta: float = 0.99) -> None:
        if initial_max_key < 1:
            raise WorkloadError("latest needs at least one inserted key")
        self.max_key = initial_max_key
        self._zipfian = ZipfianChooser(initial_max_key, theta)

    def advance(self, new_max_key: int) -> None:
        self.max_key = max(self.max_key, new_max_key)

    def next_key(self, rng: random.Random) -> int:
        rank = self._zipfian.next_key(rng) % self.max_key
        return self.max_key - 1 - rank


class SequentialChooser(KeyChooser):
    """Deterministic 0, 1, 2, ... — the load phase's insert order."""

    def __init__(self, start: int = 0) -> None:
        self._next = start

    def next_key(self, rng: random.Random) -> int:
        value = self._next
        self._next += 1
        return value


class ExponentialSizeChooser:
    """Scan-length chooser: 1 + Exp(mean), capped (YCSB scan lengths)."""

    def __init__(self, mean: float, cap: int) -> None:
        if mean <= 0 or cap < 1:
            raise WorkloadError("invalid scan-length parameters")
        self.mean = mean
        self.cap = cap

    def next_length(self, rng: random.Random) -> int:
        return min(self.cap, 1 + int(-self.mean * math.log(1.0 - rng.random())))
