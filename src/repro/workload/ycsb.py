"""YCSB-style workload templates, including the paper's RangeHot.

Section VI-B: "We have built the RangeHot workload, which characterizes
requests with strong spatial locality, i.e., a large portion of reads is
concentrated in a hot range.  In our test, 3GB continuous data range is
set as the hot range, and 98% of the reads requests lie in this range."
Writes are uniform over the whole (20 GB) unique key space.

:class:`RangeHotWorkload` generates exactly that, parameterized by the
scaled :class:`~repro.config.SystemConfig`; the standard YCSB core
workloads A-F are provided for the example applications.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum

from repro.config import SystemConfig
from repro.errors import WorkloadError
from repro.workload.distributions import (
    ExponentialSizeChooser,
    KeyChooser,
    LatestChooser,
    ScrambledZipfianChooser,
    UniformChooser,
    ZipfianChooser,
)


class OpKind(Enum):
    """YCSB operation types."""

    READ = "read"
    UPDATE = "update"
    INSERT = "insert"
    SCAN = "scan"
    READ_MODIFY_WRITE = "rmw"
    DELETE = "delete"


@dataclass(frozen=True)
class Operation:
    """One generated client operation."""

    kind: OpKind
    key: int
    scan_length: int = 0


class RangeHotWorkload:
    """The paper's mixed read/write workload (Section VI-B).

    * writes: uniform over the whole unique key space;
    * point reads: ``hot_read_fraction`` (98%) uniform inside a contiguous
      hot range covering ``hot_range_fraction`` (15%) of the key space,
      the rest uniform over everything;
    * range reads: same key choice for the scan start, fixed scan length
      of ``scan_length_pairs`` (the paper's 100 KB).

    The hot range is placed mid-key-space so that range scans starting
    inside it never run off the end of the data set.
    """

    def __init__(self, config: SystemConfig, hot_start: int | None = None) -> None:
        self.config = config
        self.num_keys = config.unique_keys
        self.hot_size = max(1, config.hot_range_pairs)
        if hot_start is None:
            hot_start = (self.num_keys - self.hot_size) // 4
        if hot_start + self.hot_size > self.num_keys:
            raise WorkloadError("hot range exceeds the key space")
        self.hot_start = hot_start
        self.hot_read_fraction = config.hot_read_fraction
        self.scan_length = config.scan_length_pairs

    # ------------------------------------------------------------------
    # Key choices.
    # ------------------------------------------------------------------
    def next_write_key(self, rng: random.Random) -> int:
        return rng.randrange(self.num_keys)

    def next_read_key(self, rng: random.Random) -> int:
        if rng.random() < self.hot_read_fraction:
            return self.hot_start + rng.randrange(self.hot_size)
        return rng.randrange(self.num_keys)

    def next_scan_range(self, rng: random.Random) -> tuple[int, int]:
        """Inclusive key bounds of one range query."""
        start = self.next_read_key(rng)
        start = min(start, self.num_keys - self.scan_length)
        return start, start + self.scan_length - 1

    def in_hot_range(self, key: int) -> bool:
        return self.hot_start <= key < self.hot_start + self.hot_size


class YCSBWorkload:
    """A YCSB core-style operation mix over ``num_keys`` records."""

    def __init__(
        self,
        num_keys: int,
        read_proportion: float = 0.0,
        update_proportion: float = 0.0,
        insert_proportion: float = 0.0,
        scan_proportion: float = 0.0,
        rmw_proportion: float = 0.0,
        delete_proportion: float = 0.0,
        request_distribution: str = "zipfian",
        max_scan_length: int = 100,
    ) -> None:
        total = (
            read_proportion
            + update_proportion
            + insert_proportion
            + scan_proportion
            + rmw_proportion
            + delete_proportion
        )
        if abs(total - 1.0) > 1e-9:
            raise WorkloadError(f"operation proportions sum to {total}, not 1")
        self.num_keys = num_keys
        self._insert_cursor = num_keys
        self._thresholds = [
            read_proportion,
            read_proportion + update_proportion,
            read_proportion + update_proportion + insert_proportion,
            read_proportion + update_proportion + insert_proportion
            + scan_proportion,
            read_proportion + update_proportion + insert_proportion
            + scan_proportion + rmw_proportion,
        ]
        self._chooser = self._make_chooser(request_distribution, num_keys)
        self._scan_lengths = ExponentialSizeChooser(
            mean=max_scan_length / 2, cap=max_scan_length
        )

    @staticmethod
    def _make_chooser(name: str, num_keys: int) -> KeyChooser:
        if name == "uniform":
            return UniformChooser(0, num_keys)
        if name == "zipfian":
            return ScrambledZipfianChooser(num_keys)
        if name == "zipfian_clustered":
            return ZipfianChooser(num_keys)
        if name == "latest":
            return LatestChooser(num_keys)
        raise WorkloadError(f"unknown request distribution: {name}")

    def next_operation(self, rng: random.Random) -> Operation:
        roll = rng.random()
        if isinstance(self._chooser, LatestChooser):
            self._chooser.advance(self._insert_cursor)
        key = self._chooser.next_key(rng) % max(1, self._insert_cursor)
        if roll < self._thresholds[0]:
            return Operation(OpKind.READ, key)
        if roll < self._thresholds[1]:
            return Operation(OpKind.UPDATE, key)
        if roll < self._thresholds[2]:
            key = self._insert_cursor
            self._insert_cursor += 1
            return Operation(OpKind.INSERT, key)
        if roll < self._thresholds[3]:
            return Operation(
                OpKind.SCAN, key, self._scan_lengths.next_length(rng)
            )
        if roll < self._thresholds[4]:
            return Operation(OpKind.READ_MODIFY_WRITE, key)
        return Operation(OpKind.DELETE, key)


def ycsb_core_workload(name: str, num_keys: int) -> YCSBWorkload:
    """The standard YCSB core workloads A-F."""
    presets = {
        "A": dict(read_proportion=0.5, update_proportion=0.5),
        "B": dict(read_proportion=0.95, update_proportion=0.05),
        "C": dict(read_proportion=1.0),
        "D": dict(
            read_proportion=0.95,
            insert_proportion=0.05,
            request_distribution="latest",
        ),
        "E": dict(
            scan_proportion=0.95,
            insert_proportion=0.05,
        ),
        "F": dict(read_proportion=0.5, rmw_proportion=0.5),
    }
    try:
        preset = presets[name.upper()]
    except KeyError:
        raise WorkloadError(f"unknown YCSB core workload: {name!r}") from None
    return YCSBWorkload(num_keys, **preset)  # type: ignore[arg-type]
