"""Workload generation: YCSB distributions and the paper's RangeHot."""

from repro.workload.distributions import (
    ExponentialSizeChooser,
    HotspotChooser,
    KeyChooser,
    LatestChooser,
    ScrambledZipfianChooser,
    SequentialChooser,
    UniformChooser,
    ZipfianChooser,
)
from repro.workload.ycsb import (
    Operation,
    OpKind,
    RangeHotWorkload,
    YCSBWorkload,
    ycsb_core_workload,
)

__all__ = [
    "ExponentialSizeChooser",
    "HotspotChooser",
    "KeyChooser",
    "LatestChooser",
    "Operation",
    "OpKind",
    "RangeHotWorkload",
    "ScrambledZipfianChooser",
    "SequentialChooser",
    "UniformChooser",
    "YCSBWorkload",
    "ZipfianChooser",
    "ycsb_core_workload",
]
