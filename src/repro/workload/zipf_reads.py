"""A zipfian-read workload with the RangeHot driver interface.

The paper's RangeHot template concentrates reads *spatially* (one
contiguous hot range), which is the friendliest possible shape for both
block caching and LSbM's file-granular trim.  The other canonical skew —
zipfian popularity scattered across the key space — has almost no spatial
locality: hot keys share blocks with cold ones, so per-block caching and
per-file trimming are both diluted.  The ``extension_zipfian`` benchmark
uses this workload to measure how much of LSbM's benefit survives.

The class exposes the same three methods the mixed read/write driver
consumes (``next_write_key``, ``next_read_key``, ``next_scan_range``), so
it drops in anywhere :class:`~repro.workload.ycsb.RangeHotWorkload` does.
"""

from __future__ import annotations

import random

from repro.config import SystemConfig
from repro.workload.distributions import ScrambledZipfianChooser


class ZipfianReadWorkload:
    """Uniform writes + scrambled-zipfian point reads/scans."""

    def __init__(self, config: SystemConfig, theta: float = 0.99) -> None:
        self.config = config
        self.num_keys = config.unique_keys
        self.scan_length = config.scan_length_pairs
        self._chooser = ScrambledZipfianChooser(config.unique_keys, theta)

    def next_write_key(self, rng: random.Random) -> int:
        return rng.randrange(self.num_keys)

    def next_read_key(self, rng: random.Random) -> int:
        return self._chooser.next_key(rng)

    def next_scan_range(self, rng: random.Random) -> tuple[int, int]:
        start = min(self.next_read_key(rng), self.num_keys - self.scan_length)
        return start, start + self.scan_length - 1
