"""Declarative serve-run specifications.

:class:`ServiceSpec` is to :func:`~repro.serve.service.execute_serve`
what :class:`~repro.sim.spec.ExperimentSpec` is to ``execute``: a
picklable, JSON-able description of one open-loop run — engine, config
base, client classes, offered rates, scheduling policy and admission
thresholds.  It deliberately mirrors the experiment spec's surface
(``config()``, ``cell_key()``, ``label()``, ``to_dict``/``from_dict``),
because the sweep runner identifies, deduplicates and summarizes cells
through exactly that surface; :func:`expand_serve_grid` builds the
engine × rate × policy grids behind ``repro serve``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.config import SystemConfig
from repro.control import CONTROLLER_NAMES
from repro.control.controller import DEFAULT_CONTROL_INTERVAL_S
from repro.errors import ConfigError
from repro.obs.prof import DEFAULT_SAMPLE_EVERY
from repro.obs.tracing import TRACE_MODES
from repro.serve.arrivals import PROCESSES, ClientClass
from repro.serve.scheduler import SCHEDULER_NAMES
from repro.sim.spec import CONFIG_BASES, ExperimentSpec

#: Default sampling period for per-request decomposition samples; prime
#: so samples don't phase-lock with periodic load.
DEFAULT_REQUEST_SAMPLE_EVERY = 17


@dataclass(frozen=True)
class ServiceSpec:
    """One open-loop serve run, described entirely by primitives.

    ``read_rate_qps``/``write_rate_qps`` configure the *default* client
    classes (a weight-3 ``readers`` class and a weight-1 ``writers``
    class sharing the spec's arrival process); ``classes`` overrides
    them with an explicit tuple of :class:`ClientClass` for custom
    mixes.  ``write_rate_qps=None`` takes the config's paced write rate
    (``write_rate_pairs_per_s × ops_scale``), keeping serve runs
    write-comparable with the closed-loop figures.
    """

    engine: str
    base: str = "paper_scaled"
    scale: int = 2048
    overrides: tuple[tuple[str, object], ...] = ()
    duration_s: int | None = None
    seed: int = 0
    policy: str = "fifo"
    arrival: str = "poisson"
    read_rate_qps: float = 2000.0
    write_rate_qps: float | None = None
    queue_bound: int = 64
    admit_queue_fraction: float = 0.75
    retry_after_s: float = 5.0
    max_retries: int = 3
    classes: tuple[ClientClass, ...] = ()
    do_preload: bool = True
    #: Read the workload's hot range once before arrivals start, so the
    #: run measures steady-state serving rather than the cold-cache
    #: transient (under open-loop load a cold cache saturates the queue
    #: before it can warm, drowning engine differences in backlog).
    warm_cache: bool = True
    profile: bool = False
    sample_every: int = DEFAULT_SAMPLE_EVERY
    request_sample_every: int = DEFAULT_REQUEST_SAMPLE_EVERY
    #: Request tracing: "off" (no tracer, no flight recorder, the bus
    #: keeps its counting-only amortization), "exemplar" (tail-biased
    #: span-tree sampling + flight recorder), or "full" (every request).
    trace: str = "off"
    #: Where trace/flight JSONL files land (None = keep in memory only).
    #: Not part of the cell identity — it changes artifacts, not results.
    trace_dir: str | None = None
    #: Flight-recorder trigger thresholds (see FlightPolicy).
    trace_slo_s: float = 1.0
    trace_stall_spike_s: float = 0.25
    trace_dip_threshold: float = 0.7
    #: Runtime controller: "off" (no controller object, the step loop
    #: pays one None check), "static" (bound but provably inert),
    #: "rules" (banded hysteresis) or "gradient" (hill-climb).
    controller: str = "off"
    #: Virtual seconds between control ticks.
    control_interval_s: int = DEFAULT_CONTROL_INTERVAL_S

    def __post_init__(self) -> None:
        if self.base not in CONFIG_BASES:
            raise ConfigError(
                f"unknown config base {self.base!r}; choose from {CONFIG_BASES}"
            )
        if self.policy not in SCHEDULER_NAMES:
            raise ConfigError(
                f"unknown policy {self.policy!r}; "
                f"choose from {SCHEDULER_NAMES}"
            )
        if self.arrival not in PROCESSES:
            raise ConfigError(
                f"unknown arrival process {self.arrival!r}; "
                f"choose from {PROCESSES}"
            )
        if self.read_rate_qps < 0:
            raise ConfigError("read_rate_qps must be >= 0")
        if self.queue_bound < 1:
            raise ConfigError("queue_bound must be >= 1")
        if self.request_sample_every < 1:
            raise ConfigError("request_sample_every must be >= 1")
        if self.trace not in TRACE_MODES:
            raise ConfigError(
                f"unknown trace mode {self.trace!r}; "
                f"choose from {TRACE_MODES}"
            )
        if self.trace_slo_s <= 0:
            raise ConfigError("trace_slo_s must be > 0")
        if self.trace_stall_spike_s < 0:
            raise ConfigError("trace_stall_spike_s must be >= 0")
        if not 0.0 <= self.trace_dip_threshold <= 1.0:
            raise ConfigError("trace_dip_threshold must be in [0, 1]")
        if self.controller not in CONTROLLER_NAMES:
            raise ConfigError(
                f"unknown controller {self.controller!r}; "
                f"choose from {CONTROLLER_NAMES}"
            )
        if self.control_interval_s < 1:
            raise ConfigError("control_interval_s must be >= 1")
        # Delegate override validation (field names, sorting) to the
        # experiment spec, then adopt its normalized tuple.
        probe = ExperimentSpec(
            engine=self.engine,
            base=self.base,
            scale=self.scale,
            overrides=self.overrides,
        )
        object.__setattr__(self, "overrides", probe.overrides)
        object.__setattr__(self, "classes", tuple(self.classes))

    def replace(self, **changes: object) -> "ServiceSpec":
        return dataclasses.replace(self, **changes)

    def with_seed(self, seed: int) -> "ServiceSpec":
        return self.replace(seed=seed)

    # ------------------------------------------------------------------
    # Materialization.
    # ------------------------------------------------------------------
    def _experiment_spec(self) -> ExperimentSpec:
        return ExperimentSpec(
            engine=self.engine,
            base=self.base,
            scale=self.scale,
            overrides=self.overrides,
            duration_s=self.duration_s,
            seed=self.seed,
            do_preload=self.do_preload,
            profile=self.profile,
            sample_every=self.sample_every,
        )

    def config(self) -> SystemConfig:
        return self._experiment_spec().config()

    def client_classes(self, config: SystemConfig) -> tuple[ClientClass, ...]:
        """The effective classes: explicit ``classes`` or the defaults."""
        if self.classes:
            return self.classes
        write_qps = self.write_rate_qps
        if write_qps is None:
            write_qps = config.write_rate_pairs_per_s * config.ops_scale
        return (
            ClientClass(
                name="readers",
                op="read",
                rate_qps=self.read_rate_qps,
                process=self.arrival,
                weight=3,
            ),
            ClientClass(
                name="writers",
                op="write",
                rate_qps=write_qps,
                process=self.arrival,
                weight=1,
            ),
        )

    # ------------------------------------------------------------------
    # Labels.
    # ------------------------------------------------------------------
    def cell_key(self) -> str:
        """Grid-cell identity (everything but the seed), serve-prefixed."""
        parts = ["serve", self._experiment_spec().cell_key()]
        parts.append(self.policy)
        parts.append(self.arrival)
        parts.append(f"r{self.read_rate_qps:g}")
        if self.write_rate_qps is not None:
            parts.append(f"w{self.write_rate_qps:g}")
        if self.queue_bound != 64:
            parts.append(f"q{self.queue_bound}")
        if not self.warm_cache:
            parts.append("cold")
        for klass in self.classes:
            parts.append(f"c:{klass.name}:{klass.op}:{klass.rate_qps:g}")
        if self.trace != "off":
            parts.append(f"trace:{self.trace}")
            thresholds = (
                self.trace_slo_s,
                self.trace_stall_spike_s,
                self.trace_dip_threshold,
            )
            if thresholds != (1.0, 0.25, 0.7):
                parts.append(
                    "flight:"
                    f"{self.trace_slo_s:g}"
                    f":{self.trace_stall_spike_s:g}"
                    f":{self.trace_dip_threshold:g}"
                )
        if self.controller != "off":
            parts.append(f"ctl:{self.controller}")
            if self.control_interval_s != DEFAULT_CONTROL_INTERVAL_S:
                parts.append(f"ci{self.control_interval_s}")
        return "/".join(parts)

    def label(self) -> str:
        return f"{self.cell_key()}/s{self.seed}"

    # ------------------------------------------------------------------
    # Serialization.
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        return {
            "kind": "serve",
            "engine": self.engine,
            "base": self.base,
            "scale": self.scale,
            "overrides": dict(self.overrides),
            "duration_s": self.duration_s,
            "seed": self.seed,
            "policy": self.policy,
            "arrival": self.arrival,
            "read_rate_qps": self.read_rate_qps,
            "write_rate_qps": self.write_rate_qps,
            "queue_bound": self.queue_bound,
            "admit_queue_fraction": self.admit_queue_fraction,
            "retry_after_s": self.retry_after_s,
            "max_retries": self.max_retries,
            "classes": [klass.to_dict() for klass in self.classes],
            "do_preload": self.do_preload,
            "warm_cache": self.warm_cache,
            "profile": self.profile,
            "sample_every": self.sample_every,
            "request_sample_every": self.request_sample_every,
            "trace": self.trace,
            "trace_dir": self.trace_dir,
            "trace_slo_s": self.trace_slo_s,
            "trace_stall_spike_s": self.trace_stall_spike_s,
            "trace_dip_threshold": self.trace_dip_threshold,
            "controller": self.controller,
            "control_interval_s": self.control_interval_s,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ServiceSpec":
        return cls(
            engine=payload["engine"],
            base=payload.get("base", "paper_scaled"),
            scale=payload.get("scale", 2048),
            overrides=tuple(payload.get("overrides", {}).items()),
            duration_s=payload.get("duration_s"),
            seed=payload.get("seed", 0),
            policy=payload.get("policy", "fifo"),
            arrival=payload.get("arrival", "poisson"),
            read_rate_qps=float(payload.get("read_rate_qps", 2000.0)),
            write_rate_qps=(
                None
                if payload.get("write_rate_qps") is None
                else float(payload["write_rate_qps"])
            ),
            queue_bound=int(payload.get("queue_bound", 64)),
            admit_queue_fraction=float(
                payload.get("admit_queue_fraction", 0.75)
            ),
            retry_after_s=float(payload.get("retry_after_s", 5.0)),
            max_retries=int(payload.get("max_retries", 3)),
            classes=tuple(
                ClientClass.from_dict(entry)
                for entry in payload.get("classes", [])
            ),
            do_preload=payload.get("do_preload", True),
            warm_cache=payload.get("warm_cache", True),
            profile=payload.get("profile", False),
            sample_every=payload.get("sample_every", DEFAULT_SAMPLE_EVERY),
            request_sample_every=payload.get(
                "request_sample_every", DEFAULT_REQUEST_SAMPLE_EVERY
            ),
            trace=payload.get("trace", "off"),
            trace_dir=payload.get("trace_dir"),
            trace_slo_s=float(payload.get("trace_slo_s", 1.0)),
            trace_stall_spike_s=float(
                payload.get("trace_stall_spike_s", 0.25)
            ),
            trace_dip_threshold=float(
                payload.get("trace_dip_threshold", 0.7)
            ),
            controller=payload.get("controller", "off"),
            control_interval_s=int(
                payload.get("control_interval_s", DEFAULT_CONTROL_INTERVAL_S)
            ),
        )


def expand_serve_grid(
    engines: list[str],
    rates: list[float],
    policies: list[str],
    seeds: list[int],
    arrival: str = "poisson",
    scale: int = 2048,
    duration_s: int | None = None,
    queue_bound: int = 64,
    **common: object,
) -> list[ServiceSpec]:
    """The engine × rate × policy × seed grid behind ``repro serve``."""
    specs: list[ServiceSpec] = []
    for engine in engines:
        for rate in rates:
            for policy in policies:
                for seed in seeds:
                    specs.append(
                        ServiceSpec(
                            engine=engine,
                            scale=scale,
                            duration_s=duration_s,
                            seed=seed,
                            policy=policy,
                            arrival=arrival,
                            read_rate_qps=rate,
                            queue_bound=queue_bound,
                            **common,
                        )
                    )
    return specs
