"""Bounded request queues with pluggable scheduling policies.

Every scheduler holds admitted-but-not-yet-dispatched requests under one
total depth bound — the queue is the only buffer between the arrival
process and the engine, so the bound is what turns overload into
backpressure instead of unbounded queueing delay.

Three policies:

* ``fifo`` — one queue, strict arrival order;
* ``read-priority`` — reads and scans always dispatch before writes
  (writes still FIFO among themselves), the classic answer to writes
  stalling the read path;
* ``weighted-fair`` — deficit-free weighted round-robin across client
  classes: a class with weight 3 gets three dispatch slots per cycle to
  a weight-1 class's one, with empty classes skipped.

All three are deterministic: same offer/pop sequence, same decisions.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable

from repro.config import ConfigError
from repro.serve.arrivals import ClientClass, Request

#: Registry order is the CLI/help display order.
SCHEDULER_NAMES = ("fifo", "read-priority", "weighted-fair")


class Scheduler:
    """Interface: a bounded buffer of admitted requests."""

    def __init__(self, bound: int) -> None:
        if bound < 1:
            raise ConfigError(f"queue bound must be >= 1, got {bound}")
        self.bound = bound

    def offer(self, request: Request) -> bool:
        """Enqueue; False means the queue is at its bound (caller sheds)."""
        raise NotImplementedError

    def pop(self) -> Request | None:
        """Next request to dispatch, or None when empty."""
        raise NotImplementedError

    def drain(self, predicate: Callable[[Request], bool]) -> list[Request]:
        """Remove and return every queued request matching ``predicate``.

        Relative order among both the drained and the surviving requests
        is preserved — this is the fencing primitive a shard split uses
        to hand a key range's queued requests to the receiving shard.
        """
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


def _split_queue(
    queue: deque[Request], predicate: Callable[[Request], bool]
) -> list[Request]:
    """Drain one deque in place; returns the matching requests in order."""
    drained: list[Request] = []
    kept: list[Request] = []
    for request in queue:
        (drained if predicate(request) else kept).append(request)
    if drained:
        queue.clear()
        queue.extend(kept)
    return drained


class FIFOScheduler(Scheduler):
    """Strict arrival order, one shared queue."""

    def __init__(self, bound: int) -> None:
        super().__init__(bound)
        self._queue: deque[Request] = deque()

    def offer(self, request: Request) -> bool:
        if len(self._queue) >= self.bound:
            return False
        self._queue.append(request)
        return True

    def pop(self) -> Request | None:
        return self._queue.popleft() if self._queue else None

    def drain(self, predicate: Callable[[Request], bool]) -> list[Request]:
        return _split_queue(self._queue, predicate)

    def __len__(self) -> int:
        return len(self._queue)


class ReadPriorityScheduler(Scheduler):
    """Reads and scans preempt writes; each side is FIFO internally."""

    def __init__(self, bound: int) -> None:
        super().__init__(bound)
        self._reads: deque[Request] = deque()
        self._writes: deque[Request] = deque()

    def offer(self, request: Request) -> bool:
        if len(self) >= self.bound:
            return False
        (self._writes if request.op == "write" else self._reads).append(request)
        return True

    def pop(self) -> Request | None:
        if self._reads:
            return self._reads.popleft()
        if self._writes:
            return self._writes.popleft()
        return None

    def drain(self, predicate: Callable[[Request], bool]) -> list[Request]:
        # Reads first to mirror pop's dispatch preference.
        drained = _split_queue(self._reads, predicate)
        drained.extend(_split_queue(self._writes, predicate))
        return drained

    def __len__(self) -> int:
        return len(self._reads) + len(self._writes)


class WeightedFairScheduler(Scheduler):
    """Weighted round-robin across client classes.

    The service cycle is precomputed from the class weights (class names
    repeated ``weight`` times, in declaration order); ``pop`` walks the
    cycle from where it last stopped, skipping classes with nothing
    queued, so backlogged classes split dispatch slots in weight
    proportion while an idle class costs nothing.
    """

    def __init__(self, bound: int, classes: tuple[ClientClass, ...]) -> None:
        super().__init__(bound)
        if not classes:
            raise ConfigError("weighted-fair needs at least one client class")
        self._queues: dict[str, deque[Request]] = {
            klass.name: deque() for klass in classes
        }
        self._cycle: list[str] = []
        for klass in classes:
            self._cycle.extend([klass.name] * klass.weight)
        self._cursor = 0
        self._depth = 0

    def offer(self, request: Request) -> bool:
        if self._depth >= self.bound:
            return False
        queue = self._queues.get(request.klass)
        if queue is None:
            raise ConfigError(
                f"request from unregistered class {request.klass!r}"
            )
        queue.append(request)
        self._depth += 1
        return True

    def pop(self) -> Request | None:
        if self._depth == 0:
            return None
        for step in range(len(self._cycle)):
            slot = (self._cursor + step) % len(self._cycle)
            queue = self._queues[self._cycle[slot]]
            if queue:
                self._cursor = (slot + 1) % len(self._cycle)
                self._depth -= 1
                return queue.popleft()
        return None  # Unreachable while _depth is kept consistent.

    def drain(self, predicate: Callable[[Request], bool]) -> list[Request]:
        drained: list[Request] = []
        for queue in self._queues.values():
            drained.extend(_split_queue(queue, predicate))
        self._depth -= len(drained)
        return drained

    def __len__(self) -> int:
        return self._depth


def make_scheduler(
    policy: str, bound: int, classes: tuple[ClientClass, ...]
) -> Scheduler:
    """Build the named policy (see :data:`SCHEDULER_NAMES`)."""
    if policy == "fifo":
        return FIFOScheduler(bound)
    if policy == "read-priority":
        return ReadPriorityScheduler(bound)
    if policy == "weighted-fair":
        return WeightedFairScheduler(bound, classes)
    raise ConfigError(
        f"unknown scheduling policy {policy!r}; "
        f"expected one of {SCHEDULER_NAMES}"
    )
