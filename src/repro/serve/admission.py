"""Admission control: backpressure for the write path.

Under open-loop load the engine cannot slow its clients down, so the
service layer must: when the shared queue fills or the engine reports
write stalls, incoming writes are *deferred* — handed back with a
retry-after and re-offered later — and writes that keep being deferred
past ``max_retries`` are *shed* (rejected outright).  Reads are never
deferred; protecting read tail latency is the point of pushing back on
writes, mirroring RocksDB-style write throttling.

Every decision is observable: the service layer emits
:class:`~repro.obs.events.WriteDeferred` / ``RequestShed`` events on the
engine bus and keeps per-class counters, so tests can assert that every
lost request is attributed.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.config import ConfigError
from repro.serve.arrivals import Request

#: Admission decisions, in increasing order of severity.
ADMIT = "admit"
DEFER = "defer"
SHED = "shed"


@dataclass(frozen=True)
class AdmissionPolicy:
    """Thresholds for the write-path backpressure decisions."""

    #: The scheduler's total depth bound (sheds happen at this wall).
    queue_bound: int = 64
    #: Writes are deferred once depth reaches this fraction of the bound.
    admit_queue_fraction: float = 0.75
    #: Virtual seconds a deferred write waits before re-offering.
    retry_after_s: float = 5.0
    #: Deferrals allowed before a write is shed.
    max_retries: int = 3
    #: Window (virtual seconds) over which recent stall time is summed.
    stall_window_s: int = 30
    #: Recent stall seconds above which writes are deferred.
    stall_budget_s: float = 0.25

    def __post_init__(self) -> None:
        if self.queue_bound < 1:
            raise ConfigError("queue_bound must be >= 1")
        if not 0.0 < self.admit_queue_fraction <= 1.0:
            raise ConfigError("admit_queue_fraction must be in (0, 1]")
        if self.retry_after_s <= 0:
            raise ConfigError("retry_after_s must be > 0")
        if self.max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if self.stall_window_s < 1:
            raise ConfigError("stall_window_s must be >= 1")
        if self.stall_budget_s < 0:
            raise ConfigError("stall_budget_s must be >= 0")


class AdmissionController:
    """Applies one :class:`AdmissionPolicy` to incoming requests."""

    def __init__(self, policy: AdmissionPolicy) -> None:
        self.policy = policy
        self._defer_depth = max(
            1, int(policy.queue_bound * policy.admit_queue_fraction)
        )

    @property
    def defer_depth(self) -> int:
        """Queue depth at which writes start deferring."""
        return self._defer_depth

    def retune(self, **changes: object) -> AdmissionPolicy:
        """Swap in a policy with ``changes`` applied; returns the new one.

        The runtime controller's admission actuator: thresholds move
        through the same validated frozen :class:`AdmissionPolicy` (an
        out-of-range change raises ``ConfigError`` and leaves the old
        policy in force), and the derived defer depth is recomputed.
        """
        policy = dataclasses.replace(self.policy, **changes)  # type: ignore[arg-type]
        self.policy = policy
        self._defer_depth = max(
            1, int(policy.queue_bound * policy.admit_queue_fraction)
        )
        return policy

    def decide(
        self, request: Request, queue_depth: int, recent_stall_s: float
    ) -> tuple[str, str]:
        """(action, reason) for one arriving or retried request.

        Reads and scans always admit — the scheduler's bound is their
        only limit.  Writes defer under queue pressure or write-stall
        pressure, escalating to shed after ``max_retries`` deferrals.
        The reason string matches the emitted event's ``reason`` field.
        """
        if request.op != "write":
            return ADMIT, ""
        policy = self.policy
        if queue_depth >= self._defer_depth:
            reason = "queue-pressure"
        elif recent_stall_s > policy.stall_budget_s:
            reason = "write-stall"
        else:
            return ADMIT, ""
        if request.retries >= policy.max_retries:
            return SHED, reason
        return DEFER, reason
