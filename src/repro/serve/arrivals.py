"""Open-loop arrival processes for the service layer.

The closed-loop drivers issue the next read when the previous one
finishes, so they can never observe queueing.  Here each *client class*
(a named population of readers, scanners or writers) generates a
timestamped request stream up front — a Poisson process or a two-state
Markov-modulated Poisson process (MMPP-2) for bursty traffic — and the
service simulator consumes the merged stream in arrival order.

Rates are specified in paper-comparable QPS: one simulated request
stands for ``ops_scale`` real requests, exactly as in the drivers, so a
``rate_qps`` of 8,000 at scale 2,048 yields ~3.9 simulated arrivals per
virtual second.

Determinism: every stream draws from ``random.Random`` seeded with a
*string* (``f"{seed}/arrivals/{name}"``).  String seeds hash through
SHA-512 inside CPython's ``random`` and are stable across processes and
``PYTHONHASHSEED`` values, which the serve grid's jobs=1 ≡ jobs=N
guarantee depends on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.config import ConfigError, SystemConfig
from repro.workload.ycsb import RangeHotWorkload

#: Supported per-class operation kinds.
OPS = ("read", "scan", "write")

#: Supported arrival processes.
PROCESSES = ("poisson", "bursty")

#: Guard against a spec whose rates would materialize an absurd arrival
#: list (open-loop streams are generated up front, one object each).
_MAX_TOTAL_ARRIVALS = 2_000_000


@dataclass(frozen=True)
class ClientClass:
    """One open-loop client population.

    ``rate_qps`` is the offered rate in real (paper-scale) operations
    per second.  ``process`` selects Poisson or bursty (MMPP-2)
    arrivals; the burst knobs only matter for the latter.  ``weight``
    is consumed by the weighted-fair scheduler.
    """

    name: str
    op: str
    rate_qps: float
    process: str = "poisson"
    #: Bursty: arrival-rate multiplier while in the burst state.
    burst_multiplier: float = 8.0
    #: Bursty: long-run fraction of *arrivals* that occur in bursts.
    burst_fraction: float = 0.1
    #: Bursty: mean sojourn of one burst, in virtual seconds.
    mean_burst_s: float = 20.0
    #: Relative share under the weighted-fair scheduler.
    weight: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("client class needs a name")
        if self.op not in OPS:
            raise ConfigError(f"unknown op {self.op!r}; expected one of {OPS}")
        if self.process not in PROCESSES:
            raise ConfigError(
                f"unknown arrival process {self.process!r}; "
                f"expected one of {PROCESSES}"
            )
        if self.rate_qps < 0:
            raise ConfigError(f"rate_qps must be >= 0, got {self.rate_qps}")
        if self.burst_multiplier < 1.0:
            raise ConfigError("burst_multiplier must be >= 1")
        if not 0.0 < self.burst_fraction < 1.0:
            raise ConfigError("burst_fraction must be in (0, 1)")
        if self.mean_burst_s <= 0:
            raise ConfigError("mean_burst_s must be > 0")
        if self.weight < 1:
            raise ConfigError("weight must be >= 1")

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "op": self.op,
            "rate_qps": self.rate_qps,
            "process": self.process,
            "burst_multiplier": self.burst_multiplier,
            "burst_fraction": self.burst_fraction,
            "mean_burst_s": self.mean_burst_s,
            "weight": self.weight,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ClientClass":
        return cls(
            name=payload["name"],
            op=payload["op"],
            rate_qps=float(payload["rate_qps"]),
            process=payload.get("process", "poisson"),
            burst_multiplier=float(payload.get("burst_multiplier", 8.0)),
            burst_fraction=float(payload.get("burst_fraction", 0.1)),
            mean_burst_s=float(payload.get("mean_burst_s", 20.0)),
            weight=int(payload.get("weight", 1)),
        )


@dataclass(slots=True)
class Request:
    """One in-flight request from arrival to completion (or shedding)."""

    seq: int
    klass: str
    op: str
    key: int
    #: Scan upper bound; unused for point ops.
    key_high: int = 0
    arrival_s: float = 0.0
    #: Times this write was deferred and re-admitted by backpressure.
    retries: int = 0


def _arrival_times(
    klass: ClientClass, sim_rate: float, duration_s: int, rng: random.Random
) -> list[float]:
    """Timestamps for one class over ``[0, duration_s)``."""
    times: list[float] = []
    if sim_rate <= 0.0:
        return times
    if klass.process == "poisson":
        t = rng.expovariate(sim_rate)
        while t < duration_s:
            times.append(t)
            t += rng.expovariate(sim_rate)
        return times
    # MMPP-2: base/burst states with exponential sojourns, chosen so the
    # long-run average arrival rate equals ``sim_rate`` while a fraction
    # ``burst_fraction`` of arrivals land in bursts running at
    # ``burst_multiplier`` times the base rate.
    # With ``frac`` of arrivals in bursts at ``mult`` times the base
    # rate, the burst state covers a time fraction ``tf`` with
    # tf/(1-tf) = (frac/mult)/(1-frac); the long-run average
    # rb*(1-tf) + mult*rb*tf equals ``sim_rate`` exactly when
    # rb = sim_rate * (1 - frac + frac/mult).
    frac = klass.burst_fraction
    mult = klass.burst_multiplier
    base_rate = sim_rate * (1.0 - frac + frac / mult)
    burst_rate = mult * base_rate
    mean_burst = klass.mean_burst_s
    # Sojourn means follow from rate × time balance:
    #   frac = (burst_rate * mean_burst) / (burst_rate * mean_burst
    #                                        + base_rate * mean_base)
    mean_base = mean_burst * burst_rate * (1.0 - frac) / (base_rate * frac)
    t = 0.0
    in_burst = False
    while t < duration_s:
        sojourn = rng.expovariate(
            1.0 / (mean_burst if in_burst else mean_base)
        )
        segment_end = min(t + sojourn, float(duration_s))
        rate = burst_rate if in_burst else base_rate
        arrival = t + rng.expovariate(rate)
        while arrival < segment_end:
            times.append(arrival)
            arrival += rng.expovariate(rate)
        t = segment_end
        in_burst = not in_burst
    return times


def generate_arrivals(
    classes: tuple[ClientClass, ...],
    config: SystemConfig,
    workload: RangeHotWorkload,
    duration_s: int,
    seed: int,
) -> list[Request]:
    """Materialize the merged, time-ordered request stream.

    Keys come from the shared workload generator, so serve runs read and
    write the same hot ranges the closed-loop figures use — the
    invalidation dips that differentiate LevelDB from LSbM happen under
    open-loop load too.
    """
    per_class: list[tuple[int, list[Request]]] = []
    total = 0
    for order, klass in enumerate(classes):
        sim_rate = klass.rate_qps / config.ops_scale
        times_rng = random.Random(f"{seed}/arrivals/{klass.name}")
        keys_rng = random.Random(f"{seed}/{klass.name}/keys")
        times = _arrival_times(klass, sim_rate, duration_s, times_rng)
        total += len(times)
        if total > _MAX_TOTAL_ARRIVALS:
            raise ConfigError(
                f"arrival stream exceeds {_MAX_TOTAL_ARRIVALS} requests; "
                "lower rate_qps or duration_s (rates are paper-scale QPS, "
                "divided by ops_scale for simulation)"
            )
        requests: list[Request] = []
        for t in times:
            key_high = 0
            if klass.op == "write":
                key = workload.next_write_key(keys_rng)
            elif klass.op == "scan":
                key, key_high = workload.next_scan_range(keys_rng)
            else:
                key = workload.next_read_key(keys_rng)
            requests.append(
                Request(
                    seq=0,
                    klass=klass.name,
                    op=klass.op,
                    key=key,
                    key_high=key_high,
                    arrival_s=t,
                )
            )
        per_class.append((order, requests))
    # Merge by (time, class declaration order, per-class index): the sort
    # key never compares floats against identical floats ambiguously, so
    # the merged order is deterministic.
    merged: list[tuple[float, int, int, Request]] = []
    for order, requests in per_class:
        for idx, req in enumerate(requests):
            merged.append((req.arrival_s, order, idx, req))
    merged.sort(key=lambda item: (item[0], item[1], item[2]))
    stream = [item[3] for item in merged]
    for seq, req in enumerate(stream):
        req.seq = seq
    return stream
