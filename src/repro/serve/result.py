"""SLO accounting for serve runs.

A serve run keeps everything a closed-loop :class:`~repro.sim.metrics.RunResult`
keeps (the per-second series, the latency reservoir, event counts,
per-cause bandwidth) *plus* the open-loop quantities that only exist
with timestamped arrivals: per-class queueing delay vs service time,
shed/deferred counters, queue depth and offered load over time, and a
sampled set of individual requests whose delay components reconcile
with their totals — the audit trail behind every percentile reported.

``ServeResult`` subclasses ``RunResult`` so the sweep runner, the bench
schema helpers and the summary tables all work on serve cells
unchanged; its ``to_dict`` tags payloads with ``"kind": "serve"`` and
the sweep loader dispatches on that tag.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.tracing import exemplar_summary
from repro.sim.metrics import LatencyReservoir, RunResult, TimeSeries

#: Percentiles exported per class in the JSON summary.
_SUMMARY_PERCENTILES = (50.0, 95.0, 99.0, 99.9)


@dataclass
class ClassStats:
    """One client class's SLO ledger over a serve run.

    ``latency_s`` observes total per-request latency (queueing delay +
    service time, in real seconds); ``queue_delay_s`` and ``service_s``
    observe the two components separately so the decomposition has its
    own percentiles.
    """

    #: The class's operation kind ("read" | "scan" | "write").
    op: str = "read"
    arrived: int = 0
    admitted: int = 0
    completed: int = 0
    shed: int = 0
    deferred: int = 0
    retried: int = 0
    queue_delay_s: LatencyReservoir = field(default_factory=LatencyReservoir)
    service_s: LatencyReservoir = field(default_factory=LatencyReservoir)
    latency_s: LatencyReservoir = field(default_factory=LatencyReservoir)

    def to_dict(self) -> dict[str, object]:
        return {
            "op": self.op,
            "arrived": self.arrived,
            "admitted": self.admitted,
            "completed": self.completed,
            "shed": self.shed,
            "deferred": self.deferred,
            "retried": self.retried,
            "queue_delay_s": self.queue_delay_s.to_dict(),
            "service_s": self.service_s.to_dict(),
            "latency_s": self.latency_s.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ClassStats":
        stats = cls(
            op=payload.get("op", "read"),
            arrived=int(payload["arrived"]),
            admitted=int(payload["admitted"]),
            completed=int(payload["completed"]),
            shed=int(payload["shed"]),
            deferred=int(payload["deferred"]),
            retried=int(payload["retried"]),
        )
        stats.queue_delay_s = LatencyReservoir.from_dict(payload["queue_delay_s"])
        stats.service_s = LatencyReservoir.from_dict(payload["service_s"])
        stats.latency_s = LatencyReservoir.from_dict(payload["latency_s"])
        return stats


@dataclass
class ServeResult(RunResult):
    """A :class:`RunResult` extended with open-loop serving metrics."""

    #: Scheduling policy and arrival process this run used.
    policy: str = "fifo"
    arrival: str = "poisson"
    #: Offered read-class load in paper-scale QPS (the sweep's x-axis).
    offered_read_qps: float = 0.0
    #: Real operations per simulated operation (from the run's config),
    #: so goodput converts to paper-scale QPS.
    ops_scale: float = 1.0
    #: Highest queue depth observed (assertable against the bound).
    max_queue_depth: int = 0
    #: Queue depth and offered (arrived this window) paper-scale QPS,
    #: sampled on the run's sampling grid.
    queue_depth: TimeSeries = field(
        default_factory=lambda: TimeSeries("queue_depth")
    )
    offered_qps: TimeSeries = field(
        default_factory=lambda: TimeSeries("offered_qps")
    )
    #: Per-class SLO ledgers, keyed by client-class name.
    class_stats: dict[str, ClassStats] = field(default_factory=dict)
    #: Every Nth completed request, with its latency decomposition:
    #: ``{seq, klass, op, arrival_s, queue_delay_s, service_s, total_s,
    #: retries}``.  ``queue_delay_s + service_s == total_s`` on every
    #: sample — the reconciliation the acceptance tests assert.
    request_samples: list[dict] = field(default_factory=list)
    #: Tracing mode the run used ("off" | "exemplar" | "full").
    trace_mode: str = "off"
    #: Kept exemplar span records (see :mod:`repro.obs.tracing`), in
    #: global request order; empty when tracing is off.
    exemplars: list[dict] = field(default_factory=list)
    #: Flight-recorder dumps fired during the run (trigger + ring
    #: window); empty when tracing is off.
    flight_dumps: list[dict] = field(default_factory=list)
    #: Runtime controller this run used ("off" when uncontrolled).
    controller: str = "off"
    #: Every runtime-control decision, in decision order: ``{t,
    #: controller, action, knob, old, new, reason}``.  Rides the
    #: lossless transport so jobs=N runs re-render identically.
    control_decisions: list[dict] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Aggregates.
    # ------------------------------------------------------------------
    def class_percentile_ms(self, klass: str, percentile: float) -> float:
        """Total-latency percentile for one class, in milliseconds."""
        stats = self.class_stats.get(klass)
        if stats is None:
            return 0.0
        return stats.latency_s.percentile(percentile) * 1000.0

    @property
    def total_shed(self) -> int:
        return sum(stats.shed for stats in self.class_stats.values())

    @property
    def total_deferred(self) -> int:
        return sum(stats.deferred for stats in self.class_stats.values())

    def goodput_qps(self) -> float:
        """Completed read-class operations per second, paper-scale."""
        if not self.duration_s:
            return 0.0
        completed = sum(
            stats.completed
            for stats in self.class_stats.values()
            if stats.op != "write"
        )
        return completed * self.ops_scale / self.duration_s

    def reconciliation_max_error_s(self) -> float:
        """Largest |queue + service − total| across the request samples."""
        if not self.request_samples:
            return 0.0
        return max(
            abs(s["queue_delay_s"] + s["service_s"] - s["total_s"])
            for s in self.request_samples
        )

    def worst_exemplars(self, n: int = 5) -> list[dict]:
        """Digests of the ``n`` slowest kept exemplars, worst first."""
        ranked = sorted(
            self.exemplars, key=lambda e: (-e["total_s"], e["seq"])
        )
        return [exemplar_summary(record) for record in ranked[:n]]

    # ------------------------------------------------------------------
    # Transport.
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        payload = super().to_dict()
        payload["kind"] = "serve"
        payload["policy"] = self.policy
        payload["arrival"] = self.arrival
        payload["offered_read_qps"] = self.offered_read_qps
        payload["ops_scale"] = self.ops_scale
        payload["max_queue_depth"] = self.max_queue_depth
        payload["queue_depth"] = self.queue_depth.to_dict()
        payload["offered_qps"] = self.offered_qps.to_dict()
        payload["class_stats"] = {
            name: stats.to_dict()
            for name, stats in sorted(self.class_stats.items())
        }
        payload["request_samples"] = [dict(s) for s in self.request_samples]
        payload["trace_mode"] = self.trace_mode
        payload["exemplars"] = [dict(e) for e in self.exemplars]
        payload["flight_dumps"] = [dict(d) for d in self.flight_dumps]
        payload["controller"] = self.controller
        payload["control_decisions"] = [
            dict(d) for d in self.control_decisions
        ]
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ServeResult":
        result = super().from_dict(payload)
        result.policy = payload.get("policy", "fifo")
        result.arrival = payload.get("arrival", "poisson")
        result.offered_read_qps = float(payload.get("offered_read_qps", 0.0))
        result.ops_scale = float(payload.get("ops_scale", 1.0))
        result.max_queue_depth = int(payload.get("max_queue_depth", 0))
        if "queue_depth" in payload:
            result.queue_depth = TimeSeries.from_dict(payload["queue_depth"])
        if "offered_qps" in payload:
            result.offered_qps = TimeSeries.from_dict(payload["offered_qps"])
        result.class_stats = {
            name: ClassStats.from_dict(stats)
            for name, stats in payload.get("class_stats", {}).items()
        }
        result.request_samples = [
            dict(s) for s in payload.get("request_samples", [])
        ]
        result.trace_mode = payload.get("trace_mode", "off")
        result.exemplars = [dict(e) for e in payload.get("exemplars", [])]
        result.flight_dumps = [
            dict(d) for d in payload.get("flight_dumps", [])
        ]
        result.controller = payload.get("controller", "off")
        result.control_decisions = [
            dict(d) for d in payload.get("control_decisions", [])
        ]
        return result

    def to_json_dict(self) -> dict[str, object]:
        summary = super().to_json_dict()
        summary["kind"] = "serve"
        summary["policy"] = self.policy
        summary["arrival"] = self.arrival
        summary["offered_read_qps"] = self.offered_read_qps
        summary["goodput_qps"] = self.goodput_qps()
        summary["max_queue_depth"] = self.max_queue_depth
        summary["shed"] = self.total_shed
        summary["deferred"] = self.total_deferred
        summary["reconciliation_max_error_s"] = self.reconciliation_max_error_s()
        classes: dict[str, object] = {}
        for name, stats in sorted(self.class_stats.items()):
            entry: dict[str, object] = {
                "op": stats.op,
                "arrived": stats.arrived,
                "admitted": stats.admitted,
                "completed": stats.completed,
                "shed": stats.shed,
                "deferred": stats.deferred,
                "retried": stats.retried,
                "queue_delay_p99_ms": stats.queue_delay_s.percentile(99) * 1000,
                "service_p99_ms": stats.service_s.percentile(99) * 1000,
            }
            for percentile in _SUMMARY_PERCENTILES:
                key = f"latency_p{percentile:g}_ms".replace(".", "_")
                entry[key] = stats.latency_s.percentile(percentile) * 1000
            classes[name] = entry
        summary["classes"] = classes
        if self.controller != "off":
            knobs = sorted({d["knob"] for d in self.control_decisions})
            summary["control"] = {
                "controller": self.controller,
                "decisions": len(self.control_decisions),
                "knobs": knobs,
                "last_decisions": [
                    dict(d) for d in self.control_decisions[-5:]
                ],
            }
        if self.trace_mode != "off":
            summary["trace"] = {
                "mode": self.trace_mode,
                "exemplars": len(self.exemplars),
                "flight_dumps": len(self.flight_dumps),
                "flight_triggers": sorted(
                    {dump["trigger"] for dump in self.flight_dumps}
                ),
                "worst_exemplars": self.worst_exemplars(5),
            }
        return summary
