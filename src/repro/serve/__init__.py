"""repro.serve — the open-loop service layer over the engines.

Every driver in :mod:`repro.sim` is closed-loop: the next operation is
issued only when the previous one completes, so the measured numbers are
throughput and hit ratio, never tail latency.  Production stores face the
opposite regime — requests arrive whether or not the system keeps up —
and the phenomena the ROADMAP north star cares about (queueing delay,
p99 under load, write stalls surfacing as latency spikes, backpressure)
only exist under open-loop load.

The layer has four pieces, wired end-to-end by
:func:`~repro.serve.service.execute_serve`:

* :mod:`repro.serve.arrivals` — seeded Poisson / bursty (two-state MMPP)
  arrival processes per client class, keyed by the existing workload
  generators;
* :mod:`repro.serve.scheduler` — bounded request queues with pluggable
  policies (FIFO, read-priority, weighted-fair across classes);
* :mod:`repro.serve.admission` — backpressure: writes are deferred with a
  retry-after (and eventually shed) when queue depth or the engine's
  write-stall signal crosses thresholds;
* :mod:`repro.serve.service` — the per-tick simulator that dispatches
  queued requests against an engine under the thread-budget cost model
  and accounts every request's queueing delay and service time.

:class:`~repro.serve.spec.ServiceSpec` is the declarative, picklable
description of one serve run; it plugs straight into
:func:`repro.sim.sweep.run_sweep`, so offered-load grids inherit the
sweep runner's parallelism, determinism guarantee and bench payloads.
"""

from repro.serve.admission import AdmissionController, AdmissionPolicy
from repro.serve.arrivals import ClientClass, Request, generate_arrivals
from repro.serve.result import ClassStats, ServeResult
from repro.serve.scheduler import SCHEDULER_NAMES, make_scheduler
from repro.serve.service import ServiceSimulator, execute_serve
from repro.serve.spec import ServiceSpec, expand_serve_grid

__all__ = [
    "SCHEDULER_NAMES",
    "AdmissionController",
    "AdmissionPolicy",
    "ClassStats",
    "ClientClass",
    "Request",
    "ServeResult",
    "ServiceSimulator",
    "ServiceSpec",
    "execute_serve",
    "expand_serve_grid",
    "generate_arrivals",
    "make_scheduler",
]
