"""The open-loop service simulator.

:class:`ServiceSimulator` runs the serve tick loop: ingest this second's
arrivals (and due write retries) through admission control into the
bounded scheduler, let the engine do its compaction housekeeping, then
dispatch queued requests against the engine under the same
``read_threads`` thread-second budget — and the same
:class:`~repro.sim.kernel.ReadPricer` arithmetic — as the closed-loop
driver.  The one semantic difference is what latency means: here a
request's latency is *queueing delay* (arrival to dispatch) plus
*service time* (the priced engine work), which is exactly the quantity
that hockey-sticks as offered load approaches capacity.

Per-request accounting feeds :class:`~repro.serve.result.ServeResult`:
per-class reservoirs for total latency and both components, shed and
deferral counters that reconcile with the ``RequestShed`` /
``WriteDeferred`` events on the bus, and a sampled set of raw requests
whose ``queue_delay_s + service_s == total_s`` by construction.

The loop is *steppable*: :meth:`ServiceSimulator.begin` /
:meth:`~ServiceSimulator.step` / :meth:`~ServiceSimulator.finish`
expose one-tick granularity so the cluster tier can interleave several
shard simulators on one virtual timeline (and migrate key ranges
between them mid-run); :meth:`~ServiceSimulator.run` is the
begin/step×N/finish composition every single-engine path uses.

:func:`execute_serve` is the spec-to-result entry point the sweep
workers call, mirroring :func:`repro.sim.experiment.execute`.  It is
itself a composition of :func:`prepare_serve` (build the stack, filter
preload/arrivals for shard ownership) and :func:`finalize_serve`
(stamp spec metadata on the result) so a cluster shard can run the
*identical* pipeline with ownership filters injected — an all-pass
filter reproduces the single-engine run bit for bit, which is what the
1-shard differential test pins.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Callable, Protocol

from repro.cache.stats import CacheStats
from repro.config import SystemConfig
from repro.errors import EngineError
from repro.obs.events import EventTally, RequestShed, WriteDeferred
from repro.obs.prof import NULL_PROFILER, SpanProfiler
from repro.obs.tracing import (
    FlightPolicy,
    FlightRecorder,
    RequestTracer,
    safe_label,
    write_exemplars_jsonl,
)
from repro.control import Controller, make_controller
from repro.serve.admission import ADMIT, DEFER, AdmissionController, AdmissionPolicy
from repro.serve.arrivals import Request, generate_arrivals
from repro.serve.result import ClassStats, ServeResult
from repro.serve.scheduler import Scheduler, make_scheduler
from repro.serve.spec import ServiceSpec
from repro.sim.kernel import ReadPricer
from repro.sstable.entry import Entry
from repro.storage.iomodel import IOCostModel
from repro.workload.ycsb import RangeHotWorkload

#: Hard cap on dispatches per tick (mirrors the driver's read cap).
_MAX_DISPATCH_PER_TICK = 50_000

#: Cap on retained per-request decomposition samples.
_MAX_REQUEST_SAMPLES = 2_000


class DispatchObserver(Protocol):
    """Callbacks fired as the simulator dispatches requests.

    The cluster tier's oracle verification hangs off these: every write
    reports the sequence number the engine assigned, every point read
    reports the engine's answer, so an external model (the
    :class:`~repro.check.oracle.KVOracle`) can shadow the run without
    touching the dispatch arithmetic.
    """

    def on_write(self, request: Request, seq: int) -> None: ...

    def on_read(self, request: Request, got) -> None: ...


class ServiceSimulator:
    """Drives one engine under a pre-generated open-loop arrival stream."""

    def __init__(
        self,
        engine,
        config: SystemConfig,
        clock,
        arrivals: list[Request],
        scheduler: Scheduler,
        admission: AdmissionController,
        profiler: SpanProfiler | None = None,
        request_sample_every: int = 17,
        observer: DispatchObserver | None = None,
        tracer: RequestTracer | None = None,
        flight: FlightRecorder | None = None,
        controller: Controller | None = None,
    ) -> None:
        self.engine = engine
        self.config = config
        self.clock = clock
        self.arrivals = arrivals
        self.scheduler = scheduler
        self.admission = admission
        self.cost_model = IOCostModel(config)
        self.pricer = ReadPricer(config, self.cost_model)
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        self.request_sample_every = max(1, request_sample_every)
        self.observer = observer
        # Tracing off means both stay None: the dispatch loop's only
        # added cost is a None check, and nothing subscribes to the bus
        # (which would break its counting-only amortization).
        self.tracer = tracer
        if tracer is not None:
            tracer.bind_pricer(self.pricer)
        self.flight = flight
        # Control off means ``controller`` stays None — like tracing,
        # the step loop's only added cost is a None check, keeping the
        # uncontrolled path bit-identical to pre-controller builds.
        self.controller = controller
        self.metric_cache = engine.metric_cache
        self.event_tally = EventTally(engine.bus)
        #: Deferred writes waiting to re-offer: (retry_at_s, seq, request).
        self._retry_heap: list[tuple[float, int, Request]] = []
        #: (tick, stall seconds accrued that tick) for the admission window.
        self._stall_window: deque[tuple[int, float]] = deque()
        self._read_debt = 0.0
        self._arrival_cursor = 0
        self._completed_count = 0
        self._last_cache_stats: CacheStats | None = None
        self._last_hit_sample_tick: int | None = None
        self.hit_ratio_window_s = 20
        # Per-run loop state, created by begin().
        self._result: ServeResult | None = None
        self._sample_every = 1
        self._start_tick = 0
        self._events_before: dict[str, int] = {}
        self._stall_baseline = 0.0
        self._stall_last = 0.0
        self._bw_baseline: dict[str, dict[str, float]] = {}
        self._arrived_window = 0
        self._last_sample_tick = 0
        # Bound last: the controller snapshots loop-state baselines.
        if controller is not None:
            controller.bind(self)

    # ------------------------------------------------------------------
    # The run loop: begin / step×duration / finish.
    # ------------------------------------------------------------------
    def begin(self, duration_s: int, sample_every: int = 1) -> ServeResult:
        """Open a run: allocate the result, snapshot the baselines."""
        result = ServeResult(engine=self.engine.name, duration_s=duration_s)
        for klass_name, op in self._class_ops():
            result.class_stats[klass_name] = ClassStats(op=op)
        self._events_before = dict(self.event_tally.counts)
        self._stall_baseline = self.engine.stats.stall_seconds
        self._stall_last = self._stall_baseline
        self._bw_baseline = self._snapshot_cause_totals()
        self._arrived_window = 0
        self._last_sample_tick = 0
        # Arrival timestamps are relative to the run's first tick; the
        # engine keeps its own absolute clock (it may have ticked before).
        self._start_tick = self.clock.now
        self._sample_every = sample_every
        self._result = result
        return result

    def step(self) -> None:
        """Advance the run by one virtual second."""
        result = self._result
        if result is None:
            raise EngineError("step() before begin()")
        now = self.clock.now - self._start_tick
        self._arrived_window += self._ingest(now, result)
        self.engine.tick(self.clock.now)
        utilization = self.engine.disk.utilization()
        reads = self._dispatch(now, utilization, result)
        stall_total = self.engine.stats.stall_seconds
        stall_tick = stall_total - self._stall_last
        self._stall_last = stall_total
        self._stall_window.append((now, stall_tick))
        if self.flight is not None:
            self.flight.observe_stall(now, stall_tick)
        cutoff = now - self.admission.policy.stall_window_s
        while self._stall_window and self._stall_window[0][0] <= cutoff:
            self._stall_window.popleft()
        controller = self.controller
        if (
            controller is not None
            and now
            and now % controller.interval_s == 0
        ):
            decisions = controller.tick(now)
            if decisions:
                result.control_decisions.extend(decisions)
        if now % self._sample_every == 0:
            dt = max(1, now - self._last_sample_tick) if now else 1
            self._sample(
                now, reads, utilization, stall_tick,
                self._arrived_window / dt, result,
            )
            self._arrived_window = 0
            self._last_sample_tick = now
        self.clock.advance(1)

    def finish(self) -> ServeResult:
        """Close the run: event/bandwidth/stall windows onto the result."""
        result = self._result
        if result is None:
            raise EngineError("finish() before begin()")
        result.event_counts = {
            name: count - self._events_before.get(name, 0)
            for name, count in self.event_tally.counts.items()
            if count - self._events_before.get(name, 0)
        }
        result.bandwidth_kb_by_cause = self._cause_window(self._bw_baseline)
        result.stall_seconds = (
            self.engine.stats.stall_seconds - self._stall_baseline
        )
        if self.tracer is not None:
            result.trace_mode = self.tracer.mode
            result.exemplars = self.tracer.exemplars()
        if self.flight is not None:
            result.flight_dumps = [dict(d) for d in self.flight.dumps]
        self._result = None
        return result

    def run(self, duration_s: int, sample_every: int = 1) -> ServeResult:
        self.begin(duration_s, sample_every)
        for _ in range(duration_s):
            self.step()
        return self.finish()

    @property
    def current_result(self) -> ServeResult | None:
        """The in-flight result between begin() and finish() (live views)."""
        return self._result

    def _class_ops(self) -> list[tuple[str, str]]:
        seen: dict[str, str] = {}
        for request in self.arrivals:
            if request.klass not in seen:
                seen[request.klass] = request.op
        return list(seen.items())

    # ------------------------------------------------------------------
    # Migration fencing (used by the cluster tier's shard split).
    # ------------------------------------------------------------------
    def extract_pending(
        self, predicate: Callable[[int], bool]
    ) -> tuple[list[Request], list[tuple[float, int, Request]]]:
        """Remove every pending request whose key matches ``predicate``.

        Returns ``(queued, retries)``: the scheduler-queued requests in
        dispatch order and the deferred-write retry entries (heap items,
        untouched so their retry times survive the move).  After this
        call the shard will never dispatch a request for the drained
        keys — the fence a split needs before handing the range over.
        """
        queued = self.scheduler.drain(
            lambda request: predicate(request.key)
        )
        retries = [
            item for item in self._retry_heap if predicate(item[2].key)
        ]
        if retries:
            self._retry_heap = [
                item for item in self._retry_heap if not predicate(item[2].key)
            ]
            heapq.heapify(self._retry_heap)
        return queued, retries

    def adopt_pending(
        self,
        queued: list[Request],
        retries: list[tuple[float, int, Request]],
    ) -> int:
        """Take over requests fenced out of another shard.

        Queued requests re-offer into this shard's scheduler in their
        original dispatch order (overflow sheds, attributed on the bus);
        deferred writes keep their retry clocks.  Returns how many
        queued requests were admitted.
        """
        result = self._result
        if result is None:
            raise EngineError("adopt_pending() before begin()")
        adopted = 0
        for request in queued:
            stats = result.class_stats.setdefault(
                request.klass, ClassStats(op=request.op)
            )
            if self.scheduler.offer(request):
                adopted += 1
                depth = len(self.scheduler)
                if depth > result.max_queue_depth:
                    result.max_queue_depth = depth
                continue
            stats.shed += 1
            self.engine.bus.emit(
                RequestShed(
                    klass=request.klass,
                    op=request.op,
                    reason="migration-overflow",
                    retries=request.retries,
                )
            )
        for item in retries:
            heapq.heappush(self._retry_heap, item)
        return adopted

    # ------------------------------------------------------------------
    # Ingestion: arrivals + due retries through admission control.
    # ------------------------------------------------------------------
    def _recent_stall_s(self) -> float:
        return sum(stall for _, stall in self._stall_window)

    def _ingest(self, now: int, result: ServeResult) -> int:
        """Offer this second's arrivals and due retries; returns arrivals."""
        new_arrivals = 0
        horizon = now + 1.0
        while True:
            retry_due = (
                self._retry_heap and self._retry_heap[0][0] < horizon
            )
            arrival_due = (
                self._arrival_cursor < len(self.arrivals)
                and self.arrivals[self._arrival_cursor].arrival_s < horizon
            )
            if retry_due and arrival_due:
                # Interleave strictly by time so admission sees queue
                # depth in event order.
                retry_due = (
                    self._retry_heap[0][0]
                    <= self.arrivals[self._arrival_cursor].arrival_s
                )
                arrival_due = not retry_due
            if retry_due:
                _, _, request = heapq.heappop(self._retry_heap)
                self._offer(request, result, is_retry=True)
            elif arrival_due:
                request = self.arrivals[self._arrival_cursor]
                self._arrival_cursor += 1
                new_arrivals += 1
                self._offer(request, result, is_retry=False)
            else:
                break
        return new_arrivals

    def _offer(
        self, request: Request, result: ServeResult, is_retry: bool
    ) -> None:
        stats = result.class_stats.setdefault(
            request.klass, ClassStats(op=request.op)
        )
        if is_retry:
            stats.retried += 1
        else:
            stats.arrived += 1
        action, reason = self.admission.decide(
            request, len(self.scheduler), self._recent_stall_s()
        )
        if action == DEFER:
            request.retries += 1
            retry_at = request.arrival_s + (
                self.admission.policy.retry_after_s * request.retries
            )
            stats.deferred += 1
            heapq.heappush(self._retry_heap, (retry_at, request.seq, request))
            self.engine.bus.emit(
                WriteDeferred(
                    klass=request.klass,
                    retry_at_s=retry_at,
                    reason=reason,
                    retries=request.retries,
                )
            )
            return
        if action == ADMIT:
            if self.scheduler.offer(request):
                stats.admitted += 1
                depth = len(self.scheduler)
                if depth > result.max_queue_depth:
                    result.max_queue_depth = depth
                return
            reason = "queue-full"
        stats.shed += 1
        self.engine.bus.emit(
            RequestShed(
                klass=request.klass,
                op=request.op,
                reason=reason,
                retries=request.retries,
            )
        )

    # ------------------------------------------------------------------
    # Dispatch: queued requests against the engine, thread-budgeted.
    # ------------------------------------------------------------------
    def _dispatch(
        self, now: int, utilization: float, result: ServeResult
    ) -> int:
        config = self.config
        threads = float(config.read_threads)
        budget = threads - self._read_debt
        reads = 0
        dispatched = 0
        while budget > 0.0 and dispatched < _MAX_DISPATCH_PER_TICK:
            request = self.scheduler.pop()
            if request is None:
                break
            dispatched += 1
            # Intra-tick start offset: requests dispatched later in the
            # second start later, in proportion to thread-time already
            # spent this tick.
            spent = threads - self._read_debt - budget
            start_s = now + min(1.0, max(0.0, spent / threads))
            if request.op == "write":
                stall_before = self.engine.stats.stall_seconds
                seq = self.engine.put(request.key)
                if self.observer is not None:
                    self.observer.on_write(request, seq)
                stall_s = self.engine.stats.stall_seconds - stall_before
                # One simulated write stands for ops_scale real writes'
                # worth of ingestion; a stall blocks the write path once.
                budget -= config.cache_hit_s * config.ops_scale + stall_s
                service_s = config.cache_hit_s + stall_s
                result.writes_applied += 1
            else:
                if request.op == "scan":
                    scan = self.engine.scan(request.key, request.key_high)
                    cost, pairs = scan.cost, len(scan.entries)
                else:
                    got = self.engine.get(request.key)
                    if self.observer is not None:
                        self.observer.on_read(request, got)
                    cost, pairs = got.cost, 0
                is_scan = request.op == "scan"
                # The unscaled service seconds *are* the recorded
                # service time; scaling by ops_scale afterwards yields
                # the same budget debit the closed-loop pricer charges,
                # and keeps service_s bitwise equal to the left-to-right
                # sum of the pricer's stage terms (the tracing layer's
                # exact-reconciliation contract).
                seconds = self.pricer.service_seconds(
                    cost, pairs, utilization, is_scan
                )
                self.profiler.record_read(cost, utilization, pairs, is_scan)
                budget -= seconds * config.ops_scale
                service_s = seconds
                result.reads_completed += 1
                reads += 1
            queue_delay_s = max(0.0, start_s - request.arrival_s)
            total_s = queue_delay_s + service_s
            tracer = self.tracer
            if tracer is not None:
                if request.op == "write":
                    tracer.offer_write(
                        request, queue_delay_s, service_s, total_s, stall_s
                    )
                else:
                    tracer.offer_read(
                        request,
                        queue_delay_s,
                        service_s,
                        total_s,
                        cost,
                        pairs,
                        utilization,
                        is_scan,
                    )
                if self.flight is not None:
                    self.flight.observe_latency(
                        now, total_s, request.seq, request.klass
                    )
            self._complete(request, queue_delay_s, service_s, total_s, result)
        self._read_debt = -budget if budget < 0.0 else 0.0
        return reads

    def _complete(
        self,
        request: Request,
        queue_delay_s: float,
        service_s: float,
        total_s: float,
        result: ServeResult,
    ) -> None:
        stats = result.class_stats[request.klass]
        stats.completed += 1
        stats.queue_delay_s.append(queue_delay_s)
        stats.service_s.append(service_s)
        stats.latency_s.append(total_s)
        if request.op != "write":
            result.read_latencies_s.append(total_s)
        self._completed_count += 1
        if (
            self._completed_count % self.request_sample_every == 0
            and len(result.request_samples) < _MAX_REQUEST_SAMPLES
        ):
            result.request_samples.append(
                {
                    "seq": request.seq,
                    "klass": request.klass,
                    "op": request.op,
                    "arrival_s": request.arrival_s,
                    "queue_delay_s": queue_delay_s,
                    "service_s": service_s,
                    "total_s": total_s,
                    "retries": request.retries,
                }
            )

    # ------------------------------------------------------------------
    # Sampling (same series the closed-loop driver keeps, plus serve's).
    # ------------------------------------------------------------------
    def _sample(
        self,
        now: int,
        reads: int,
        utilization: float,
        stall_tick: float,
        arrived_per_s: float,
        result: ServeResult,
    ) -> None:
        config = self.config
        result.throughput_qps.add(now, reads * config.ops_scale)
        result.queue_depth.add(now, float(len(self.scheduler)))
        result.offered_qps.add(now, arrived_per_s * config.ops_scale)
        result.stall.add(now, stall_tick)
        if self.metric_cache is not None:
            stats = self.metric_cache.stats
            due = (
                self._last_hit_sample_tick is None
                or now - self._last_hit_sample_tick >= self.hit_ratio_window_s
            )
            if due:
                if self._last_cache_stats is None:
                    ratio = stats.hit_ratio
                else:
                    ratio = stats.interval_hit_ratio(self._last_cache_stats)
                self._last_cache_stats = stats.snapshot()
                self._last_hit_sample_tick = now
                result.hit_ratio.add(now, ratio)
                if self.flight is not None:
                    self.flight.observe_hit_ratio(now, ratio)
            result.cache_usage.add(now, self.metric_cache.usage)
        disk = self.engine.disk
        size_kb = disk.live_kb + disk.tick_temp_space_kb()
        result.db_size_mb.add(now, size_kb * config.ops_scale / 1024.0)
        result.disk_utilization.add(now, utilization)
        buffer_kb = self.engine.compaction_buffer_kb
        if buffer_kb is not None:
            result.buffer_size_mb.add(
                now, buffer_kb * config.ops_scale / 1024.0
            )

    def _snapshot_cause_totals(self) -> dict[str, dict[str, float]]:
        return {
            cause: dict(kinds)
            for cause, kinds in self.engine.disk.cause_totals().items()
        }

    def _cause_window(
        self, baseline: dict[str, dict[str, float]]
    ) -> dict[str, dict[str, float]]:
        window: dict[str, dict[str, float]] = {}
        for cause, kinds in self._snapshot_cause_totals().items():
            before = baseline.get(cause, {"read_kb": 0.0, "write_kb": 0.0})
            window[cause] = {
                "read_kb": kinds["read_kb"] - before["read_kb"],
                "write_kb": kinds["write_kb"] - before["write_kb"],
            }
        return window


@dataclass
class ServeSession:
    """A fully wired serve run, prepared but not yet driven."""

    spec: ServiceSpec
    setup: object  # repro.sim.experiment.ExperimentSetup
    simulator: ServiceSimulator
    duration_s: int


def prepare_serve(
    spec: ServiceSpec,
    owned: Callable[[int], bool] | None = None,
    keep: Callable[[Request], bool] | None = None,
    observer: DispatchObserver | None = None,
    shard: int | None = None,
) -> ServeSession:
    """Build the engine stack and arrival stream for one serve run.

    ``owned`` filters *data placement*: which preloaded keys (and which
    warm-cache touches) belong to this engine.  ``keep`` filters the
    arrival stream: which requests this engine serves.  Both default to
    all-pass, in which case the session is exactly the single-engine
    run — the cluster tier passes shard-ownership predicates instead,
    and crucially the arrival stream is *generated whole and then
    filtered*, so request seqs, timestamps and key choices are identical
    across every shard count (a request routes somewhere, never
    changes).
    """
    from repro.sim.experiment import build_engine

    config = spec.config()
    setup = build_engine(spec.engine, config)
    if spec.do_preload:
        entries = [
            Entry(key, 0)
            for key in range(config.unique_keys)
            if owned is None or owned(key)
        ]
        setup.engine.bulk_load(entries)
    workload = RangeHotWorkload(config)
    if spec.warm_cache:
        # One unaccounted pass over the hot range: serving starts from
        # the steady state the closed-loop figures reach after warm-up.
        for key in range(workload.hot_start, workload.hot_start + workload.hot_size):
            if owned is None or owned(key):
                setup.engine.get(key)
    classes = spec.client_classes(config)
    duration = spec.duration_s if spec.duration_s is not None else config.duration_s
    arrivals = generate_arrivals(classes, config, workload, duration, spec.seed)
    if keep is not None:
        arrivals = [request for request in arrivals if keep(request)]
    scheduler = make_scheduler(spec.policy, spec.queue_bound, classes)
    admission = AdmissionController(
        AdmissionPolicy(
            queue_bound=spec.queue_bound,
            admit_queue_fraction=spec.admit_queue_fraction,
            retry_after_s=spec.retry_after_s,
            max_retries=spec.max_retries,
        )
    )
    profiler: SpanProfiler | None = None
    if spec.profile:
        profiler = SpanProfiler(
            bus=setup.substrate.bus,
            config=config,
            sample_every=spec.sample_every,
        )
    tracer: RequestTracer | None = None
    flight: FlightRecorder | None = None
    if spec.trace != "off":
        tracer = RequestTracer(mode=spec.trace, seed=spec.seed, shard=shard)
        flight = FlightRecorder(
            clock=setup.clock,
            bus=setup.substrate.bus,
            policy=FlightPolicy(
                slo_total_s=spec.trace_slo_s,
                stall_spike_s=spec.trace_stall_spike_s,
                dip_threshold=spec.trace_dip_threshold,
            ),
            shard=shard,
            out_dir=spec.trace_dir,
            label=safe_label(spec.label()),
        )
    controller = make_controller(spec.controller, spec.control_interval_s)
    simulator = ServiceSimulator(
        setup.engine,
        config,
        setup.clock,
        arrivals,
        scheduler,
        admission,
        profiler=profiler,
        request_sample_every=spec.request_sample_every,
        observer=observer,
        tracer=tracer,
        flight=flight,
        controller=controller,
    )
    return ServeSession(
        spec=spec, setup=setup, simulator=simulator, duration_s=duration
    )


def finalize_serve(session: ServeSession, result: ServeResult) -> ServeResult:
    """Stamp spec metadata and the closing registry snapshot on a result."""
    spec = session.spec
    config = session.simulator.config
    result.policy = spec.policy
    result.arrival = spec.arrival
    result.offered_read_qps = spec.read_rate_qps
    result.ops_scale = config.ops_scale
    result.controller = spec.controller
    result.config_note = (
        f"serve; policy={spec.policy}; arrival={spec.arrival}; "
        f"rate={spec.read_rate_qps:g}qps"
    )
    if spec.controller != "off":
        result.config_note += f"; controller={spec.controller}"
    result.metrics = session.setup.substrate.registry.snapshot()
    tracer = session.simulator.tracer
    if tracer is not None and spec.trace_dir and result.exemplars:
        shard_part = "" if tracer.shard is None else f"_shard{tracer.shard}"
        write_exemplars_jsonl(
            f"{spec.trace_dir}/trace_{safe_label(spec.label())}"
            f"{shard_part}.jsonl",
            result.exemplars,
        )
    return result


def execute_serve(spec: ServiceSpec) -> ServeResult:
    """Materialize one :class:`ServiceSpec` into its measured result.

    The serve counterpart of :func:`repro.sim.experiment.execute`: build
    the engine stack, preload the unique data set, generate the arrival
    stream, then run the service loop.  The result carries the substrate
    registry's closing snapshot like every other run.
    """
    session = prepare_serve(spec)
    result = session.simulator.run(session.duration_s)
    return finalize_serve(session, result)
