"""An HBase-style store: minor compactions online, major compactions rare.

Section VII: "In HBase, [partial runtime compaction] is called minor
compaction, while [full idle-time compaction] is called major compaction.
However, disabling major compaction during run time mainly reduces the
compaction of old data ... this approach cannot avoid the interference
from compactions to buffer caching.  In practice, HBase still suffers low
read performance during intensive writes."

The model here is a single column-family store:

* a memtable flush appends one new HFile (sorted table) to the store;
* when the store holds more than ``max_store_files`` tables, a **minor
  compaction** merges the cheapest *contiguous-by-age* window of
  ``minor_merge_files`` tables into one (tombstones and old versions are
  kept — only a major compaction may drop them, since an older version
  could hide in a table outside the window);
* every ``major_interval_s`` virtual seconds a **major compaction**
  merges the whole store into one table, dropping obsolete versions and
  tombstones.

Minor compactions still rewrite recently-written (hot) data at new disk
locations, which is exactly why the paper's related-work section says the
approach does not solve the cache-invalidation problem — the
``hbase_interference`` benchmark measures it.
"""

from __future__ import annotations

from repro.lsm.base import GetResult, LSMEngine, ReadCost, ScanResult
from repro.lsm.policy import FlatStorePolicy
from repro.obs.events import CompactionEnd, CompactionStart
from repro.sstable.entry import Entry
from repro.sstable.iterator import merge_entries, merge_with_obsolete_count
from repro.sstable.sorted_table import SortedTable


class HBaseStyleStore(LSMEngine):
    """Flat store with size-tiered minor and scheduled major compactions."""

    name = "hbase"

    def __init__(
        self,
        config=None,
        clock=None,
        disk=None,
        db_cache=None,
        os_cache=None,
        max_store_files: int = 6,
        minor_merge_files: int = 3,
        major_interval_s: int | None = 5_000,
        *,
        substrate=None,
    ) -> None:
        super().__init__(
            config, clock, disk, db_cache, os_cache, substrate=substrate
        )
        if minor_merge_files < 2:
            raise ValueError("minor compactions must merge at least 2 files")
        #: Sorted tables, oldest first (newest flushed last).
        self.tables: list[SortedTable] = []
        self.max_store_files = max_store_files
        self.minor_merge_files = minor_merge_files
        #: ``None`` disables major compactions entirely (the configuration
        #: the paper's related-work discussion warns about).
        self.major_interval_s = major_interval_s
        self._last_major_s = 0
        self.minor_compactions = 0
        self.major_compactions = 0
        #: HBase's design point (saturation-triggered minors; the
        #: time-triggered major stays on ``tick`` below).
        self.policy = FlatStorePolicy()

    # ------------------------------------------------------------------
    # Compactions (pass control flow in FlatStorePolicy).
    # ------------------------------------------------------------------
    def tick(self, now: int) -> None:
        super().tick(now)
        if (
            self.major_interval_s is not None
            and now - self._last_major_s >= self.major_interval_s
            and len(self.tables) > 1
        ):
            self._last_major_s = now
            self._major_compaction()

    def _minor_compaction(self) -> None:
        """Merge the cheapest contiguous-by-age window of tables."""
        window = self.minor_merge_files
        start = min(
            range(len(self.tables) - window + 1),
            key=lambda i: sum(t.size_kb for t in self.tables[i : i + window]),
        )
        merged_table = self._merge_tables(
            self.tables[start : start + window],
            drop_obsolete=False,
            kind="minor",
        )
        self.tables[start : start + window] = [merged_table]
        self.minor_compactions += 1

    def _major_compaction(self) -> None:
        """Merge the whole store, dropping old versions and tombstones."""
        merged_table = self._merge_tables(
            self.tables, drop_obsolete=True, kind="major"
        )
        self.tables = [merged_table]
        self.major_compactions += 1

    def _merge_tables(
        self, tables: list[SortedTable], drop_obsolete: bool, kind: str
    ) -> SortedTable:
        input_files = [f for table in tables for f in table.files]
        input_kb = float(sum(f.size_kb for f in input_files))
        bus = self.bus
        if bus.active:
            if bus.counting_only:
                bus.count(CompactionStart)
            else:
                bus.emit(
                    CompactionStart(
                        level=0,
                        input_files=len(input_files),
                        input_kb=input_kb,
                        kind=kind,
                    )
                )
        sources = [list(f.entries()) for f in input_files]
        merged, obsolete = merge_with_obsolete_count(
            sources, drop_tombstones=drop_obsolete
        )
        cause = f"compaction:{kind}"
        self._charge_compaction_read(input_files, cause=cause)
        new_files = self.builder.build(iter(merged), cause=cause)
        self._on_compaction_output(new_files)
        output_kb = float(sum(f.size_kb for f in new_files))
        self.disk.note_temp_space(input_kb)
        for file in input_files:
            self._discard_file(file)
        self._account_compaction(
            input_kb, output_kb, obsolete if drop_obsolete else 0
        )
        if bus.active:
            if bus.counting_only:
                bus.count(CompactionEnd)
            else:
                bus.emit(
                    CompactionEnd(
                        level=0,
                        read_kb=input_kb,
                        write_kb=output_kb,
                        output_files=len(new_files),
                        obsolete_entries=obsolete if drop_obsolete else 0,
                        kind=kind,
                    )
                )
        return SortedTable(new_files)

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    def get(self, key: int) -> GetResult:
        self._check_open()
        self.stats.gets += 1
        cost = ReadCost()
        cost.memtable_probes += 1
        entry = self.memtable.get(key)
        if entry is not None:
            return self._make_entry_result(entry, cost)
        for table in reversed(self.tables):  # Newest first.
            entry = self._search_table(table, key, cost)
            if entry is not None:
                return self._make_entry_result(entry, cost)
        return GetResult(False, None, cost)

    def scan(self, low: int, high: int) -> ScanResult:
        self._check_open()
        self.stats.scans += 1
        cost = ReadCost()
        sources: list[list[Entry]] = [self.memtable.entries_in_range(low, high)]
        for table in self.tables:
            overlapping = table.files_overlapping(low, high)
            if not overlapping:
                continue
            cost.tables_checked += 1
            sources.extend(self._scan_table_files(overlapping, low, high, cost))
        entries = [e for e in merge_entries(sources) if not e.is_tombstone]  # type: ignore[arg-type]
        return ScanResult(entries, cost)

    # ------------------------------------------------------------------
    # Bulk loading.
    # ------------------------------------------------------------------
    def bulk_load(self, entries: list[Entry]) -> None:
        files = self.builder.build(iter(entries), cause="preload")
        self.tables.insert(0, SortedTable(files))  # Oldest position.
        self._seq = max(self._seq, max((e.seq for e in entries), default=0))
