"""bLSM fronted by a key-value store cache (Cassandra-style).

Section VI-D's K-V cache test: "Among the 6GB cache spaces, 3GB is
allocated to the Key-Value store cache, and the rest memory space is
allocated to a DB buffer cache."  Point reads check the K-V store first;
on a miss the bLSM-tree answers (through the halved DB block cache) and
the row is installed.  Writes update the row cache write-through.

Range queries cannot use a key-indexed cache at all, so they pay the full
price of the halved block cache *and* of compaction-induced invalidations
— the combination behind the 68 QPS bar in Fig. 11.

The class wraps :class:`~repro.lsm.blsm.BLSMTree` rather than subclassing
it: the K-V store is an application-tier component sitting in front of the
storage engine, exactly as deployed in practice.
"""

from __future__ import annotations

from repro.cache.db_cache import DBBufferCache
from repro.cache.kv_cache import KVStoreCache
from repro.config import SystemConfig
from repro.lsm.base import GetResult, ReadCost, ScanResult
from repro.lsm.blsm import BLSMTree
from repro.clock import VirtualClock
from repro.sstable.entry import Entry, value_for


class KVCachedBLSM:
    """bLSM engine + front K-V row cache splitting the DRAM budget."""

    name = "blsm+kvcache"

    def __init__(
        self,
        config: SystemConfig | None = None,
        clock: VirtualClock | None = None,
        disk=None,
        kv_fraction: float = 0.5,
        *,
        substrate=None,
    ) -> None:
        if not 0.0 < kv_fraction < 1.0:
            raise ValueError(f"kv_fraction must be in (0, 1), got {kv_fraction}")
        if substrate is not None:
            config = substrate.config
        if config is None:
            raise ValueError("KVCachedBLSM requires a config or a substrate")
        self.config = config
        kv_kb = int(config.cache_size_kb * kv_fraction)
        block_kb = config.cache_size_kb - kv_kb
        self.kv_cache = KVStoreCache(max(1, kv_kb // config.pair_size_kb))
        self.db_cache = DBBufferCache(max(1, block_kb // config.block_size_kb))
        if substrate is not None:
            engine_substrate = substrate.with_caches(self.db_cache)
            self.kv_cache.bind_observability(
                engine_substrate.registry, engine_substrate.bus, "kv"
            )
            self.engine = BLSMTree(substrate=engine_substrate)
        else:
            self.engine = BLSMTree(config, clock, disk, db_cache=self.db_cache)

    # ------------------------------------------------------------------
    # Write path: write-through into the row cache.
    # ------------------------------------------------------------------
    def put(self, key: int) -> int:
        seq = self.engine.put(key)
        if self.kv_cache.get(key)[0]:
            self.kv_cache.put(key, value_for(key, seq))
        return seq

    def delete(self, key: int) -> int:
        seq = self.engine.delete(key)
        self.kv_cache.invalidate(key)
        return seq

    # ------------------------------------------------------------------
    # Read path: K-V store first, engine on a miss.
    # ------------------------------------------------------------------
    def get(self, key: int) -> GetResult:
        hit, value = self.kv_cache.get(key)
        if hit:
            cost = ReadCost()
            cost.cache_hit_blocks += 1  # Priced like a DRAM hit.
            return GetResult(True, value, cost)  # type: ignore[arg-type]
        result = self.engine.get(key)
        if result.found and result.value is not None:
            self.kv_cache.put(key, result.value)
        return result

    def scan(self, low: int, high: int) -> ScanResult:
        """Ranges bypass the row cache — it has no key-order structure."""
        return self.engine.scan(low, high)

    # ------------------------------------------------------------------
    # Pass-throughs so the driver can treat this like an engine.
    # ------------------------------------------------------------------
    def tick(self, now: int) -> None:
        self.engine.tick(now)

    def bulk_load(self, entries: list[Entry]) -> None:
        self.engine.bulk_load(entries)

    def adopt_entries(self, entries: list[Entry]) -> int:
        # Row-cached values for adopted keys would be stale: drop them.
        for entry in entries:
            self.kv_cache.invalidate(entry.key)
        return self.engine.adopt_entries(entries)

    def run_compactions(self) -> None:
        self.engine.run_compactions()

    @property
    def db_size_kb(self) -> int:
        return self.engine.db_size_kb

    @property
    def stats(self):
        return self.engine.stats

    @property
    def memtable(self):
        return self.engine.memtable

    @property
    def disk(self):
        return self.engine.disk

    @property
    def substrate(self):
        return self.engine.substrate

    @property
    def registry(self):
        return self.engine.registry

    @property
    def bus(self):
        return self.engine.bus

    @property
    def metric_cache(self) -> DBBufferCache:
        """The block cache is the reported series; the row cache sits
        in front of the engine and has its own hit accounting."""
        return self.db_cache

    @property
    def compaction_buffer_kb(self) -> None:
        return None

    @property
    def l0_pressure(self) -> float:
        return self.engine.l0_pressure

    @property
    def write_stalled(self) -> bool:
        return self.engine.write_stalled

    @property
    def wal(self):
        return self.engine.wal

    @property
    def last_seq(self) -> int:
        return self.engine.last_seq

    def simulate_crash(self) -> int:
        """Crash: the row cache is DRAM too — it dies with the memtable."""
        lost = self.engine.simulate_crash()
        self.kv_cache.clear()
        return lost

    def recover(self) -> int:
        return self.engine.recover()

    def close(self) -> None:
        self.engine.close()
