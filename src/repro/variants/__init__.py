"""Existing solutions the paper compares against (Section I-A)."""

from repro.variants.hbase import HBaseStyleStore
from repro.variants.kv_store import KVCachedBLSM
from repro.variants.warmup import WarmupBLSMTree

__all__ = ["HBaseStyleStore", "KVCachedBLSM", "WarmupBLSMTree"]
