"""bLSM with incremental warming up (Ahmad & Kemme, VLDB '15).

Section I-A's "dedicated compaction servers" solution, simulated on a
single machine exactly as the paper does in Section VI-C: "before the
newly compacted blocks are flushed from memory, the blocks in the buffer
cache that will be evicted in this compaction will be replaced with the
newly generated blocks whose key ranges overlap with them."

The mechanism's assumption — a compacted block is hot whenever it overlaps
a block that was brought into the cache — is what the paper attacks.  Per
its analysis (Section VI-C): "one key-value pair of level i ... loaded
into the buffer cache by a read operation.  The block containing that pair
will be marked as *Hot* when it is being compacted down to the lower
level.  Since up to r blocks in level i+1 share the same key range with
that block, up to r+1 newly generated blocks will be loaded into buffer
cache after this compaction", cascading to ``(r+1)^(k-i)`` blocks.  The
Hot mark is *sticky*: it outlives the block's cache residency, so even the
2% of reads outside the hot range seed exponentially amplifying warm-up
floods that evict genuinely hot data — Fig. 8c's churn.

Implementation: every block a query loads gets its ``(file, block)``
marked; when a compaction retires files, the key ranges of their marked
blocks are transplanted onto every overlapping output block, which is both
inserted into the cache and marked in turn.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.lsm.base import ReadCost
from repro.lsm.blsm import BLSMTree
from repro.sstable.block import Block
from repro.sstable.sstable import SSTableFile


class WarmupBLSMTree(BLSMTree):
    """bLSM whose compactions warm overlapping new blocks into the cache."""

    name = "blsm+warmup"

    def __init__(
        self,
        config=None,
        clock=None,
        disk=None,
        db_cache=None,
        os_cache=None,
        *,
        substrate=None,
    ) -> None:
        super().__init__(
            config, clock, disk, db_cache, os_cache, substrate=substrate
        )
        #: Sticky Hot marks: file_id -> block indices ever loaded by reads
        #: (or warmed); survives eviction, dies with the file.
        self._hot_marks: dict[int, set[int]] = {}
        self.blocks_warmed = 0

    # ------------------------------------------------------------------
    # Mark on load.
    # ------------------------------------------------------------------
    def _read_block(self, file: SSTableFile, block: Block, cost: ReadCost) -> None:
        super()._read_block(file, block, cost)
        # get-then-add instead of setdefault: the common (already-marked)
        # case skips allocating a fresh set per read.
        marks = self._hot_marks.get(file.file_id)
        if marks is None:
            self._hot_marks[file.file_id] = {block.index}
        else:
            marks.add(block.index)

    # ------------------------------------------------------------------
    # Warm on compaction.
    # ------------------------------------------------------------------
    def _pre_install_hook(
        self, old_files: list[SSTableFile], new_files: list[SSTableFile]
    ) -> None:
        if self.db_cache is None:
            return
        hot_ranges: list[tuple[int, int]] = []
        for file in old_files:
            marks = self._hot_marks.pop(file.file_id, None)
            if not marks:
                continue
            blocks = file.blocks
            for index in marks:
                block = blocks[index]
                hot_ranges.append((block.min_key, block.max_key))
        if not hot_ranges:
            return
        merged = self._coalesce(hot_ranges)
        starts = [low for low, _ in merged]
        for file in new_files:
            for block in file.blocks:
                if self._overlaps_any(
                    block.min_key, block.max_key, merged, starts
                ):
                    self.db_cache.insert(file.file_id, block.index)
                    self._hot_marks.setdefault(file.file_id, set()).add(
                        block.index
                    )
                    self.blocks_warmed += 1

    def _discard_file(self, file: SSTableFile) -> None:
        self._hot_marks.pop(file.file_id, None)
        super()._discard_file(file)

    # ------------------------------------------------------------------
    # Range helpers.
    # ------------------------------------------------------------------
    @staticmethod
    def _coalesce(ranges: list[tuple[int, int]]) -> list[tuple[int, int]]:
        """Sort and merge into disjoint ranges (ends become monotone)."""
        ranges.sort()
        merged: list[tuple[int, int]] = []
        for low, high in ranges:
            if merged and low <= merged[-1][1]:
                if high > merged[-1][1]:
                    merged[-1] = (merged[-1][0], high)
            else:
                merged.append((low, high))
        return merged

    @staticmethod
    def _overlaps_any(
        low: int,
        high: int,
        ranges: list[tuple[int, int]],
        starts: list[int],
    ) -> bool:
        """Whether ``[low, high]`` intersects any of the disjoint ranges."""
        position = bisect_right(starts, high) - 1
        if position < 0:
            return False
        return ranges[position][1] >= low