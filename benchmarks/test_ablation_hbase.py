"""Ablation A7 — HBase-style minor/major compaction (Section VII).

The paper's related-work section: "disabling major compaction during run
time mainly reduces the compaction of old data ... this approach cannot
avoid the interference from compactions to buffer caching.  In practice,
HBase still suffers low read performance during intensive writes" — and,
"just like SM", lazy compaction trades that interference for piled-up
obsolete data and weak range queries.

Both horns of the dilemma, measured:

* **majors on** — the periodic whole-store rewrites invalidate the cached
  hot set, so the point-read hit ratio falls below LSbM's;
* **majors off** — invalidations stop, but the store degenerates into an
  SM-tree: sorted tables pile up, range queries pay for every one of
  them (below LSbM), and obsolete data inflates the database.
"""

from __future__ import annotations

from repro.sim.report import ascii_table

from .common import cell, once, run_grid, write_bench, write_report

DURATION = 8000


def _runs():
    return run_grid(
        {
            (engine, mode): cell(
                engine, scan_mode=(mode == "range"), duration=DURATION
            )
            for engine, mode in (
                ("hbase", "point"),
                ("hbase-nomajor", "point"),
                ("lsbm", "point"),
                ("hbase-nomajor", "range"),
                ("lsbm", "range"),
            )
        }
    )


def test_ablation_hbase_interference(benchmark):
    runs = once(benchmark, _runs)
    rows = [
        [
            engine,
            mode,
            f"{runs[(engine, mode)].mean_hit_ratio():.3f}",
            f"{runs[(engine, mode)].mean_throughput():,.0f}",
            f"{runs[(engine, mode)].mean_db_size_mb():,.0f}",
        ]
        for engine, mode in runs
    ]
    report = "\n".join(
        [
            "Ablation A7 — HBase-style compaction vs LSbM (Section VII)",
            ascii_table(["engine", "reads", "hit", "QPS", "DB MB"], rows),
        ]
    )
    write_report("ablation_hbase", report)
    write_bench("ablation_hbase", runs)

    # Horn 1: with major compactions running, the whole-store rewrites
    # invalidate the hot set — point-read hit ratio below LSbM's.
    assert (
        runs[("hbase", "point")].mean_hit_ratio()
        < runs[("lsbm", "point")].mean_hit_ratio()
    )
    # Horn 2a: disabling majors piles up obsolete data on disk.
    assert (
        runs[("hbase-nomajor", "point")].mean_db_size_mb()
        > runs[("hbase", "point")].mean_db_size_mb()
    )
    # Horn 2b: …and the piled sorted tables drag range queries below
    # LSbM, which keeps a fully sorted underlying tree.
    assert (
        runs[("hbase-nomajor", "range")].mean_throughput()
        < runs[("lsbm", "range")].mean_throughput()
    )