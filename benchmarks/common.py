"""Shared infrastructure for the figure-reproduction benchmarks.

Every benchmark regenerates one of the paper's evaluation figures
(Figs. 2, 8-13) or an ablation, prints the paper-vs-measured comparison,
and asserts the qualitative shape (who wins, oscillation, overhead band).

Runs are expensive, so they are memoized per (engine, mode, config): the
summary figures (9, 11, 13) reuse the series figures' (8, 10, 12) runs.

Environment knobs:

* ``REPRO_BENCH_SCALE``  — linear size scale (default 2048, the scale
  EXPERIMENTS.md quotes; scale-1024 spot checks are recorded there too);
* ``REPRO_BENCH_DURATION`` — virtual seconds per run (default 20,000,
  the paper's full test length; lower it for smoke runs — the level-2
  phenomena need at least ~13,000);
* ``REPRO_BENCH_JOBS`` — worker processes for grid runs (default 1;
  raise it on multi-core runners — results are identical by
  construction, see :mod:`repro.sim.sweep`).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.config import SystemConfig
from repro.sim.metrics import RunResult
from repro.sim.spec import ExperimentSpec
from repro.sim.speedgate import find_baseline_path, load_baseline
from repro.sim.sweep import run_sweep

BENCH_SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "2048"))
BENCH_DURATION = int(os.environ.get("REPRO_BENCH_DURATION", "20000"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "1"))
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))

#: The database-size figures (12/13) hinge on the level-2 merge round,
#: which happens at ~10,240 virtual seconds at every scale (the fill
#: periods are scale-invariant by design), so those runs need to be
#: longer than the default smoke duration.
SIZE_DURATION = max(BENCH_DURATION, 13_000)

RESULTS_DIR = Path(__file__).parent / "results"

_run_cache: dict[ExperimentSpec, RunResult] = {}

#: Harness telemetry per cached run, keyed by ``id(result)``: how long
#: the *simulator* took on the wall clock and how many simulated
#: operations per real second it sustained.  Memoized reuse keeps the
#: first (real) measurement.
_telemetry: dict[int, dict[str, float]] = {}


def bench_config(**overrides) -> SystemConfig:
    """The scaled paper configuration used by all benchmarks."""
    config = SystemConfig.paper_scaled(BENCH_SCALE)
    if overrides:
        config = config.replace(**overrides)
    return config


def cell(
    engine: str,
    scan_mode: bool = False,
    duration: int | None = None,
    base: str = "paper_scaled",
    **config_overrides,
) -> ExperimentSpec:
    """One declarative grid cell at the benchmark scale/seed."""
    return ExperimentSpec(
        engine=engine,
        base=base,
        scale=BENCH_SCALE,
        overrides=tuple(sorted(config_overrides.items())),
        duration_s=duration if duration is not None else BENCH_DURATION,
        seed=BENCH_SEED,
        scan_mode=scan_mode,
    )


def run_grid(
    cells: dict[object, ExperimentSpec] | None = None,
    *,
    engines=None,
    scan_mode: bool = False,
    duration: int | None = None,
    jobs: int | None = None,
    **config_overrides,
) -> dict[object, RunResult]:
    """Run a labelled grid of cells; memoized, parallel when jobs > 1.

    Either pass ``cells`` (label -> :func:`cell`) or the convenience form
    ``engines=(...)`` which labels each cell by its engine name.  Misses
    are fanned over ``jobs`` worker processes (``REPRO_BENCH_JOBS`` by
    default) via :func:`repro.sim.sweep.run_sweep`; hits come from the
    cross-file memo, so the summary figures still reuse the series
    figures' runs.
    """
    if cells is None:
        cells = {
            name: cell(name, scan_mode=scan_mode, duration=duration,
                       **config_overrides)
            for name in engines
        }
    jobs = BENCH_JOBS if jobs is None else jobs
    # Distinct missing specs, each mapped to every label that wants it.
    missing: dict[ExperimentSpec, list[object]] = {}
    for label, spec in cells.items():
        if spec not in _run_cache:
            missing.setdefault(spec, []).append(label)
    if missing:
        outcome = run_sweep(list(missing), jobs=jobs)
        for run in outcome.outcomes:
            _run_cache[run.spec] = run.result
            _telemetry[id(run.result)] = {
                "wall_clock_s": run.wall_clock_s,
                "sim_ops_per_s": run.sim_ops_per_s,
            }
    return {label: _run_cache[spec] for label, spec in cells.items()}


def run_cached(
    engine: str,
    scan_mode: bool = False,
    duration: int | None = None,
    **config_overrides,
) -> RunResult:
    """Run (or reuse) one experiment; memoized across benchmark files."""
    spec = cell(engine, scan_mode=scan_mode, duration=duration,
                **config_overrides)
    return run_grid({engine: spec})[engine]


def timed(fn):
    """Run ``fn`` and, if it returns a RunResult, record its telemetry.

    For benchmarks that drive experiments directly (bypassing
    :func:`run_cached`), so their ``BENCH_*.json`` entries still carry
    real wall-clock and ops/sec numbers.
    """
    started = time.perf_counter()
    result = fn()
    wall_s = time.perf_counter() - started
    if isinstance(result, RunResult):
        sim_ops = result.reads_completed + result.writes_applied
        _telemetry[id(result)] = {
            "wall_clock_s": wall_s,
            "sim_ops_per_s": sim_ops / wall_s if wall_s > 0 else 0.0,
        }
    return result


def write_report(name: str, text: str) -> None:
    """Persist a figure's paper-vs-measured report and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")


#: Bench-telemetry JSON schema version (bump on breaking layout change).
#: Version 2: run entries must carry ``stall_seconds``; serve runs (from
#: ``repro serve`` / the serve SLO benchmark) add ``"kind": "serve"``
#: entries with per-class percentiles.
#: Version 3: cluster runs (from ``repro cluster`` / the hot-shard
#: benchmark) add ``"kind": "cluster"`` entries with per-shard ledgers.
#: Keep in sync with ``repro.sim.sweep.SWEEP_SCHEMA_VERSION``.
BENCH_SCHEMA_VERSION = 3

#: Required per-run fields and their types, for :func:`validate_bench`.
_BENCH_RUN_FIELDS = {
    "engine": str,
    "duration_s": int,
    "reads_completed": int,
    "writes_applied": int,
    "mean_hit_ratio": float,
    "mean_throughput_qps": float,
    "mean_db_size_mb": float,
    "latency_p50_ms": float,
    "latency_p99_ms": float,
    "stall_seconds": float,
    "event_counts": dict,
    "bandwidth_kb_by_cause": dict,
    "wall_clock_s": float,
    "sim_ops_per_s": float,
}

#: Additional required fields for serve-kind run entries.
_BENCH_SERVE_RUN_FIELDS = {
    "policy": str,
    "arrival": str,
    "offered_read_qps": float,
    "goodput_qps": float,
    "max_queue_depth": int,
    "shed": int,
    "deferred": int,
    "reconciliation_max_error_s": float,
    "classes": dict,
}

#: Additional required fields for cluster-kind run entries.
_BENCH_CLUSTER_RUN_FIELDS = {
    "policy": str,
    "arrival": str,
    "offered_read_qps": float,
    "goodput_qps": float,
    "num_shards": int,
    "partitioner": str,
    "shed": int,
    "deferred": int,
    "read_imbalance": float,
    "hottest_shard": int,
    "shard_read_p99_ms": list,
    "per_shard": dict,
}


def validate_bench(payload: dict) -> None:
    """Assert a ``BENCH_*.json`` payload matches the expected schema.

    Hand-rolled (the toolchain has no jsonschema); raises ``ValueError``
    with the offending path so a drifting writer fails loudly in CI.
    """
    for field, kind in (
        ("schema_version", int),
        ("name", str),
        ("scale", int),
        ("duration_s", int),
        ("seed", int),
        ("runs", dict),
        ("scalars", dict),
    ):
        if not isinstance(payload.get(field), kind):
            raise ValueError(f"bench payload: {field!r} must be {kind.__name__}")
    if payload["schema_version"] != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"bench payload: schema_version {payload['schema_version']} != "
            f"{BENCH_SCHEMA_VERSION}"
        )
    if not payload["runs"] and not payload["scalars"]:
        raise ValueError("bench payload: no runs and no scalars")
    for label, value in payload["scalars"].items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValueError(
                f"bench payload: scalars[{label!r}] must be a number"
            )
    speed = payload.get("speed_baseline")
    if speed is not None:
        if not isinstance(speed, dict) or not speed:
            raise ValueError("bench payload: speed_baseline must be a "
                             "non-empty dict when present")
        for label, value in speed.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(
                    f"bench payload: speed_baseline[{label!r}] must be "
                    "a number"
                )
    for label, run in payload["runs"].items():
        if not isinstance(run, dict):
            raise ValueError(f"bench payload: runs[{label!r}] must be a dict")
        required = dict(_BENCH_RUN_FIELDS)
        if run.get("kind") == "serve":
            required.update(_BENCH_SERVE_RUN_FIELDS)
        elif run.get("kind") == "cluster":
            required.update(_BENCH_CLUSTER_RUN_FIELDS)
        for field, kind in required.items():
            value = run.get(field)
            if kind is float and isinstance(value, int):
                value = float(value)
            if not isinstance(value, kind):
                raise ValueError(
                    f"bench payload: runs[{label!r}][{field!r}] must be "
                    f"{kind.__name__}, got {type(run.get(field)).__name__}"
                )
        trace = run.get("trace")
        if trace is not None:
            _validate_trace_block(label, trace)


def _validate_trace_block(label: str, trace: object) -> None:
    """Validate one run entry's optional ``trace`` digest block."""
    if not isinstance(trace, dict):
        raise ValueError(
            f"bench payload: runs[{label!r}]['trace'] must be a dict"
        )
    if trace.get("mode") not in ("exemplar", "full"):
        raise ValueError(
            f"bench payload: runs[{label!r}]['trace']['mode'] must be "
            "'exemplar' or 'full'"
        )
    for field in ("exemplars", "flight_dumps"):
        value = trace.get(field)
        if not isinstance(value, int) or isinstance(value, bool):
            raise ValueError(
                f"bench payload: runs[{label!r}]['trace'][{field!r}] "
                "must be an int"
            )
    for field in ("flight_triggers", "worst_exemplars"):
        if not isinstance(trace.get(field), list):
            raise ValueError(
                f"bench payload: runs[{label!r}]['trace'][{field!r}] "
                "must be a list"
            )
    for index, digest in enumerate(trace["worst_exemplars"]):
        if not isinstance(digest, dict) or "trace_id" not in digest:
            raise ValueError(
                f"bench payload: runs[{label!r}]['trace']"
                f"['worst_exemplars'][{index}] must be an exemplar digest"
            )


def speed_baseline_summary() -> dict | None:
    """The pinned speed reference points, for bench telemetry payloads.

    Pulled from ``benchmarks/baseline.json`` (see
    :mod:`repro.sim.speedgate`): the seed scalar tree's Fig. 8 grid
    ops/s and the currently recorded (batched-kernel) floor.  Returns
    ``None`` when no baseline file is present so ad-hoc checkouts still
    benchmark cleanly.
    """
    path = find_baseline_path()
    if not path.exists():
        return None
    try:
        baseline = load_baseline(path)
    except (ValueError, OSError):
        return None
    summary: dict = {}
    seed = baseline.get("seed_scalar")
    if seed:
        summary["seed_scalar_grid_ops_per_s"] = seed["grid_ops_per_s"]
    recorded = baseline.get("recorded")
    if recorded:
        summary["recorded_grid_ops_per_s"] = recorded["best"]["grid_ops_per_s"]
    return summary or None


def _bench_label(key) -> str:
    """Stringify a run key (sweeps use tuple keys like (engine, mult))."""
    if isinstance(key, tuple):
        return "/".join(str(part) for part in key)
    return str(key)


def write_bench(
    name: str,
    runs: dict | None = None,
    scalars: dict | None = None,
) -> Path:
    """Write one benchmark's telemetry as ``results/BENCH_<name>.json``.

    Each labelled run carries its simulated summary (the figures' QPS and
    hit ratios, via ``RunResult.to_json_dict``) *and* the harness's own
    telemetry — wall-clock seconds and simulated ops per real second —
    so a CI history of these files tracks both reproduction quality and
    simulator performance.  ``scalars`` holds a micro-benchmark's
    non-run numbers (write amplification, buffer sizes).  The payload is
    schema-validated before it is written.
    """
    payload: dict = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "name": name,
        "scale": BENCH_SCALE,
        "duration_s": BENCH_DURATION,
        "seed": BENCH_SEED,
        "runs": {},
        "scalars": {
            _bench_label(k): v for k, v in (scalars or {}).items()
        },
    }
    for label, result in (runs or {}).items():
        entry = result.to_json_dict()
        telemetry = _telemetry.get(
            id(result), {"wall_clock_s": 0.0, "sim_ops_per_s": 0.0}
        )
        entry.update(telemetry)
        payload["runs"][_bench_label(label)] = entry
    speed = speed_baseline_summary()
    if speed is not None:
        payload["speed_baseline"] = speed
    validate_bench(payload)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[bench telemetry written to {path}]")
    return path


def once(benchmark, func):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
