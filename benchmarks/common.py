"""Shared infrastructure for the figure-reproduction benchmarks.

Every benchmark regenerates one of the paper's evaluation figures
(Figs. 2, 8-13) or an ablation, prints the paper-vs-measured comparison,
and asserts the qualitative shape (who wins, oscillation, overhead band).

Runs are expensive, so they are memoized per (engine, mode, config): the
summary figures (9, 11, 13) reuse the series figures' (8, 10, 12) runs.

Environment knobs:

* ``REPRO_BENCH_SCALE``  — linear size scale (default 2048, the scale
  EXPERIMENTS.md quotes; scale-1024 spot checks are recorded there too);
* ``REPRO_BENCH_DURATION`` — virtual seconds per run (default 20,000,
  the paper's full test length; lower it for smoke runs — the level-2
  phenomena need at least ~13,000).
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.config import SystemConfig
from repro.sim.experiment import run_experiment
from repro.sim.metrics import RunResult

BENCH_SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "2048"))
BENCH_DURATION = int(os.environ.get("REPRO_BENCH_DURATION", "20000"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "1"))

#: The database-size figures (12/13) hinge on the level-2 merge round,
#: which happens at ~10,240 virtual seconds at every scale (the fill
#: periods are scale-invariant by design), so those runs need to be
#: longer than the default smoke duration.
SIZE_DURATION = max(BENCH_DURATION, 13_000)

RESULTS_DIR = Path(__file__).parent / "results"

_run_cache: dict[tuple, RunResult] = {}


def bench_config(**overrides) -> SystemConfig:
    """The scaled paper configuration used by all benchmarks."""
    config = SystemConfig.paper_scaled(BENCH_SCALE)
    if overrides:
        config = config.replace(**overrides)
    return config


def run_cached(
    engine: str,
    scan_mode: bool = False,
    duration: int | None = None,
    **config_overrides,
) -> RunResult:
    """Run (or reuse) one experiment; memoized across benchmark files."""
    duration = duration if duration is not None else BENCH_DURATION
    key = (engine, scan_mode, duration, tuple(sorted(config_overrides.items())))
    if key not in _run_cache:
        config = bench_config(**config_overrides)
        _run_cache[key] = run_experiment(
            engine, config, duration_s=duration, seed=BENCH_SEED,
            scan_mode=scan_mode,
        )
    return _run_cache[key]


def write_report(name: str, text: str) -> None:
    """Persist a figure's paper-vs-measured report and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")


def once(benchmark, func):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
