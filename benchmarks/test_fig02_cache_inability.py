"""Figure 2 — "Inabilities of buffer caches".

The paper's motivating measurement: under mixed reads and writes on a
plain LSM-tree, *both* cache designs fail.

* OS buffer cache only (dashed line): compaction streams continuously
  displace query pages — the hit ratio churns with capacity misses.
* DB buffer cache (solid line): compactions rewrite disk blocks, so
  cached blocks are invalidated in bursts — the hit ratio oscillates.

Reproduced by running LevelDB once with an OS-cache-only stack and once
with a DB cache, on RangeHot reads + uniform writes.
"""

from __future__ import annotations

from repro.sim.report import ascii_table, series_block

from .common import once, run_grid, write_bench, write_report


def test_fig02_os_and_db_cache_churn(benchmark):
    runs = once(
        benchmark, lambda: run_grid(engines=("leveldb-oscache", "leveldb"))
    )
    os_run, db_run = runs["leveldb-oscache"], runs["leveldb"]

    warm = max(1, len(db_run.hit_ratio) // 10)

    table = ascii_table(
        ["cache", "mean hit", "min hit", "max hit", "dips<0.7"],
        [
            [
                "OS cache",
                f"{os_run.mean_hit_ratio():.3f}",
                f"{os_run.hit_ratio.minimum(warm):.3f}",
                f"{os_run.hit_ratio.maximum(warm):.3f}",
                os_run.hit_ratio.dips_below(0.7, warm),
            ],
            [
                "DB cache",
                f"{db_run.mean_hit_ratio():.3f}",
                f"{db_run.hit_ratio.minimum(warm):.3f}",
                f"{db_run.hit_ratio.maximum(warm):.3f}",
                db_run.hit_ratio.dips_below(0.7, warm),
            ],
        ],
    )
    report = "\n".join(
        [
            "Figure 2 — hit ratios of OS vs DB buffer cache on plain LSM",
            "(paper: both series oscillate, never settling at a high flat line)",
            table,
            series_block("OS cache hit ratio over time", os_run.hit_ratio),
            series_block("DB cache hit ratio over time", db_run.hit_ratio),
        ]
    )
    write_report("fig02_cache_inability", report)
    write_bench(
        "fig02_cache_inability",
        {"leveldb-oscache": os_run, "leveldb": db_run},
    )

    # Shape assertions: neither cache sustains a near-perfect hit ratio;
    # both series keep dipping (compaction churn), i.e. the minimum over
    # the post-warmup window sits well below the maximum.
    for run in (os_run, db_run):
        assert run.hit_ratio.maximum(warm) - run.hit_ratio.minimum(warm) > 0.15
        assert run.hit_ratio.dips_below(0.7, warm) >= 1
