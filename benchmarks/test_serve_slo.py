"""Serve SLO — latency vs offered load under open-loop arrivals.

The closed-loop figures show LSbM keeps its buffer cache useful during
compaction; this benchmark shows what that buys a *service*: driving
LevelDB and LSbM with identical open-loop RangeHot arrival streams at a
moderate and a near-saturation offered rate, read tail latency
hockey-sticks on both — but LSbM's higher hit ratio gives it more
capacity headroom, so its p99 degrades measurably less and its goodput
holds closer to the offered rate.

Knobs: ``REPRO_BENCH_SCALE``/``REPRO_BENCH_JOBS`` as everywhere, plus
``REPRO_BENCH_SERVE_DURATION`` (default 2,000 virtual seconds —
open-loop runs measure steady-state serving after a warmed cache, so
they don't need the closed-loop figures' 20,000 s horizon) and
``REPRO_BENCH_SERVE_SEED`` (default 0, the ``repro serve`` CLI default,
so this benchmark validates the exact grid the docs quote).
"""

from __future__ import annotations

import json
import os

from repro.serve import ServeResult, expand_serve_grid
from repro.sim.report import ascii_table
from repro.sim.sweep import run_sweep

from .common import (
    BENCH_JOBS,
    BENCH_SCALE,
    RESULTS_DIR,
    validate_bench,
    write_report,
)

ENGINES = ("leveldb", "lsbm")
#: Offered read rates in paper-scale QPS: comfortably below capacity and
#: near saturation (warm capacity at scale 2048 is ~7-8k QPS).
RATES = (2000.0, 8000.0)
SERVE_DURATION = int(os.environ.get("REPRO_BENCH_SERVE_DURATION", "2000"))
SERVE_SEED = int(os.environ.get("REPRO_BENCH_SERVE_SEED", "0"))


def test_serve_slo(benchmark):
    specs = expand_serve_grid(
        list(ENGINES),
        list(RATES),
        ["fifo"],
        [SERVE_SEED],
        scale=BENCH_SCALE,
        duration_s=SERVE_DURATION,
    )
    outcome = benchmark.pedantic(
        lambda: run_sweep(specs, jobs=BENCH_JOBS), rounds=1, iterations=1
    )
    by_cell: dict[tuple[str, float], ServeResult] = {}
    for run in outcome.outcomes:
        by_cell[(run.spec.engine, run.spec.read_rate_qps)] = run.result

    rows = []
    for engine in ENGINES:
        for rate in RATES:
            result = by_cell[(engine, rate)]
            rows.append(
                [
                    engine,
                    f"{rate:g}",
                    f"{result.goodput_qps():.0f}",
                    f"{result.class_percentile_ms('readers', 50):.0f}",
                    f"{result.class_percentile_ms('readers', 99):.0f}",
                    f"{result.total_shed}",
                    f"{result.total_deferred}",
                ]
            )
    report = "\n".join(
        [
            "Serve SLO — read p99 vs offered load (open-loop, RangeHot)",
            f"(scale {BENCH_SCALE}, {SERVE_DURATION}s, fifo, "
            f"seed {SERVE_SEED})",
            ascii_table(
                [
                    "engine",
                    "offered QPS",
                    "goodput QPS",
                    "read p50 ms",
                    "read p99 ms",
                    "shed",
                    "deferred",
                ],
                rows,
            ),
        ]
    )
    write_report("serve_slo", report)

    payload = outcome.to_payload("serve_slo")
    validate_bench(payload)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_serve_slo.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[bench telemetry written to {path}]")

    # Every sampled request's decomposition reconciles exactly.
    for result in by_cell.values():
        assert result.request_samples
        assert result.reconciliation_max_error_s() == 0.0

    # Latency hockey-sticks as offered load approaches capacity…
    for engine in ENGINES:
        low = by_cell[(engine, RATES[0])].class_percentile_ms("readers", 99)
        high = by_cell[(engine, RATES[1])].class_percentile_ms("readers", 99)
        assert high > low

    # …but LSbM's tail is lower where both engines keep up…
    assert by_cell[("lsbm", RATES[0])].class_percentile_ms("readers", 99) < (
        by_cell[("leveldb", RATES[0])].class_percentile_ms("readers", 99)
    )

    # …and at the near-saturation rate it degrades measurably less than
    # LevelDB: lower p99, more goodput (the paper's thesis, served).
    leveldb_high = by_cell[("leveldb", RATES[1])]
    lsbm_high = by_cell[("lsbm", RATES[1])]
    assert lsbm_high.class_percentile_ms("readers", 99) < (
        leveldb_high.class_percentile_ms("readers", 99)
    )
    assert lsbm_high.goodput_qps() > leveldb_high.goodput_qps()
