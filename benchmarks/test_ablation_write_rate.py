"""Ablation A8 — sensitivity to write intensity.

The paper fixes writes at 1,000 OPS.  This sweep scales the write rate to
0.5x / 1x / 2x of that and maps out where the compaction buffer pays:
with light writes there is little invalidation to protect against (the
buffer is ~neutral — its blocks even compete with the tree's for cache);
at and above the paper's write intensity, compaction churn bites and the
protection turns into a clear throughput advantage — the regime the
paper's title ("mixed reads and writes") is about.
"""

from __future__ import annotations

from repro.sim.report import ascii_table

from .common import bench_config, cell, once, run_grid, write_bench, write_report

MULTIPLIERS = (0.5, 1.0, 2.0)
DURATION = 6000


def _sweep():
    base_rate = bench_config().write_rate_pairs_per_s
    return run_grid(
        {
            (engine, multiplier): cell(
                engine,
                duration=DURATION,
                write_rate_pairs_per_s=base_rate * multiplier,
            )
            for multiplier in MULTIPLIERS
            for engine in ("blsm", "lsbm")
        }
    )


def test_ablation_write_rate(benchmark):
    runs = once(benchmark, _sweep)
    rows = []
    advantage = {}
    for multiplier in MULTIPLIERS:
        blsm = runs[("blsm", multiplier)]
        lsbm = runs[("lsbm", multiplier)]
        advantage[multiplier] = lsbm.mean_throughput() / max(
            1.0, blsm.mean_throughput()
        )
        rows.append(
            [
                f"{multiplier:g}x",
                f"{blsm.mean_hit_ratio():.3f}",
                f"{lsbm.mean_hit_ratio():.3f}",
                f"{blsm.mean_throughput():,.0f}",
                f"{lsbm.mean_throughput():,.0f}",
                f"{advantage[multiplier]:.2f}x",
            ]
        )
    report = "\n".join(
        [
            "Ablation A8 — write-rate sweep (paper fixes 1,000 OPS = 1x)",
            ascii_table(
                [
                    "write rate",
                    "bLSM hit",
                    "LSbM hit",
                    "bLSM qps",
                    "LSbM qps",
                    "LSbM advantage",
                ],
                rows,
            ),
        ]
    )
    write_report("ablation_write_rate", report)
    write_bench("ablation_write_rate", runs)

    # More writes hurt everyone's reads…
    assert (
        runs[("blsm", 2.0)].mean_throughput()
        < runs[("blsm", 0.5)].mean_throughput()
    )
    # …LSbM wins clearly at and above the paper's write intensity…
    assert advantage[1.0] > 1.05, advantage
    assert advantage[2.0] > 1.0, advantage
    # …and is at worst neutral when writes are light (little churn to
    # protect against, some cache spent on duplicate buffer blocks).
    assert advantage[0.5] > 0.9, advantage