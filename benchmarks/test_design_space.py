"""Extension — the compaction design space as a measured panel.

Sarkar et al.'s axes (trigger / layout / granularity / movement) become
concrete engines here: tiering and lazy-leveling points, each with and
without the paper's compaction buffer, next to the legacy stepped-merge
and LSbM trees.  The panel quantifies the trade each point makes —
write amplification and stalls against buffer-cache stability — and the
bench payload is the artifact ``repro tune`` searches over.
"""

from __future__ import annotations

from repro.sim.report import ascii_table

from .common import cell, once, run_grid, write_bench, write_report

#: Long enough for compactions to reach the last level, where tiering
#: and lazy-leveling actually diverge (the upper levels are tiered in
#: both layouts).
DURATION = 13_000

ENGINES = (
    "sm",
    "tiering",
    "tiering+buffer",
    "lazy-leveling",
    "lazy-leveling+buffer",
    "lsbm",
)


def _sweep():
    return run_grid(
        {name: cell(name, duration=DURATION) for name in ENGINES}
    )


def test_design_space_panel(benchmark):
    runs = once(benchmark, _sweep)
    rows = []
    scalars = {}
    for name in ENGINES:
        result = runs[name]
        compaction_kb = result.metrics.get("engine.compaction_write_kb", 0.0)
        rows.append([
            name,
            f"{result.mean_hit_ratio():.3f}",
            f"{result.stall_seconds:,.0f}",
            f"{compaction_kb:,.0f}",
            f"{result.mean_db_size_mb():,.0f}",
        ])
        scalars[f"{name}_compaction_write_kb"] = float(compaction_kb)
        scalars[f"{name}_stall_seconds"] = float(result.stall_seconds)
    report = "\n".join([
        "Extension — compaction design-space panel "
        "(layout x movement named points)",
        ascii_table(
            ["engine", "hit ratio", "stall s", "compaction KB", "DB MB"],
            rows,
        ),
    ])
    write_report("design_space", report)
    write_bench("design_space", runs, scalars=scalars)

    tiering = runs["tiering"]
    lazy = runs["lazy-leveling"]
    # Lazy-leveling pays for its single-run last level in rewrites and
    # stalls; tiering pays in read fan-out but keeps the cache warmer.
    assert (
        lazy.metrics["engine.compaction_write_kb"]
        > tiering.metrics["engine.compaction_write_kb"]
    )
    assert lazy.stall_seconds > tiering.stall_seconds
    assert tiering.mean_hit_ratio() > lazy.mean_hit_ratio()
    # The compaction buffer recovers cache effectiveness on the layout
    # that suffers most — the LSbM mechanism generalizes beyond bLSM.
    assert (
        runs["lazy-leveling+buffer"].mean_hit_ratio()
        > lazy.mean_hit_ratio()
    )
