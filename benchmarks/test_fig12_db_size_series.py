"""Figure 12 — database size over time.

The paper's observations to reproduce:

* bLSM and LevelDB hold a roughly flat size: merges into the (preloaded)
  last level drop obsolete versions as fast as they arrive;
* SM-tree grows and bursts: obsolete data piles up in lazy levels, and
  whole-level merges transiently hold input + output on disk (small
  bursts at the level-1 period, large ones at the level-2 period);
* LSbM sits slightly above bLSM/LevelDB — the compaction buffer's rent —
  but stays bounded thanks to the trim process.
"""

from __future__ import annotations

from repro.sim.report import ascii_table, series_block

from .common import SIZE_DURATION, once, run_grid, write_bench, write_report

ENGINES = ("blsm", "leveldb", "sm", "lsbm")


def test_fig12_db_size_series(benchmark):
    runs = once(
        benchmark,
        lambda: run_grid(
            engines=ENGINES, scan_mode=True, duration=SIZE_DURATION
        ),
    )
    rows = [
        [
            name,
            f"{runs[name].mean_db_size_mb():,.0f}",
            f"{runs[name].db_size_mb.minimum():,.0f}",
            f"{runs[name].db_size_mb.maximum():,.0f}",
        ]
        for name in ENGINES
    ]
    blocks = [
        series_block(f"(series) {name} DB size (MB)", runs[name].db_size_mb)
        for name in ENGINES
    ]
    report = "\n".join(
        [
            "Figure 12 — database size over time",
            "(paper: SM grows with merge bursts; LSbM slightly above bLSM)",
            ascii_table(["engine", "mean MB", "min MB", "max MB"], rows),
            *blocks,
        ]
    )
    write_report("fig12_db_size_series", report)
    write_bench("fig12_db_size_series", runs)

    sm = runs["sm"].db_size_mb
    blsm = runs["blsm"].db_size_mb
    # SM ends bigger than it starts (obsolete pile-up)…
    assert sm.values[-1] > sm.values[0] * 1.1
    # …and shows merge bursts: its peak clearly exceeds its mean.
    assert sm.maximum() > runs["sm"].mean_db_size_mb() * 1.1
    # LSbM pays a bounded premium over bLSM.
    assert (
        runs["blsm"].mean_db_size_mb()
        <= runs["lsbm"].mean_db_size_mb()
        <= runs["blsm"].mean_db_size_mb() * 1.35
    )
    # bLSM/LevelDB stay roughly flat (no unbounded growth).
    for name in ("blsm", "leveldb"):
        series = runs[name].db_size_mb
        assert series.values[-1] < series.mean() * 1.3