"""Cluster hot-shard skew — RangeHot over range-partitioned shards.

Range partitioning a RangeHot workload concentrates ~98% of reads on
the shards holding the hot range, so one shard saturates while its
siblings idle — the classic hot-shard problem.  This benchmark drives a
4-shard range-partitioned cluster of LevelDB vs LSbM engines at a
moderate and a near-saturation cluster-wide rate and reports per-shard
read p99 and cluster goodput.  The paper's thesis survives sharding:
the hot shard is exactly where compaction-induced cache invalidation
hurts, so LSbM's buffer-cache preservation shows up as a several-fold
lower hot-shard p99 and, at saturation, more goodput with less
shedding.

Knobs: ``REPRO_BENCH_SCALE``/``REPRO_BENCH_JOBS`` as everywhere, plus
``REPRO_BENCH_CLUSTER_DURATION`` (default 2,000 virtual seconds; the
qualitative assertions need at least ~1,000) and
``REPRO_BENCH_CLUSTER_SEED`` (default 0, the ``repro cluster`` CLI
default).
"""

from __future__ import annotations

import json
import os

from repro.cluster import (
    ClusterResult,
    cluster_payload,
    expand_cluster_grid,
    run_cluster_grid,
)
from repro.sim.report import ascii_table

from .common import (
    BENCH_JOBS,
    BENCH_SCALE,
    RESULTS_DIR,
    validate_bench,
    write_report,
)

ENGINES = ("leveldb", "lsbm")
NUM_SHARDS = 4
#: Cluster-wide offered read rates in paper-scale QPS.  At scale 2048
#: the hot shard (holding ~3/4 of the hot range) takes ~73% of reads,
#: so 6k is comfortable and 12k drives that shard into saturation.
RATES = (6000.0, 12000.0)
CLUSTER_DURATION = int(
    os.environ.get("REPRO_BENCH_CLUSTER_DURATION", "2000")
)
CLUSTER_SEED = int(os.environ.get("REPRO_BENCH_CLUSTER_SEED", "0"))


def test_cluster_hot_shard_skew(benchmark):
    specs = expand_cluster_grid(
        list(ENGINES),
        [NUM_SHARDS],
        ["range"],
        list(RATES),
        [CLUSTER_SEED],
        scale=BENCH_SCALE,
        duration_s=CLUSTER_DURATION,
    )
    entries = benchmark.pedantic(
        lambda: run_cluster_grid(specs, jobs=BENCH_JOBS),
        rounds=1,
        iterations=1,
    )
    by_cell: dict[tuple[str, float], ClusterResult] = {}
    for spec, result, _wall in entries:
        by_cell[(spec.engine, spec.read_rate_qps)] = result

    rows = []
    for engine in ENGINES:
        for rate in RATES:
            result = by_cell[(engine, rate)]
            hot = result.hottest_shard()
            shard_p99 = result.shard_read_p99_ms()
            rows.append(
                [
                    engine,
                    f"{rate:g}",
                    f"{result.goodput_qps():.0f}",
                    f"{result.read_imbalance():.2f}x",
                    str(hot),
                    f"{shard_p99[hot]:.0f}",
                    " ".join(f"{p:.0f}" for p in shard_p99),
                    str(result.total_shed),
                ]
            )
    report = "\n".join(
        [
            "Cluster hot-shard skew — RangeHot over "
            f"{NUM_SHARDS} range-partitioned shards",
            f"(scale {BENCH_SCALE}, {CLUSTER_DURATION}s, fifo, "
            f"seed {CLUSTER_SEED})",
            ascii_table(
                [
                    "engine",
                    "offered QPS",
                    "goodput QPS",
                    "imbalance",
                    "hot shard",
                    "hot p99 ms",
                    "per-shard p99 ms",
                    "shed",
                ],
                rows,
            ),
        ]
    )
    write_report("cluster_skew", report)

    payload = cluster_payload("cluster_skew", entries)
    validate_bench(payload)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_cluster_skew.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[bench telemetry written to {path}]")

    for (engine, rate), result in by_cell.items():
        # RangeHot + range partitioning concentrates reads: the hot
        # shard completes more than its siblings combined.
        assert result.read_imbalance() > 2.0, (engine, rate)
        hot = result.hottest_shard()
        hot_reads = result.shards[hot].reads_completed
        assert hot_reads > result.reads_completed - hot_reads, (engine, rate)
        # The hot shard is also where the tail lives.
        shard_p99 = result.shard_read_p99_ms()
        assert shard_p99[hot] == max(shard_p99), (engine, rate)

    # LSbM's preserved buffer cache keeps the hot shard's tail down at
    # every rate…
    for rate in RATES:
        leveldb = by_cell[("leveldb", rate)]
        lsbm = by_cell[("lsbm", rate)]
        assert (
            lsbm.shard_read_p99_ms()[lsbm.hottest_shard()]
            < leveldb.shard_read_p99_ms()[leveldb.hottest_shard()]
        ), rate

    # …and at the saturating rate it also wins on goodput and shedding.
    leveldb_high = by_cell[("leveldb", RATES[1])]
    lsbm_high = by_cell[("lsbm", RATES[1])]
    assert lsbm_high.goodput_qps() > leveldb_high.goodput_qps()
    assert lsbm_high.total_shed < leveldb_high.total_shed
