"""Extension E1 — does the compaction buffer still pay on an SSD?

The paper evaluates on hard disks, where a cache miss costs ~15 ms.  Its
related work (Section VII) surveys SSD-era LSM designs, so a natural
question the paper leaves open: how much of LSbM's benefit survives when
a random read costs ~100 µs?

Measured: the same RangeHot experiment under the HDD and SSD cost models.
On the SSD, invalidation-induced misses are nearly free, so bLSM's
absolute throughput jumps and LSbM's *relative* advantage shrinks toward
1x — quantifying that the compaction buffer is fundamentally a
slow-random-read optimization (the cache-hit-ratio benefit itself
persists, which is what DRAM-cost arguments would still care about).
"""

from __future__ import annotations

from repro.sim.report import ascii_table

from .common import cell, once, run_grid, write_bench, write_report

DURATION = 6000


def _sweep():
    return run_grid(
        {
            (medium, engine): cell(engine, duration=DURATION, base=base)
            for medium, base in (
                ("hdd", "paper_scaled"), ("ssd", "ssd_scaled")
            )
            for engine in ("blsm", "lsbm")
        }
    )


def test_extension_ssd(benchmark):
    runs = once(benchmark, _sweep)
    advantage = {}
    rows = []
    for medium in ("hdd", "ssd"):
        blsm = runs[(medium, "blsm")]
        lsbm = runs[(medium, "lsbm")]
        advantage[medium] = lsbm.mean_throughput() / max(
            1.0, blsm.mean_throughput()
        )
        rows.append(
            [
                medium.upper(),
                f"{blsm.mean_hit_ratio():.3f}",
                f"{lsbm.mean_hit_ratio():.3f}",
                f"{blsm.mean_throughput():,.0f}",
                f"{lsbm.mean_throughput():,.0f}",
                f"{advantage[medium]:.2f}x",
            ]
        )
    report = "\n".join(
        [
            "Extension E1 — HDD vs SSD cost model (beyond the paper)",
            ascii_table(
                [
                    "medium",
                    "bLSM hit",
                    "LSbM hit",
                    "bLSM qps",
                    "LSbM qps",
                    "LSbM advantage",
                ],
                rows,
            ),
        ]
    )
    write_report("extension_ssd", report)
    write_bench("extension_ssd", runs)

    # Cheap random reads lift everyone…
    assert (
        runs[("ssd", "blsm")].mean_throughput()
        > runs[("hdd", "blsm")].mean_throughput()
    )
    # …and compress LSbM's relative advantage toward parity.
    assert advantage["ssd"] < advantage["hdd"]
    assert advantage["ssd"] > 0.8  # It must not *hurt* on SSD.
    # The hit-ratio benefit itself persists on the SSD.
    assert (
        runs[("ssd", "lsbm")].mean_hit_ratio()
        >= runs[("ssd", "blsm")].mean_hit_ratio() - 0.02
    )