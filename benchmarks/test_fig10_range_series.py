"""Figure 10 — range-query throughput over time.

Panel (a): bLSM, K-V store cache, SM-tree; panel (b): LSbM.  RangeHot
100 KB scans under 1,000 OPS writes.  The paper's observations:

* the K-V cache run is flat and low (row cache useless for scans, block
  cache halved);
* SM-tree degrades as sorted tables pile up, recovering a little when a
  level merges, and stays the slowest sorted-structure variant;
* bLSM holds a high line (invalidated data reloads quickly via
  sequential I/O) with compaction-induced dips;
* LSbM holds the highest, steadiest line.
"""

from __future__ import annotations

from repro.sim.report import ascii_table, series_block

from .common import once, run_grid, write_bench, write_report

ENGINES = ("blsm", "blsm+kvcache", "sm", "lsbm")


def test_fig10_range_throughput_series(benchmark):
    runs = once(
        benchmark, lambda: run_grid(engines=ENGINES, scan_mode=True)
    )
    warm = max(1, len(runs["blsm"].throughput_qps) // 10)

    rows = [
        [
            name,
            f"{runs[name].mean_throughput():,.0f}",
            f"{runs[name].throughput_qps.minimum(warm):,.0f}",
            f"{runs[name].throughput_qps.maximum(warm):,.0f}",
        ]
        for name in ENGINES
    ]
    blocks = [
        series_block(
            f"(series) {name} range QPS", runs[name].throughput_qps
        )
        for name in ENGINES
    ]
    report = "\n".join(
        [
            "Figure 10 — range-query throughput over time",
            "(paper: LSbM highest/steadiest; K-V cache flat-low; SM slow)",
            ascii_table(["engine", "mean qps", "min", "max"], rows),
            *blocks,
        ]
    )
    write_report("fig10_range_series", report)
    write_bench("fig10_range_series", runs)

    qps = {name: runs[name].mean_throughput() for name in ENGINES}
    assert qps["lsbm"] == max(qps.values())
    assert qps["blsm+kvcache"] == min(qps.values())
    assert qps["sm"] < qps["blsm"]
