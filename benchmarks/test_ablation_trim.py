"""Ablation A2 — trim threshold (Section IV-B).

Algorithm 2 keeps a file only while ``cached/total >= threshold`` (80% in
the paper).  A lower threshold keeps colder files (more disk rent, more
sorted tables per lookup); a threshold of 1.0 keeps only fully cached
files (minimal rent, at some risk of evicting warm data early).
"""

from __future__ import annotations

from repro.sim.report import ascii_table

from .common import cell, once, run_grid, write_bench, write_report

THRESHOLDS = (0.2, 0.8, 1.0)
DURATION = 6000
#: Multi-block files so the cached fraction can take values strictly
#: between 0 and 1 — with single-block files every positive threshold
#: behaves identically and the sweep would be vacuous.
FILE_KB = 16


def _sweep():
    return run_grid(
        {
            threshold: cell(
                "lsbm",
                duration=DURATION,
                trim_threshold=threshold,
                file_size_kb=FILE_KB,
            )
            for threshold in THRESHOLDS
        }
    )


def test_ablation_trim_threshold(benchmark):
    runs = once(benchmark, _sweep)
    rows = [
        [
            f"{threshold:.1f}",
            f"{runs[threshold].mean_hit_ratio():.3f}",
            f"{runs[threshold].buffer_size_mb.mean():,.0f}",
        ]
        for threshold in THRESHOLDS
    ]
    report = "\n".join(
        [
            "Ablation A2 — trim threshold (Section IV-B, paper uses 0.8)",
            ascii_table(["threshold", "hit ratio", "buffer MB (mean)"], rows),
        ]
    )
    write_report("ablation_trim_threshold", report)
    write_bench("ablation_trim_threshold", runs)

    # Stricter trimming keeps less data in the compaction buffer.
    assert (
        runs[1.0].buffer_size_mb.mean()
        <= runs[0.8].buffer_size_mb.mean()
        <= runs[0.2].buffer_size_mb.mean()
    )
    # The paper's 0.8 keeps most of the benefit of the laxest setting.
    assert runs[0.8].mean_hit_ratio() >= runs[0.2].mean_hit_ratio() - 0.1
