"""Ablation A5 — workload adaptivity of the compaction buffer (§IV-D).

"For workloads with only intensive writes, no data will be loaded into
the buffer cache and all appended data in the compaction buffer will be
removed by the trim process.  For workloads with only intensive reads,
the compaction buffer is empty since data can only be appended ... by
conducting compactions.  For workloads with both intensive reads and
writes, loaded data in the buffer cache can be effectively kept."

Three runs of the same LSbM stack — write-only, read-only, mixed — and
the buffer's steady-state size must be ~zero, zero, and substantial.
"""

from __future__ import annotations

from repro.sim.driver import MixedReadWriteDriver
from repro.sim.experiment import build_engine, preload
from repro.sim.report import ascii_table

from .common import bench_config, once, write_bench, write_report

DURATION = 5000


def _run_mode(mode: str) -> float:
    """Returns the compaction buffer's final live size in KB."""
    config = bench_config()
    if mode == "write-only":
        config = config.replace(read_threads=0)
    elif mode == "read-only":
        config = config.replace(write_rate_pairs_per_s=0.0)
    setup = build_engine("lsbm", config)
    preload(setup)
    driver = MixedReadWriteDriver(setup.engine, config, setup.clock, seed=1)
    driver.run(DURATION)
    engine = setup.engine
    engine.trim.run(engine.buffer[1:])  # Settle in-flight appends.
    return float(engine.compaction_buffer_kb)


def test_ablation_adaptivity(benchmark):
    sizes = once(
        benchmark,
        lambda: {
            mode: _run_mode(mode)
            for mode in ("write-only", "read-only", "mixed")
        },
    )
    rows = [[mode, f"{kb:,.0f}"] for mode, kb in sizes.items()]
    report = "\n".join(
        [
            "Ablation A5 — compaction-buffer size by workload (Section IV-D)",
            ascii_table(["workload", "buffer KB (final)"], rows),
        ]
    )
    write_report("ablation_adaptivity", report)
    write_bench(
        "ablation_adaptivity",
        scalars={
            f"{mode}_buffer_kb": kb for mode, kb in sizes.items()
        },
    )

    assert sizes["read-only"] == 0.0
    # Write-only: only the untrimmable newest tables may remain — at most
    # one incoming plus one completed table per gear level, each bounded
    # by the level feeding it (S0 for B1, S1 for B2; B3 is frozen).
    config = bench_config()
    untrimmable_bound = 2 * config.level0_size_kb * (1 + config.size_ratio)
    assert sizes["write-only"] <= untrimmable_bound
    # Mixed: the buffer holds a real working set.
    assert sizes["mixed"] > sizes["write-only"]
