"""Adaptive runtime control — feedback vs every static memory split.

A static cache/memtable split is a bet on one workload phase.  Under a
time-varying load — diurnal swings in offered rate, alternating
read-heavy and write-heavy pressure — whichever split the operator
picks is wrong for part of the day: cache-heavy stalls through the
write peaks, memtable-heavy wastes the read valleys.  The closed-loop
controller (:mod:`repro.control`) re-divides the same total memory at
runtime from live stall/deferral/hit-ratio sensors, so it can be
memtable-heavy *during* the write peaks and give the memory back when
the tide goes out.

This benchmark drives two time-varying workloads — a read-leaning and a
write-leaning diurnal mix — over the full static grid (default,
memtable-heavy, cache-heavy; all the same total memory) plus both
feedback policies, and asserts the ``rules`` controller strictly beats
the *best* static configuration on goodput or read p99 on every
workload.  That is the subsystem's reason to exist: no single static
point wins both phases, the feedback loop does.

Knobs: ``REPRO_BENCH_SCALE``/``REPRO_BENCH_JOBS`` as everywhere, plus
``REPRO_BENCH_ADAPT_DURATION`` (default 600 virtual seconds — ~1.5
diurnal periods, enough for the controller to converge and the phases
to differ) and ``REPRO_BENCH_ADAPT_SEED`` (default 0).
"""

from __future__ import annotations

import json
import os

from repro.config import SystemConfig
from repro.serve import ServeResult
from repro.serve.spec import ServiceSpec
from repro.sim.report import ascii_table
from repro.sim.sweep import run_sweep

from .common import (
    BENCH_JOBS,
    BENCH_SCALE,
    RESULTS_DIR,
    validate_bench,
    write_report,
)

ADAPT_DURATION = int(os.environ.get("REPRO_BENCH_ADAPT_DURATION", "600"))
ADAPT_SEED = int(os.environ.get("REPRO_BENCH_ADAPT_SEED", "0"))
CONTROL_INTERVAL_S = 20

#: The two time-varying offered loads (paper-scale QPS, sinusoidal
#: rate with the default ±60% diurnal swing): one leaning on reads,
#: one leaning on writes, both near the warm-capacity knee so the
#: peaks genuinely overload the write path.
WORKLOADS = {
    "diurnal-read": dict(read_rate_qps=8000.0, write_rate_qps=10000.0),
    "diurnal-write": dict(read_rate_qps=6000.0, write_rate_qps=20000.0),
}


def memory_splits(config: SystemConfig) -> dict[str, tuple]:
    """The static cache/memtable divisions of one total memory budget.

    Every split conserves ``cache_size_kb + level0_size_kb`` so the
    statics and the controller all manage the same bytes — the
    comparison is purely about *where* they sit.
    """
    total = config.cache_size_kb + config.level0_size_kb
    memtable_heavy = config.level0_size_kb * 4
    cache_heavy = max(config.file_size_kb, config.level0_size_kb // 3)
    return {
        "static-default": (),
        "static-memtable-heavy": (
            ("cache_size_kb", total - memtable_heavy),
            ("level0_size_kb", memtable_heavy),
        ),
        "static-cache-heavy": (
            ("cache_size_kb", total - cache_heavy),
            ("level0_size_kb", cache_heavy),
        ),
    }


def build_specs() -> dict[tuple[str, str], ServiceSpec]:
    """(workload, variant) → spec for the statics × controllers grid."""
    splits = memory_splits(SystemConfig.paper_scaled(BENCH_SCALE))
    specs: dict[tuple[str, str], ServiceSpec] = {}
    for workload, rates in WORKLOADS.items():
        common = dict(
            engine="lsbm",
            scale=BENCH_SCALE,
            duration_s=ADAPT_DURATION,
            seed=ADAPT_SEED,
            arrival="diurnal",
            **rates,
        )
        for variant, overrides in splits.items():
            specs[(workload, variant)] = ServiceSpec(
                overrides=overrides, **common
            )
        for controller in ("rules", "gradient"):
            specs[(workload, controller)] = ServiceSpec(
                controller=controller,
                control_interval_s=CONTROL_INTERVAL_S,
                **common,
            )
    return specs


def test_adaptive_controller(benchmark):
    specs = build_specs()
    order = list(specs)
    outcome = benchmark.pedantic(
        lambda: run_sweep(list(specs.values()), jobs=BENCH_JOBS),
        rounds=1,
        iterations=1,
    )
    by_label = {run.spec.label(): run.result for run in outcome.outcomes}
    results: dict[tuple[str, str], ServeResult] = {
        key: by_label[spec.label()] for key, spec in specs.items()
    }

    rows = []
    for workload, variant in order:
        result = results[(workload, variant)]
        rows.append(
            [
                workload,
                variant,
                f"{result.goodput_qps():.0f}",
                f"{result.class_percentile_ms('readers', 99):.0f}",
                f"{result.total_shed + result.total_deferred}",
                f"{len(result.control_decisions)}",
            ]
        )
    report = "\n".join(
        [
            "Adaptive runtime control — feedback vs static memory splits",
            f"(scale {BENCH_SCALE}, {ADAPT_DURATION}s, diurnal arrivals, "
            f"seed {ADAPT_SEED}, control interval {CONTROL_INTERVAL_S}s)",
            ascii_table(
                [
                    "workload",
                    "variant",
                    "goodput QPS",
                    "read p99 ms",
                    "shed+deferred",
                    "decisions",
                ],
                rows,
            ),
        ]
    )
    write_report("adaptive_controller", report)

    payload = outcome.to_payload("adaptive_controller")
    validate_bench(payload)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_adaptive_controller.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[bench telemetry written to {path}]")

    statics = [v for v in memory_splits(SystemConfig.paper_scaled(BENCH_SCALE))]
    for workload in WORKLOADS:
        # Both feedback policies actually closed the loop…
        for controller in ("rules", "gradient"):
            controlled = results[(workload, controller)]
            assert controlled.control_decisions, (
                f"{controller} made no decisions on {workload}"
            )
            assert controlled.event_counts.get("ControlDecision", 0) == len(
                controlled.control_decisions
            )
        # …and the rules controller strictly beats the *best* static
        # split on goodput or read tail — on every time-varying
        # workload, against every static point of the same total memory.
        rules = results[(workload, "rules")]
        best_static_goodput = max(
            results[(workload, v)].goodput_qps() for v in statics
        )
        best_static_p99 = min(
            results[(workload, v)].class_percentile_ms("readers", 99)
            for v in statics
        )
        assert (
            rules.goodput_qps() > best_static_goodput
            or rules.class_percentile_ms("readers", 99) < best_static_p99
        ), (
            f"{workload}: rules goodput {rules.goodput_qps():.0f} vs best "
            f"static {best_static_goodput:.0f}; p99 "
            f"{rules.class_percentile_ms('readers', 99):.0f} vs best "
            f"static {best_static_p99:.0f}"
        )
        # The adaptive run also never does worse than the *default*
        # static split on either axis (it starts from that very point).
        default = results[(workload, "static-default")]
        assert rules.goodput_qps() > default.goodput_qps()
        assert rules.class_percentile_ms("readers", 99) <= (
            default.class_percentile_ms("readers", 99)
        )
