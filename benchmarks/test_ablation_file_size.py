"""Ablation A1 — compaction-buffer file size vs trim precision (§IV-C).

The paper's argument for the super-file layer: the underlying tree wants
*large* compaction units (fewer I/Os per merged byte), while the
compaction buffer wants *small* trim units — "the file with a larger key
range has a higher possibility to contain both frequently and
infrequently visited data".

This is a deterministic micro-benchmark of exactly that trade-off: a
buffer table covers a key space whose first 40% is hot (fully cached);
the trim process (80% threshold) then decides file by file.  Files that
straddle the hot/cold boundary — more of them, proportionally, as files
grow — are mis-classified, so the *retention error* against the ideal
(keep the hot bytes, drop the cold bytes) grows with file size, while the
underlying tree's compaction I/O count shrinks.  That tension is why
LSbM compacts super-files but trims files.
"""

from __future__ import annotations

from repro.clock import VirtualClock
from repro.config import SystemConfig
from repro.core.compaction_buffer import BufferLevel
from repro.core.trim import TrimProcess
from repro.sim.report import ascii_table
from repro.sstable.builder import TableBuilder
from repro.sstable.entry import Entry
from repro.sstable.sorted_table import SortedTable
from repro.sstable.sstable import FileIdSource
from repro.sstable.superfile import SuperFileIdSource
from repro.storage.disk import SimulatedDisk

from .common import once, write_bench, write_report

KEYSPACE = 4096
HOT_KEYS = 1640  # ~40% hot; deliberately not aligned to file boundaries.
FILE_SIZES_KB = (8, 32, 128)


def _trim_error(file_size_kb: int) -> tuple[int, int, float]:
    """Returns (kept_kb, ideal_kb, compaction units per level of data)."""
    config = SystemConfig.tiny().replace(
        file_size_kb=file_size_kb,
        level0_size_kb=max(file_size_kb, 64),
        unique_keys=KEYSPACE,
    )
    disk = SimulatedDisk(VirtualClock(), config.seq_bandwidth_kb_per_s)
    builder = TableBuilder(config, disk, FileIdSource(), SuperFileIdSource())
    files = builder.build(iter(Entry(k, 1) for k in range(KEYSPACE)))

    # Simulate a cache that holds exactly the hot prefix of the key space.
    cached: dict[int, int] = {}
    for file in files:
        cached[file.file_id] = sum(
            1 for block in file.blocks if block.max_key < HOT_KEYS
        )

    level = BufferLevel(1)
    level.tables = [SortedTable(), SortedTable(files)]  # Old table trimmed.
    trim = TrimProcess(
        config,
        cached_blocks=lambda fid: cached.get(fid, 0),
        remove_file=lambda f: f.mark_removed(),
    )
    trim.run([level])

    kept_kb = sum(f.size_kb for f in files if not f.removed)
    ideal_kb = HOT_KEYS * config.pair_size_kb
    units_per_level = KEYSPACE * config.pair_size_kb / file_size_kb
    return kept_kb, ideal_kb, units_per_level


def test_ablation_file_size_trim_precision(benchmark):
    results = once(
        benchmark, lambda: {s: _trim_error(s) for s in FILE_SIZES_KB}
    )
    rows = []
    errors = {}
    for size in FILE_SIZES_KB:
        kept, ideal, units = results[size]
        errors[size] = abs(kept - ideal)
        rows.append(
            [
                f"{size} KB",
                f"{kept:,}",
                f"{ideal:,}",
                f"{errors[size]:,}",
                f"{units:,.0f}",
            ]
        )
    report = "\n".join(
        [
            "Ablation A1 — file size: trim precision vs compaction units",
            "(paper §IV-C: buffer wants small files, the tree wants large ones)",
            ascii_table(
                [
                    "file size",
                    "kept KB",
                    "ideal KB",
                    "retention error KB",
                    "compaction ops/level",
                ],
                rows,
            ),
        ]
    )
    write_report("ablation_file_size", report)
    write_bench(
        "ablation_file_size",
        scalars=(
            {
                f"retention_error_kb_{size}kb": float(errors[size])
                for size in FILE_SIZES_KB
            }
            | {
                f"compaction_units_{size}kb": results[size][2]
                for size in FILE_SIZES_KB
            }
        ),
    )

    # Bigger trim units can only blur the hot/cold boundary…
    assert errors[FILE_SIZES_KB[0]] <= errors[FILE_SIZES_KB[-1]]
    assert errors[FILE_SIZES_KB[-1]] > 0
    # …while shrinking the underlying tree's per-level compaction count.
    assert results[FILE_SIZES_KB[-1]][2] < results[FILE_SIZES_KB[0]][2]
