"""Ablation A6 — write-pacing: gear scheduling vs bursty compaction.

LSbM inherits bLSM's gear scheduler precisely because of write latency:
"data can be inserted into C0 with a predictable latency" (Section IV-A).
A LevelDB-style tree instead does all the compaction work a flush demands
at once, stalling concurrent work in bursts.

We quantify pacing as the distribution of per-second background-I/O
utilization: a gear-scheduled tree spreads compaction work (low p99 given
its mean), while LevelDB's utilization is near-zero most seconds and
saturated in the flush seconds (extreme p99/mean ratio).
"""

from __future__ import annotations

from repro.sim.report import ascii_table

from .common import once, run_grid, write_bench, write_report

ENGINES = ("leveldb", "blsm", "lsbm")
DURATION = 6000


def _percentile(values: list[float], percentile: float) -> float:
    ordered = sorted(values)
    rank = min(len(ordered) - 1, round(percentile / 100 * (len(ordered) - 1)))
    return ordered[rank]


def test_ablation_write_stalls(benchmark):
    runs = once(
        benchmark, lambda: run_grid(engines=ENGINES, duration=DURATION)
    )
    stats = {}
    rows = []
    for name in ENGINES:
        series = runs[name].disk_utilization.values
        mean = sum(series) / len(series)
        p99 = _percentile(series, 99)
        saturated = sum(1 for value in series if value >= 0.99) / len(series)
        stats[name] = (mean, p99, saturated)
        rows.append(
            [name, f"{mean:.3f}", f"{p99:.3f}", f"{saturated:.1%}"]
        )
    report = "\n".join(
        [
            "Ablation A6 — compaction pacing (gear vs bursty)",
            "(per-second background-I/O utilization; §IV-A's motivation)",
            ascii_table(
                ["engine", "mean util", "p99 util", "saturated seconds"], rows
            ),
        ]
    )
    write_report("ablation_write_stalls", report)
    write_bench("ablation_write_stalls", runs)

    # All engines move the same data volume, so mean utilization is in
    # the same band…
    means = [stats[name][0] for name in ENGINES]
    assert max(means) < 5 * max(min(means), 1e-6)
    # …but LevelDB concentrates it in bursts: it saturates the disk in
    # more seconds than the gear-scheduled trees.
    assert stats["leveldb"][2] >= stats["blsm"][2]
    assert stats["leveldb"][2] >= stats["lsbm"][2]