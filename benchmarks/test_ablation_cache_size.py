"""Ablation A3 — DB buffer cache size.

The paper fixes the cache at 6 GB (30% of the data set).  This sweep
varies the cache-to-data ratio and checks two expectations:

* everyone's hit ratio grows with cache size, and
* LSbM's protection matters across the range — it never loses to bLSM,
  and it wins clearly once the cache can actually hold the hot set.
"""

from __future__ import annotations

from repro.sim.report import ascii_table

from .common import bench_config, cell, once, run_grid, write_bench, write_report

#: Fractions chosen so capacity actually binds at the low end (the hot
#: range is 15% of the data; at 30%+ the cache holds it comfortably).
CACHE_FRACTIONS = (0.05, 0.15, 0.3)
DURATION = 6000


def _sweep():
    base = bench_config()
    return run_grid(
        {
            (engine, fraction): cell(
                engine,
                duration=DURATION,
                cache_size_kb=max(
                    base.block_size_kb, int(base.dataset_kb * fraction)
                ),
            )
            for fraction in CACHE_FRACTIONS
            for engine in ("blsm", "lsbm")
        }
    )


def test_ablation_cache_size(benchmark):
    runs = once(benchmark, _sweep)
    rows = []
    for fraction in CACHE_FRACTIONS:
        rows.append(
            [
                f"{fraction:.0%}",
                f"{runs[('blsm', fraction)].mean_hit_ratio():.3f}",
                f"{runs[('lsbm', fraction)].mean_hit_ratio():.3f}",
                f"{runs[('lsbm', fraction)].mean_throughput():,.0f}",
            ]
        )
    report = "\n".join(
        [
            "Ablation A3 — cache size sweep (paper fixes cache/data = 30%)",
            ascii_table(
                ["cache/data", "bLSM hit", "LSbM hit", "LSbM qps"], rows
            ),
        ]
    )
    write_report("ablation_cache_size", report)
    write_bench("ablation_cache_size", runs)

    # More cache never hurts.
    for engine in ("blsm", "lsbm"):
        assert (
            runs[(engine, 0.3)].mean_hit_ratio()
            >= runs[(engine, 0.05)].mean_hit_ratio() - 0.03
        )
    # LSbM holds its advantage at the paper's operating point (30%).
    # Below the hot-set size the comparison flips: invalidation
    # protection cannot help a cache that cannot hold the hot set anyway,
    # while LSbM's buffer blocks and tree blocks are distinct cache
    # entries competing for the scarce space — an operating envelope the
    # paper does not explore (recorded in EXPERIMENTS.md).
    assert (
        runs[("lsbm", 0.3)].mean_hit_ratio()
        >= runs[("blsm", 0.3)].mean_hit_ratio() - 0.02
    )
