"""Tracing overhead — what the telemetry plane costs the simulator.

The tracing layer promises a strict cost ladder: ``off`` keeps the
PR-6 counting-only hot path untouched (no tracer, no flight recorder,
the event bus stays in counting mode), ``exemplar`` adds the O(1)
tail-sampler admission test plus the flight recorder's ring, and
``full`` additionally retains every request's span stages up to the
exemplar cap.  This benchmark measures simulated ops per real second
for the same serve workload at all three modes and asserts the budget
EXPERIMENTS.md quotes: exemplar tracing costs at most 10% of the
tracing-off throughput.

Knobs: ``REPRO_BENCH_SCALE`` as everywhere, plus
``REPRO_BENCH_TRACE_DURATION`` (default 1,000 virtual seconds — the
overhead ratio stabilises long before the SLO benchmark's horizon) and
``REPRO_BENCH_TRACE_REPS`` (default 3; the best rep per mode is scored,
which shrugs off one-off scheduler hiccups on shared CI runners).
"""

from __future__ import annotations

import os
import time

from repro.serve.service import execute_serve
from repro.serve.spec import ServiceSpec
from repro.sim.report import ascii_table

from .common import BENCH_SCALE, write_bench, write_report

TRACE_DURATION = int(os.environ.get("REPRO_BENCH_TRACE_DURATION", "1000"))
TRACE_REPS = int(os.environ.get("REPRO_BENCH_TRACE_REPS", "3"))
TRACE_RATE = 8000.0
#: Exemplar-mode tracing may cost at most this fraction of the
#: tracing-off throughput (the ISSUE's acceptance budget).
EXEMPLAR_BUDGET = 0.10

MODES = ("off", "exemplar", "full")


def _spec(mode: str) -> ServiceSpec:
    return ServiceSpec(
        engine="lsbm",
        scale=BENCH_SCALE,
        duration_s=TRACE_DURATION,
        read_rate_qps=TRACE_RATE,
        seed=0,
        trace=mode,
    )


def _measure(mode: str) -> dict[str, float]:
    """Best-of-``TRACE_REPS`` sim-ops/s for one trace mode."""
    best_ops_per_s = 0.0
    best_wall_s = float("inf")
    exemplars = 0
    for _ in range(TRACE_REPS):
        started = time.perf_counter()
        result = execute_serve(_spec(mode))
        wall_s = time.perf_counter() - started
        sim_ops = result.reads_completed + result.writes_applied
        ops_per_s = sim_ops / wall_s if wall_s > 0 else 0.0
        if ops_per_s > best_ops_per_s:
            best_ops_per_s = ops_per_s
            best_wall_s = wall_s
        exemplars = len(result.exemplars)
    return {
        "sim_ops_per_s": best_ops_per_s,
        "wall_clock_s": best_wall_s,
        "exemplars": float(exemplars),
    }


def test_tracing_overhead(benchmark):
    measured = benchmark.pedantic(
        lambda: {mode: _measure(mode) for mode in MODES},
        rounds=1,
        iterations=1,
    )
    off = measured["off"]["sim_ops_per_s"]
    assert off > 0.0

    rows = []
    scalars: dict[str, float] = {}
    for mode in MODES:
        entry = measured[mode]
        relative = entry["sim_ops_per_s"] / off
        scalars[f"{mode}_sim_ops_per_s"] = entry["sim_ops_per_s"]
        scalars[f"{mode}_relative"] = relative
        scalars[f"{mode}_exemplars"] = entry["exemplars"]
        rows.append(
            [
                mode,
                f"{entry['sim_ops_per_s']:.0f}",
                f"{relative:.3f}",
                f"{entry['exemplars']:.0f}",
            ]
        )
    report = "\n".join(
        [
            "Tracing overhead — sim-ops/s by trace mode (lsbm, serve)",
            f"(scale {BENCH_SCALE}, {TRACE_DURATION}s, "
            f"{TRACE_RATE:g} qps, best of {TRACE_REPS})",
            ascii_table(
                ["mode", "sim ops/s", "vs off", "exemplars"], rows
            ),
        ]
    )
    write_report("tracing_overhead", report)
    write_bench("tracing_overhead", scalars=scalars)

    # Off mode retains nothing; traced modes retain exemplars, and full
    # retains at least as many as the tail+uniform sampler keeps.
    assert measured["off"]["exemplars"] == 0
    assert measured["exemplar"]["exemplars"] > 0
    assert (
        measured["full"]["exemplars"] >= measured["exemplar"]["exemplars"]
    )

    # The acceptance budget: exemplar tracing keeps at least 90% of the
    # tracing-off throughput (best-of-N absorbs CI timer noise).
    assert measured["exemplar"]["sim_ops_per_s"] >= (
        (1.0 - EXEMPLAR_BUDGET) * off
    ), (
        f"exemplar tracing too slow: "
        f"{measured['exemplar']['sim_ops_per_s']:.0f} ops/s vs "
        f"off {off:.0f} ops/s"
    )
