"""Ablation A4 — size ratio r and the Section II-B write-traffic model.

The paper derives that a k-level balanced LSM-tree writes
``(r + 1) / 2 * k`` bytes to disk per byte inserted.  This bench measures
the simulator's actual compaction traffic at two size ratios and prints
model vs measured; the assertion checks the measured amplification stays
within the model's band and ranks the ratios the way the model does for
per-level merge cost.
"""

from __future__ import annotations

import random

from repro.analysis.model import write_amplification
from repro.cache.db_cache import DBBufferCache
from repro.clock import VirtualClock
from repro.config import SystemConfig
from repro.lsm.blsm import BLSMTree
from repro.sim.report import ascii_table
from repro.storage.disk import SimulatedDisk

from .common import once, write_bench, write_report

SIZE_RATIOS = (4, 10)
PAIRS = 20_000


def _measure(size_ratio: int) -> float:
    # The model assumes a balanced tree whose last level can absorb the
    # data set, so size the key space to the last level's capacity.
    base = SystemConfig.tiny()
    keyspace = base.level0_size_kb * size_ratio**base.num_disk_levels
    config = base.replace(size_ratio=size_ratio, unique_keys=keyspace)
    clock = VirtualClock()
    disk = SimulatedDisk(clock, config.seq_bandwidth_kb_per_s)
    engine = BLSMTree(config, clock, disk, db_cache=DBBufferCache(config.cache_blocks))
    rng = random.Random(42)
    for _ in range(PAIRS):
        engine.put(rng.randrange(keyspace))
    return disk.stats.seq_write_kb / (PAIRS * config.pair_size_kb)


def test_ablation_size_ratio(benchmark):
    measured = once(
        benchmark, lambda: {r: _measure(r) for r in SIZE_RATIOS}
    )
    config = SystemConfig.tiny()
    rows = [
        [
            r,
            f"{write_amplification(r, config.num_disk_levels):.1f}",
            f"{measured[r]:.1f}",
        ]
        for r in SIZE_RATIOS
    ]
    report = "\n".join(
        [
            "Ablation A4 — write amplification vs the (r+1)k/2 model",
            ascii_table(["size ratio r", "model", "measured"], rows),
        ]
    )
    write_report("ablation_size_ratio", report)
    write_bench(
        "ablation_size_ratio",
        scalars={f"write_amp_r{r}": measured[r] for r in SIZE_RATIOS},
    )

    for r in SIZE_RATIOS:
        model = write_amplification(r, config.num_disk_levels)
        assert 1.0 < measured[r] <= model * 1.5
