"""Extension E2 — zipfian skew instead of the paper's spatial hot range.

RangeHot's contiguous hot range is the best case for LSbM: hot blocks are
entirely hot, so the 80%-cached trim test keeps exactly the right files.
Scrambled-zipfian reads scatter the hot keys across the key space, with
two measurable consequences:

* **the advantage compresses** — per-block caching is diluted for both
  engines and the invalidation-protection matters less (measured at the
  default file size, where trim granularity is per-block);
* **trim starves** — with multi-block files, a file holding one warm key
  among cold neighbours fails the cached-fraction test, so the buffer
  retains less under zipfian than under RangeHot.

Both quantify that the paper's design targets *spatial* locality
specifically — which its own Section I motivation ("workloads with high
spatial locality") states up front.
"""

from __future__ import annotations

from repro.sim.driver import MixedReadWriteDriver
from repro.sim.experiment import build_engine, preload
from repro.sim.report import ascii_table
from repro.workload.zipf_reads import ZipfianReadWorkload

from .common import bench_config, once, timed, write_bench, write_report

DURATION = 8000
#: Multi-block files for the trim-dilution measurement: a file must be
#: able to be *partially* hot for the dilution effect to exist.
DILUTION_FILE_KB = 16


def _run(engine_name: str, spatial: bool, **config_overrides):
    config = bench_config(**config_overrides)
    setup = build_engine(engine_name, config)
    preload(setup)
    workload = None if spatial else ZipfianReadWorkload(config)
    driver = MixedReadWriteDriver(
        setup.engine, config, setup.clock, workload=workload, seed=1
    )
    result = timed(lambda: driver.run(DURATION))
    buffer_kb = setup.engine.compaction_buffer_kb or 0
    return result, buffer_kb


def _sweep():
    runs = {}
    for skew, spatial in (("rangehot", True), ("zipfian", False)):
        for engine in ("blsm", "lsbm"):
            runs[(skew, engine)] = _run(engine, spatial)
        # The dilution row only needs LSbM's buffer size.
        runs[(skew, "lsbm-dilution")] = _run(
            "lsbm", spatial, file_size_kb=DILUTION_FILE_KB
        )
    return runs


def test_extension_zipfian(benchmark):
    runs = once(benchmark, _sweep)
    rows = []
    advantage = {}
    dilution_buffer = {}
    for skew in ("rangehot", "zipfian"):
        blsm, _ = runs[(skew, "blsm")]
        lsbm, _ = runs[(skew, "lsbm")]
        _, dilution_buffer[skew] = runs[(skew, "lsbm-dilution")]
        advantage[skew] = lsbm.mean_throughput() / max(
            1.0, blsm.mean_throughput()
        )
        rows.append(
            [
                skew,
                f"{blsm.mean_hit_ratio():.3f}",
                f"{lsbm.mean_hit_ratio():.3f}",
                f"{advantage[skew]:.2f}x",
                f"{dilution_buffer[skew]:,}",
            ]
        )
    report = "\n".join(
        [
            "Extension E2 — spatial (RangeHot) vs scattered (zipfian) skew",
            ascii_table(
                [
                    "read skew",
                    "bLSM hit",
                    "LSbM hit",
                    "LSbM advantage",
                    f"buffer KB @{DILUTION_FILE_KB}KB files",
                ],
                rows,
            ),
        ]
    )
    write_report("extension_zipfian", report)
    write_bench(
        "extension_zipfian",
        {key: result for key, (result, _) in runs.items()},
        scalars={
            f"dilution_buffer_kb_{skew}": float(dilution_buffer[skew])
            for skew in ("rangehot", "zipfian")
        },
    )

    # Scattered skew compresses the advantage…
    assert advantage["zipfian"] < advantage["rangehot"]
    assert advantage["zipfian"] > 0.85  # …without turning into a loss.
    # With partially-hot files possible, zipfian starves the trim test
    # relative to the spatial workload.
    assert dilution_buffer["zipfian"] < dilution_buffer["rangehot"]