"""Figure 9 — average hit ratio and random-read throughput bars.

Paper values (RangeHot point reads under 1,000 OPS writes):

==================  =========  ===============
engine              hit ratio  throughput (QPS)
==================  =========  ===============
bLSM                0.813      2,440
LevelDB             ~0.88      5,793
incremental warmup  0.578      (low/churning)
LSbM                0.953      6,899
==================  =========  ===============

The shape to hold: LSbM achieves the best hit ratio and the best
throughput; bLSM is the weakest leveled baseline; the warmup heuristic
does not reach LSbM.
"""

from __future__ import annotations

from repro.sim.report import ascii_table, format_qps

from .common import once, run_grid, write_bench, write_report

PAPER = {
    "blsm": (0.813, 2440),
    "leveldb": (0.879, 5793),
    "blsm+warmup": (0.578, None),
    "lsbm": (0.953, 6899),
}


def test_fig09_random_read_summary(benchmark):
    runs = once(benchmark, lambda: run_grid(engines=tuple(PAPER)))

    rows = []
    for name, (paper_hit, paper_qps) in PAPER.items():
        run = runs[name]
        rows.append(
            [
                name,
                f"{paper_hit:.3f}",
                f"{run.mean_hit_ratio():.3f}",
                format_qps(paper_qps) if paper_qps else "n/a",
                format_qps(run.mean_throughput()),
            ]
        )
    report = "\n".join(
        [
            "Figure 9 — RangeHot point reads: paper vs measured",
            ascii_table(
                ["engine", "hit(paper)", "hit(ours)", "qps(paper)", "qps(ours)"],
                rows,
            ),
        ]
    )
    write_report("fig09_random_read_summary", report)
    write_bench("fig09_random_read_summary", runs)

    hit = {name: runs[name].mean_hit_ratio() for name in PAPER}
    qps = {name: runs[name].mean_throughput() for name in PAPER}
    # LSbM sustains the best hit ratio.
    assert hit["lsbm"] == max(hit.values())
    # bLSM is the weakest of the leveled trees (paper: 2,440 vs 5,793).
    assert qps["blsm"] < qps["leveldb"]
    # LSbM clearly improves over bLSM (paper factor ~2.8x; require >1.3x).
    assert qps["lsbm"] > 1.3 * qps["blsm"]
    # LSbM out-reads every variant.  For the warmup heuristic the
    # comparison is over the steady-state second half: warming enjoys a
    # transient pre-fetch honeymoon while the cache is still unpressured,
    # and its churn (Fig. 8c) only dominates once the sticky Hot marks
    # have cascaded into the lower levels (see EXPERIMENTS.md).
    def second_half(name):
        values = runs[name].throughput_qps.values
        tail = values[len(values) // 2 :]
        return sum(tail) / len(tail)

    assert qps["lsbm"] > qps["leveldb"]
    assert second_half("lsbm") > second_half("blsm+warmup")
