"""Figure 11 — range-query throughput bars.

Paper values: bLSM 1,066 QPS; K-V store cache 68; SM-tree 228; LSbM 1,134.

Shape to hold: LSbM > bLSM > SM > K-V cache — the sorted underlying tree
serves disk ranges efficiently while the compaction buffer keeps the hot
range cached; the row cache is the worst possible range design.
"""

from __future__ import annotations

from repro.sim.report import ascii_table, format_qps

from .common import once, run_grid, write_bench, write_report

PAPER = {
    "blsm": 1066,
    "blsm+kvcache": 68,
    "sm": 228,
    "lsbm": 1134,
}


def test_fig11_range_summary(benchmark):
    runs = once(
        benchmark, lambda: run_grid(engines=tuple(PAPER), scan_mode=True)
    )
    rows = [
        [
            name,
            format_qps(paper_qps),
            format_qps(runs[name].mean_throughput()),
            f"{runs[name].mean_hit_ratio():.3f}",
        ]
        for name, paper_qps in PAPER.items()
    ]
    report = "\n".join(
        [
            "Figure 11 — range-query throughput: paper vs measured",
            ascii_table(
                ["engine", "qps(paper)", "qps(ours)", "hit(ours)"], rows
            ),
        ]
    )
    write_report("fig11_range_summary", report)
    write_bench("fig11_range_summary", runs)

    qps = {name: runs[name].mean_throughput() for name in PAPER}
    assert qps["lsbm"] == max(qps.values())
    assert qps["lsbm"] > qps["blsm"]
    assert qps["sm"] < qps["blsm"]
    assert qps["blsm+kvcache"] == min(qps.values())
    # The K-V cache collapse is dramatic in the paper (68 vs 1066);
    # require at least a 1.5x deficit against bLSM.
    assert qps["blsm+kvcache"] * 1.5 < qps["blsm"]
