"""Figure 13 — average database size bars.

Paper values (MB): bLSM 32,465; LevelDB 32,675; SM 47,669; LSbM 33,896.
I.e. LSbM costs about +4% over bLSM/LevelDB while SM's lazy compaction
costs about +50%.

Shape to hold: bLSM ≈ LevelDB < LSbM < SM, with LSbM's premium small
(single-digit-to-low-tens percent at simulation scale) and SM's the
largest of the group.
"""

from __future__ import annotations

from repro.sim.report import ascii_table

from .common import SIZE_DURATION, once, run_grid, write_bench, write_report

PAPER_MB = {
    "blsm": 32_465,
    "leveldb": 32_675,
    "sm": 47_669,
    "lsbm": 33_896,
}


def test_fig13_db_size_summary(benchmark):
    runs = once(
        benchmark,
        lambda: run_grid(
            engines=tuple(PAPER_MB), scan_mode=True, duration=SIZE_DURATION
        ),
    )
    measured = {name: runs[name].mean_db_size_mb() for name in PAPER_MB}
    baseline = measured["blsm"]
    rows = [
        [
            name,
            f"{PAPER_MB[name]:,}",
            f"{PAPER_MB[name] / PAPER_MB['blsm'] - 1:+.1%}",
            f"{measured[name]:,.0f}",
            f"{measured[name] / baseline - 1:+.1%}",
        ]
        for name in PAPER_MB
    ]
    report = "\n".join(
        [
            "Figure 13 — average database size: paper vs measured",
            ascii_table(
                [
                    "engine",
                    "MB(paper)",
                    "vs bLSM(paper)",
                    "MB(ours)",
                    "vs bLSM(ours)",
                ],
                rows,
            ),
        ]
    )
    write_report("fig13_db_size_summary", report)
    write_bench("fig13_db_size_summary", runs)

    # bLSM and LevelDB are the lean baselines, within a few percent.
    assert abs(measured["leveldb"] / baseline - 1) < 0.10
    # LSbM's compaction buffer costs extra, but bounded.
    assert baseline <= measured["lsbm"] <= baseline * 1.35
    # SM retains obsolete data that leveled trees drop.  (The paper's
    # +47% pile does not fully materialize at simulation scale — our SM
    # measures a few percent — so the assertion is on the direction, not
    # on SM being the absolute maximum; see EXPERIMENTS.md.)
    assert measured["sm"] > measured["leveldb"]
    assert measured["sm"] > baseline