"""Figure 8 — hit ratio over time on RangeHot point reads + writes.

Four panels: (a) bLSM, (b) LevelDB, (c) bLSM with incremental warming up,
(d) LSbM.  The paper's observations to reproduce:

* bLSM (8a): the hit ratio "goes up and down" — big periodic drops from
  the C1→C2 merge rounds, worsening as |C2| grows;
* LevelDB (8b): same churn with a longer period on the hot range;
* warmup (8c): churn persists — the 2% of out-of-range reads seed
  amplified warm-up floods that evict hot data;
* LSbM (8d): "keeps steady and high" — the compaction buffer absorbs the
  invalidations (level 3's buffer is frozen, B2 mitigates the drain).
"""

from __future__ import annotations

from repro.sim.report import ascii_table, series_block

from .common import once, run_grid, write_bench, write_report

ENGINES = ("blsm", "leveldb", "blsm+warmup", "lsbm")


def _runs():
    return run_grid(engines=ENGINES)


def test_fig08_hit_ratio_series(benchmark):
    runs = once(benchmark, _runs)
    warm = max(1, len(runs["blsm"].hit_ratio) // 10)

    rows = []
    for name in ENGINES:
        series = runs[name].hit_ratio
        rows.append(
            [
                name,
                f"{runs[name].mean_hit_ratio():.3f}",
                f"{series.minimum(warm):.3f}",
                f"{series.stddev(warm):.3f}",
                series.dips_below(0.7, warm),
            ]
        )
    blocks = [
        series_block(f"(panel) {name} hit ratio", runs[name].hit_ratio)
        for name in ENGINES
    ]
    report = "\n".join(
        [
            "Figure 8 — hit ratio changes on RangeHot workloads",
            "(paper: bLSM/LevelDB/warmup oscillate; LSbM steady and high)",
            ascii_table(
                ["engine", "mean hit", "min hit", "stddev", "dips<0.7"], rows
            ),
            *blocks,
        ]
    )
    write_report("fig08_hit_ratio_series", report)
    write_bench("fig08_hit_ratio_series", runs)

    lsbm, blsm = runs["lsbm"], runs["blsm"]
    # (d) beats (a) on both level and stability.
    assert lsbm.mean_hit_ratio() > blsm.mean_hit_ratio()
    assert lsbm.hit_ratio.stddev(warm) < blsm.hit_ratio.stddev(warm) * 1.2
    # The baselines churn: repeated dips below their own mean.
    assert blsm.hit_ratio.dips_below(0.7, warm) >= 1
    assert runs["leveldb"].hit_ratio.dips_below(0.7, warm) >= 1
