#!/usr/bin/env python3
"""Quickstart: an LSbM-tree in five minutes.

Builds an LSbM engine on the simulated substrate, writes and reads some
data, runs a few virtual seconds of housekeeping, and prints what the
engine did under the hood — compactions, the compaction buffer, cache
behaviour.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import SystemConfig, build_engine, preload


def main() -> None:
    # A paper-shaped configuration at 1/4096 scale: same level ratios,
    # same fill periods, 5,120 unique keys. ``build_engine`` wires the
    # virtual clock, simulated disk and DB buffer cache for us.
    config = SystemConfig.paper_scaled(4096)
    setup = build_engine("lsbm", config)
    engine, clock, cache = setup.engine, setup.clock, setup.db_cache

    # Preload the data set (the paper's 20 GB becomes 5,120 pairs here).
    preload(setup)
    print(f"loaded {config.unique_keys} keys; on-disk size {engine.db_size_kb} KB")

    # --- basic key-value operations --------------------------------------
    seq = engine.put(42)
    result = engine.get(42)
    print(f"put key 42 (seq {seq}); get -> found={result.found} value={result.value}")

    engine.delete(42)
    print(f"after delete: found={engine.get(42).found}")

    scan = engine.scan(100, 109)
    print(f"scan [100, 109] -> {[entry.key for entry in scan.entries]}")

    # --- a burst of updates + reads, with housekeeping ticks -------------
    rng = random.Random(7)
    for step in range(4000):
        engine.put(rng.randrange(config.unique_keys))
        engine.get(rng.randrange(config.unique_keys))
        if step % 25 == 0:
            clock.advance(1)
            engine.tick(clock.now)  # Gear compactions + trim process.

    # --- what happened under the hood ------------------------------------
    stats = engine.stats
    print("\nengine internals after the burst:")
    print(f"  flushes:              {stats.flushes}")
    print(f"  compactions:          {stats.compactions}")
    print(f"  compaction I/O:       {stats.compaction_read_kb:.0f} KB read, "
          f"{stats.compaction_write_kb:.0f} KB written")
    print(f"  buffer files appended:{engine.lsbm_stats.buffer_files_appended}")
    print(f"  buffer files removed: {engine.lsbm_stats.buffer_files_removed}")
    print(f"  compaction buffer:    {engine.compaction_buffer_kb} KB on disk")
    print(f"  frozen levels:        "
          f"{[i for i in range(1, engine.num_levels + 1) if engine.buffer[i].frozen]}")
    print(f"  cache hit ratio:      {cache.stats.hit_ratio:.3f} "
          f"({cache.stats.hits} hits / {cache.stats.misses} misses)")
    print(f"  cache invalidations:  {cache.stats.invalidations} blocks "
          f"(what the compaction buffer exists to minimize)")


if __name__ == "__main__":
    main()
