#!/usr/bin/env python3
"""Anatomy of a buffered merge: watching LSbM's structures evolve.

Drives an LSbM-tree with a skewed read/write mix and periodically prints
the state of every level — the gear pair Ci/Ci', the compaction-buffer
lists Bi/Bi'/Bi^0, freeze flags, and what the trim process has discarded.
This is the fastest way to *see* Algorithm 1 run: files flow from C0'
down the tree while their hot subset accumulates in the buffer lists.

Run:  python examples/compaction_anatomy.py
"""

from __future__ import annotations

import random

from repro import SystemConfig, build_engine, preload


def describe(engine) -> str:
    lines = []
    c0 = engine.memtable.size_kb
    lines.append(
        f"  level 0: C0 {c0:>6} KB   C0' {engine.c0_prime.size_kb:>6} KB"
    )
    for level in range(1, engine.num_levels + 1):
        c = engine.c[level].size_kb
        cp = engine.cp[level].size_kb if level < engine.num_levels else 0
        buf = engine.buffer[level]
        flags = " FROZEN" if buf.frozen else ""
        lines.append(
            f"  level {level}: C{level} {c:>6} KB   C{level}' {cp:>6} KB   "
            f"B{level}^0 {buf.incoming.size_kb:>5} KB   "
            f"B{level} {sum(t.size_kb for t in buf.tables):>5} KB "
            f"({len(buf.tables)} tables)   "
            f"B{level}' {buf.draining_live_kb:>5} KB{flags}"
        )
    return "\n".join(lines)


def main() -> None:
    config = SystemConfig.paper_scaled(4096)
    setup = build_engine("lsbm", config)
    engine, clock, cache = setup.engine, setup.clock, setup.db_cache
    preload(setup)

    workload_rng = random.Random(3)
    hot_start = config.unique_keys // 4
    hot_size = config.hot_range_pairs

    print(f"dataset {config.unique_keys} keys; hot range "
          f"[{hot_start}, {hot_start + hot_size}); watching 6,000 virtual s\n")

    for second in range(1, 6001):
        # ~0.25 writes and a few hot reads per virtual second.
        if second % 4 == 0:
            engine.put(workload_rng.randrange(config.unique_keys))
        for _ in range(3):
            if workload_rng.random() < 0.98:
                key = hot_start + workload_rng.randrange(hot_size)
            else:
                key = workload_rng.randrange(config.unique_keys)
            engine.get(key)
        clock.advance(1)
        engine.tick(clock.now)

        if second % 1000 == 0:
            stats = engine.lsbm_stats
            print(f"t={second:>5}s  (compactions={engine.stats.compactions}, "
                  f"buffer appended={stats.buffer_files_appended}, "
                  f"removed={stats.buffer_files_removed}, "
                  f"trim runs={engine.trim.runs}, "
                  f"hit={cache.stats.hit_ratio:.3f})")
            print(describe(engine))
            print()

    print("reads served by compaction buffer:",
          engine.lsbm_stats.reads_served_by_buffer)
    print("reads served by underlying tree:  ",
          engine.lsbm_stats.reads_served_by_tree)
    print("cache invalidations:              ", cache.stats.invalidations)


if __name__ == "__main__":
    main()
