#!/usr/bin/env python3
"""Recording a workload trace and replaying it against every engine.

Traces make apples-to-apples engine comparisons trivial: generate the
operation stream once, archive it as a text file, and replay the *exact*
same stream against each engine.  This example records a skewed mixed
workload, replays it on four engines, and compares their I/O behaviour —
the answers must be identical, the costs must not be.

Run:  python examples/trace_replay.py
"""

from __future__ import annotations

import random
import tempfile
from pathlib import Path

from repro import SystemConfig, build_engine, preload
from repro.sim.report import ascii_table
from repro.workload.trace import (
    TraceRecorder,
    load_trace,
    replay_trace,
    save_trace,
)

ENGINES = ("leveldb", "blsm", "sm", "lsbm")


def record_workload(config: SystemConfig) -> TraceRecorder:
    """A skewed read/write mix with housekeeping ticks."""
    recorder = TraceRecorder()
    rng = random.Random(2024)
    hot_start = config.unique_keys // 4
    hot_size = config.hot_range_pairs
    for step in range(8000):
        roll = rng.random()
        if roll < 0.25:
            recorder.put(rng.randrange(config.unique_keys))
        elif roll < 0.9:
            if rng.random() < 0.95:
                recorder.get(hot_start + rng.randrange(hot_size))
            else:
                recorder.get(rng.randrange(config.unique_keys))
        else:
            recorder.scan(
                hot_start + rng.randrange(hot_size), config.scan_length_pairs
            )
        if step % 20 == 0:
            recorder.tick()
    return recorder


def main() -> None:
    config = SystemConfig.paper_scaled(4096)
    recorder = record_workload(config)

    path = Path(tempfile.gettempdir()) / "rangehot.trace"
    save_trace(recorder.ops, path)
    ops = load_trace(path)
    print(f"recorded {len(ops)} operations -> {path}\n")

    rows = []
    answers = set()
    for name in ENGINES:
        setup = build_engine(name, config)
        preload(setup)
        result = replay_trace(setup.engine, setup.clock, ops)
        answers.add((result.found, result.pairs_scanned))
        cache = setup.db_cache
        rows.append(
            [
                name,
                result.found,
                result.pairs_scanned,
                f"{cache.stats.hit_ratio:.3f}",
                cache.stats.invalidations,
                setup.engine.stats.compactions,
                f"{setup.disk.stats.seq_write_kb:,.0f}",
            ]
        )
        print(f"replayed on {name}", flush=True)

    print()
    print(
        ascii_table(
            [
                "engine",
                "gets found",
                "pairs scanned",
                "hit ratio",
                "invalidations",
                "compactions",
                "KB written",
            ],
            rows,
        )
    )
    assert len(answers) == 1, "engines disagreed on query answers!"
    print(
        "\nAll engines returned identical answers; only their cache and"
        "\ncompaction behaviour differs — which is the paper's whole point."
    )


if __name__ == "__main__":
    main()
