#!/usr/bin/env python3
"""Running the standard YCSB core workloads A-F against the engines.

The paper evaluates with a custom YCSB template (RangeHot), but the
workload package implements the full core suite, and
:class:`repro.sim.YCSBDriver` executes any operation mix with the same
costed service-time model the paper experiments use.  This example drives
each of A-F against bLSM and LSbM and reports modeled throughput and tail
latency — the library as a general LSM workbench, not just a figure
regenerator.

Run:  python examples/ycsb_workloads.py
"""

from __future__ import annotations

from repro import SystemConfig, build_engine, preload
from repro.sim.report import ascii_table
from repro.sim.ycsb_driver import YCSBDriver
from repro.workload.ycsb import ycsb_core_workload

DURATION_S = 600

WORKLOAD_NOTES = {
    "A": "update heavy (50/50 read/update, zipfian)",
    "B": "read mostly (95/5)",
    "C": "read only",
    "D": "read latest (95/5 read/insert)",
    "E": "short scans (95/5 scan/insert)",
    "F": "read-modify-write (50/50)",
}


def run_workload(engine_name: str, letter: str, config: SystemConfig):
    setup = build_engine(engine_name, config)
    preload(setup)
    workload = ycsb_core_workload(letter, config.unique_keys)
    driver = YCSBDriver(setup.engine, config, setup.clock, workload, seed=99)
    result = driver.run(DURATION_S)
    return result


def main() -> None:
    config = SystemConfig.paper_scaled(4096)
    rows = []
    for letter, note in WORKLOAD_NOTES.items():
        row = [f"{letter} — {note}"]
        for engine_name in ("blsm", "lsbm"):
            result = run_workload(engine_name, letter, config)
            row.append(
                f"{result.mean_throughput():,.0f}"
                f" (p99 {result.latency_percentile_s(99) * 1000:.1f} ms)"
            )
        rows.append(row)
        print(f"workload {letter} done", flush=True)
    print()
    print(
        ascii_table(
            ["YCSB core workload", "bLSM ops/s", "LSbM ops/s"], rows
        )
    )
    print(
        "\n(Modeled closed-loop throughput on the simulated HDD substrate;"
        "\n zipfian-skewed workloads cache poorly, so absolute numbers sit"
        "\n well below the paper's spatially-hot RangeHot results.)"
    )


if __name__ == "__main__":
    main()
