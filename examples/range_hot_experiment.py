#!/usr/bin/env python3
"""A desk-sized rerun of the paper's headline experiment (Figs. 8/9).

Runs the RangeHot mixed read/write workload against bLSM and LSbM and
prints the hit-ratio time series plus the summary the paper's Figure 9
reports.  At the default scale this takes a couple of minutes; pass a
larger scale (e.g. 4096) for a quick look.

Run:  python examples/range_hot_experiment.py [scale] [duration]
"""

from __future__ import annotations

import sys

from repro import SystemConfig, run_experiment
from repro.sim.report import ascii_table, series_block


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 2048
    duration = int(sys.argv[2]) if len(sys.argv) > 2 else 20_000
    config = SystemConfig.paper_scaled(scale)
    print(
        f"RangeHot experiment at 1/{scale} scale: "
        f"{config.unique_keys} keys, cache {config.cache_blocks} blocks, "
        f"{duration} virtual seconds\n"
    )

    runs = {}
    for name in ("blsm", "lsbm"):
        print(f"running {name} ...", flush=True)
        runs[name] = run_experiment(name, config, duration_s=duration, seed=1)

    print()
    for name, run in runs.items():
        print(series_block(f"{name}: DB cache hit ratio", run.hit_ratio))
        print()

    rows = [
        [
            name,
            f"{run.mean_hit_ratio():.3f}",
            f"{run.mean_throughput():,.0f}",
            f"{run.mean_db_size_mb():,.0f}",
        ]
        for name, run in runs.items()
    ]
    print(ascii_table(["engine", "hit ratio", "QPS", "DB size (MB)"], rows))
    improvement = runs["lsbm"].mean_throughput() / max(
        1.0, runs["blsm"].mean_throughput()
    )
    print(
        f"\nLSbM read throughput is {improvement:.2f}x bLSM's "
        f"(the paper measures ~2.8x on its hardware)."
    )


if __name__ == "__main__":
    main()
