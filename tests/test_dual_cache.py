"""Tests for the dual-cache stacks (DB block cache over an OS page cache)."""

import random

from repro.config import SystemConfig
from repro.sim.driver import MixedReadWriteDriver
from repro.sim.experiment import build_engine, preload
from repro.sstable.entry import value_for


def small_config():
    return SystemConfig.tiny()


class TestDualCacheStack:
    def test_both_caches_wired(self):
        setup = build_engine("lsbm-dual", small_config())
        assert setup.db_cache is not None
        assert setup.os_cache is not None
        assert setup.engine.os_cache is setup.os_cache

    def test_db_miss_can_hit_os_cache(self):
        """After a compaction invalidates a DB block, the page the
        compaction just wrote may still satisfy the re-read cheaply —
        provided the read happens before the next compaction stream
        washes the page cache."""
        config = small_config().replace(cache_size_kb=2048)
        setup = build_engine("blsm-dual", config)
        preload(setup)
        engine = setup.engine
        rng = random.Random(1)
        total_os_hits = 0
        for _ in range(60):
            for _ in range(50):  # A small compaction burst…
                engine.put(rng.randrange(config.unique_keys))
            for _ in range(40):  # …then immediate reads.
                cost = engine.get(rng.randrange(config.unique_keys)).cost
                total_os_hits += cost.os_hit_blocks
        assert total_os_hits > 0

    def test_correctness_unaffected(self):
        setup = build_engine("lsbm-dual", small_config())
        engine = setup.engine
        rng = random.Random(2)
        model = {}
        for step in range(3000):
            key = rng.randrange(2048)
            model[key] = engine.put(key)
            if step % 40 == 0:
                setup.clock.advance(1)
                engine.tick(setup.clock.now)
        for key in rng.sample(sorted(model), 200):
            assert engine.get(key).value == value_for(key, model[key])

    def test_os_hits_priced_between_db_hit_and_disk(self):
        config = small_config()
        setup = build_engine("blsm-dual", config)
        driver = MixedReadWriteDriver(setup.engine, config, setup.clock)
        from repro.lsm.base import ReadCost

        db_hit = driver.price_read(ReadCost(cache_hit_blocks=1), 0, 0.0)
        os_hit = driver.price_read(ReadCost(os_hit_blocks=1), 0, 0.0)
        disk = driver.price_read(ReadCost(disk_random_blocks=1), 0, 0.0)
        assert db_hit < os_hit < disk

    def test_dual_run_end_to_end(self):
        config = small_config()
        setup = build_engine("lsbm-dual", config)
        preload(setup)
        driver = MixedReadWriteDriver(setup.engine, config, setup.clock, seed=3)
        result = driver.run(60)
        assert result.reads_completed > 0
        # The metric cache is the DB cache (primary tier).
        assert driver.metric_cache is setup.db_cache
