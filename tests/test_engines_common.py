"""Behavioural tests shared by every engine (parametrized fixture)."""

import random

import pytest

from repro.sstable.entry import Entry, value_for

from .conftest import make_engine


class TestBasicSemantics:
    def test_put_then_get(self, any_engine):
        engine, *_ = any_engine
        engine.put(42)
        result = engine.get(42)
        assert result.found
        assert result.value == value_for(42, 1)

    def test_absent_key_not_found(self, any_engine):
        engine, *_ = any_engine
        result = engine.get(123456)
        assert not result.found
        assert result.value is None

    def test_overwrite_returns_newest(self, any_engine):
        engine, *_ = any_engine
        engine.put(7)
        seq = engine.put(7)
        assert engine.get(7).value == value_for(7, seq)

    def test_delete_hides_key(self, any_engine):
        engine, *_ = any_engine
        engine.put(9)
        engine.delete(9)
        assert not engine.get(9).found

    def test_reinsert_after_delete(self, any_engine):
        engine, *_ = any_engine
        engine.put(9)
        engine.delete(9)
        seq = engine.put(9)
        assert engine.get(9).value == value_for(9, seq)

    def test_scan_returns_sorted_unique_range(self, any_engine):
        engine, *_ = any_engine
        for key in range(0, 100, 3):
            engine.put(key)
        result = engine.scan(10, 40)
        keys = [e.key for e in result.entries]
        assert keys == sorted(keys)
        assert keys == [k for k in range(0, 100, 3) if 10 <= k <= 40]

    def test_scan_excludes_deleted(self, any_engine):
        engine, *_ = any_engine
        for key in (10, 11, 12):
            engine.put(key)
        engine.delete(11)
        keys = [e.key for e in engine.scan(10, 12).entries]
        assert keys == [10, 12]

    def test_empty_scan(self, any_engine):
        engine, *_ = any_engine
        assert engine.scan(0, 100).entries == []


class TestBulkLoad:
    def test_bulk_load_visible_to_reads(self, any_engine):
        engine, *_ = any_engine
        engine.bulk_load([Entry(k, 0) for k in range(0, 200, 2)])
        assert engine.get(100).found
        assert not engine.get(101).found

    def test_bulk_load_then_updates_win(self, any_engine):
        engine, *_ = any_engine
        engine.bulk_load([Entry(k, 0) for k in range(100)])
        seq = engine.put(50)
        assert engine.get(50).value == value_for(50, seq)

    def test_bulk_load_occupies_disk(self, any_engine):
        engine, _, disk, _ = any_engine
        engine.bulk_load([Entry(k, 0) for k in range(256)])
        assert disk.live_kb >= 256


class TestCompactionBehaviour:
    def test_sustained_writes_trigger_compactions(self, any_engine):
        engine, *_ = any_engine
        rng = random.Random(3)
        for _ in range(1500):
            engine.put(rng.randrange(4096))
        assert engine.stats.flushes > 0
        assert engine.stats.compactions > 0

    def test_memtable_bounded_by_level0(self, any_engine):
        engine, *_ = any_engine
        for key in range(1000):
            engine.put(key)
        total_level0 = engine.memtable.size_kb
        c0_prime = getattr(engine, "c0_prime", None)
        if c0_prime is not None:
            total_level0 += c0_prime.size_kb
        assert total_level0 <= engine.config.level0_size_kb

    def test_reads_correct_across_many_compactions(self, any_engine):
        engine, *_ = any_engine
        rng = random.Random(11)
        model: dict[int, int] = {}
        for _ in range(2500):
            key = rng.randrange(2048)
            model[key] = engine.put(key)
        for key in rng.sample(sorted(model), 200):
            result = engine.get(key)
            assert result.found, key
            assert result.value == value_for(key, model[key])

    def test_disk_space_reclaimed_by_compactions(self, any_engine):
        """Obsolete versions must eventually be dropped: the database
        cannot grow without bound under pure overwrites."""
        engine, _, disk, _ = any_engine
        rng = random.Random(5)
        for _ in range(4000):
            engine.put(rng.randrange(256))  # Heavy overwriting.
        # 256 unique keys => far less than the 4000 KB written.
        assert disk.live_kb < 3000


class TestReadCosts:
    def test_cost_reported_for_gets(self, any_engine):
        engine, *_ = any_engine
        engine.bulk_load([Entry(k, 0) for k in range(512)])
        cost = engine.get(100).cost
        assert cost.block_reads >= 1

    def test_repeat_read_hits_cache(self, any_engine):
        engine, *_ = any_engine
        engine.bulk_load([Entry(k, 0) for k in range(512)])
        first = engine.get(100).cost
        second = engine.get(100).cost
        assert first.disk_random_blocks >= 1
        assert second.disk_random_blocks == 0
        assert second.cache_hit_blocks >= 1

    def test_memtable_read_touches_no_blocks(self, any_engine):
        engine, *_ = any_engine
        engine.put(5)
        cost = engine.get(5).cost
        assert cost.block_reads == 0

    def test_scan_reports_sequential_cost(self, any_engine):
        engine, *_ = any_engine
        engine.bulk_load([Entry(k, 0) for k in range(512)])
        cost = engine.scan(0, 63).cost
        assert cost.seq_runs >= 1
        assert cost.seq_kb > 0


class TestEngineLifecycle:
    def test_closed_engine_rejects_ops(self, any_engine):
        engine, *_ = any_engine
        engine.close()
        from repro.errors import EngineError

        with pytest.raises(EngineError):
            engine.put(1)
        with pytest.raises(EngineError):
            engine.get(1)


class TestDeterminism:
    @pytest.mark.parametrize("name", ["leveldb", "blsm", "sm", "lsbm"])
    def test_same_operations_same_state(self, name):
        """Two engines fed identical streams end bit-identical metrics —
        the property that makes experiments reproducible."""
        streams = []
        for _ in range(2):
            engine, _, disk, cache = make_engine(name)
            rng = random.Random(99)
            for _ in range(1200):
                engine.put(rng.randrange(2048))
                engine.get(rng.randrange(2048))
            streams.append(
                (
                    disk.live_kb,
                    engine.stats.compactions,
                    cache.stats.hits,
                    cache.stats.misses,
                )
            )
        assert streams[0] == streams[1]
