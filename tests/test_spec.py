"""Unit tests for the declarative :class:`ExperimentSpec`."""

import json
import pickle

import pytest

from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.sim.experiment import execute, run_experiment
from repro.sim.spec import ExperimentSpec


class TestNormalization:
    def test_override_order_is_irrelevant(self):
        a = ExperimentSpec(
            "lsbm",
            overrides=(("trim_interval_s", 10), ("cache_size_kb", 64)),
        )
        b = ExperimentSpec(
            "lsbm",
            overrides=(("cache_size_kb", 64), ("trim_interval_s", 10)),
        )
        assert a == b
        assert hash(a) == hash(b)
        assert a.overrides == (("cache_size_kb", 64), ("trim_interval_s", 10))

    def test_specs_key_caches(self):
        cache = {ExperimentSpec("lsbm", seed=0): "hit"}
        assert cache[ExperimentSpec("lsbm", seed=0)] == "hit"
        assert ExperimentSpec("lsbm", seed=1) not in cache

    def test_unknown_override_field_rejected(self):
        with pytest.raises(ConfigError, match="bogus_field"):
            ExperimentSpec("lsbm", overrides=(("bogus_field", 1),))

    def test_unknown_base_rejected(self):
        with pytest.raises(ConfigError, match="config base"):
            ExperimentSpec("lsbm", base="nope")


class TestConfigMaterialization:
    def test_paper_scaled_with_overrides(self):
        spec = ExperimentSpec(
            "lsbm", scale=4096, overrides=(("trim_interval_s", 30),)
        )
        expected = SystemConfig.paper_scaled(4096).replace(trim_interval_s=30)
        assert spec.config() == expected

    def test_ssd_base(self):
        spec = ExperimentSpec("blsm", base="ssd_scaled", scale=4096)
        assert spec.config() == SystemConfig.ssd_scaled(4096)

    def test_from_config_is_exact(self):
        config = SystemConfig.tiny().replace(cache_size_kb=96)
        spec = ExperimentSpec.from_config("lsbm", config, seed=3)
        assert spec.base == "explicit"
        assert spec.seed == 3
        assert spec.config() == config


class TestLabels:
    def test_cell_key_excludes_seed(self):
        a = ExperimentSpec("lsbm", scale=8192, duration_s=300, seed=0)
        b = a.with_seed(5)
        assert a.cell_key() == b.cell_key()
        assert a.label() == "lsbm/x8192/t300/s0"
        assert b.label() == "lsbm/x8192/t300/s5"

    def test_cell_key_shows_overrides_and_scan(self):
        spec = ExperimentSpec(
            "blsm",
            scale=8192,
            overrides=(("trim_threshold", 0.5),),
            scan_mode=True,
        )
        assert spec.cell_key() == "blsm/x8192/trim_threshold=0.5/scan"

    def test_distinct_explicit_configs_get_distinct_keys(self):
        a = ExperimentSpec.from_config("lsbm", SystemConfig.tiny())
        b = ExperimentSpec.from_config(
            "lsbm", SystemConfig.tiny().replace(cache_size_kb=128)
        )
        assert a.cell_key() != b.cell_key()


class TestSerialization:
    def test_json_round_trip(self):
        spec = ExperimentSpec(
            "lsbm",
            scale=8192,
            overrides=(("trim_interval_s", 10),),
            duration_s=200,
            seed=7,
            scan_mode=True,
        )
        payload = json.loads(json.dumps(spec.to_dict()))
        assert ExperimentSpec.from_dict(payload) == spec

    def test_pickle_round_trip(self):
        spec = ExperimentSpec("blsm", duration_s=100)
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestExecute:
    def test_execute_matches_run_experiment_wrapper(self):
        config = SystemConfig.paper_scaled(8192)
        via_wrapper = run_experiment("blsm", config, duration_s=150, seed=2)
        via_spec = execute(
            ExperimentSpec.from_config("blsm", config, duration_s=150, seed=2)
        )
        assert via_spec == via_wrapper
