"""Unit tests for the speed-baseline gate (:mod:`repro.sim.speedgate`).

These exercise the decision logic against synthetic measurements — the
grid itself is only timed by ``repro bench-baseline`` (CI's speed-gate
job) so the test suite stays fast and noise-free.
"""

from __future__ import annotations

import json

import pytest

from repro.sim import speedgate


def _identity() -> dict:
    return {
        "reads_completed": {e: 100 + i for i, e in enumerate(speedgate.GRID_ENGINES)},
        "writes_applied": {e: 50 for e in speedgate.GRID_ENGINES},
    }


def _measured(ops_per_s: float, identity: dict | None = None) -> dict:
    return {
        "grid": {
            "engines": list(speedgate.GRID_ENGINES),
            "scale": speedgate.GRID_SCALE,
            "duration_s": speedgate.GRID_DURATION_S,
            "seed": speedgate.GRID_SEED,
            "total_ops": 1000,
        },
        "trials": 3,
        "trial_walls_s": [1.0, 1.1, 1.2],
        "best": {"grid_wall_s": 1.0, "grid_ops_per_s": ops_per_s},
        "median": {"grid_wall_s": 1.1, "grid_ops_per_s": ops_per_s * 0.9},
        "engines": {
            e: {"wall_clock_s": 0.25, "ops_per_s": ops_per_s}
            for e in speedgate.GRID_ENGINES
        },
        "identity": identity if identity is not None else _identity(),
        "measured_at": "2026-01-01T00:00:00Z",
    }


def _baseline(floor: float = 1000.0) -> dict:
    recorded = _measured(floor)
    return {
        "schema_version": speedgate.BASELINE_SCHEMA_VERSION,
        "grid": recorded["grid"],
        "seed_scalar": {
            "commit": "0" * 40,
            "grid_wall_s": 4.0,
            "grid_ops_per_s": floor / 3,
            "engines": {},
        },
        "recorded": {
            "measured_at": recorded["measured_at"],
            "trials": recorded["trials"],
            "trial_walls_s": recorded["trial_walls_s"],
            "best": recorded["best"],
            "median": recorded["median"],
            "engines": recorded["engines"],
            "identity": recorded["identity"],
        },
        "gate": {"min_ratio": 0.8},
    }


def test_gate_passes_at_and_above_the_floor_ratio(monkeypatch):
    monkeypatch.delenv("REPRO_SPEED_GATE", raising=False)
    monkeypatch.delenv("REPRO_SPEED_GATE_RATIO", raising=False)
    for ops in (800.0, 1000.0, 1500.0):
        outcome = speedgate.evaluate_gate(_measured(ops), _baseline(1000.0))
        assert outcome.passed, ops
        assert outcome.status == "PASS"
    assert speedgate.evaluate_gate(
        _measured(1500.0), _baseline(1000.0)
    ).ratio == pytest.approx(1.5)


def test_gate_fails_more_than_20_percent_below(monkeypatch):
    monkeypatch.delenv("REPRO_SPEED_GATE", raising=False)
    monkeypatch.delenv("REPRO_SPEED_GATE_RATIO", raising=False)
    outcome = speedgate.evaluate_gate(_measured(799.0), _baseline(1000.0))
    assert not outcome.passed
    assert outcome.status == "FAIL"
    assert "below the recorded" in outcome.reasons[0]


def test_identity_mismatch_fails_regardless_of_speed(monkeypatch):
    monkeypatch.delenv("REPRO_SPEED_GATE", raising=False)
    identity = _identity()
    identity["reads_completed"]["lsbm"] += 1
    outcome = speedgate.evaluate_gate(
        _measured(10_000.0, identity), _baseline(1000.0)
    )
    assert not outcome.passed
    assert "op counts differ" in outcome.reasons[0]
    assert any("lsbm.reads_completed" in r for r in outcome.reasons)


def test_env_ratio_override_loosens_the_gate(monkeypatch):
    monkeypatch.delenv("REPRO_SPEED_GATE", raising=False)
    monkeypatch.setenv("REPRO_SPEED_GATE_RATIO", "0.5")
    outcome = speedgate.evaluate_gate(_measured(600.0), _baseline(1000.0))
    assert outcome.passed
    assert outcome.min_ratio == 0.5
    monkeypatch.setenv("REPRO_SPEED_GATE_RATIO", "1.5")
    with pytest.raises(ValueError):
        speedgate.evaluate_gate(_measured(600.0), _baseline(1000.0))


def test_env_switch_skips_the_gate(monkeypatch):
    monkeypatch.setenv("REPRO_SPEED_GATE", "off")
    outcome = speedgate.evaluate_gate(_measured(1.0), _baseline(1000.0))
    assert outcome.passed and outcome.skipped
    assert outcome.status == "SKIPPED"


def test_record_preserves_seed_scalar_and_gate(tmp_path, monkeypatch):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps(_baseline(1000.0)))
    written = speedgate.record_baseline(_measured(2000.0), path)
    payload = speedgate.load_baseline(written)
    assert payload["seed_scalar"]["grid_ops_per_s"] == pytest.approx(1000 / 3)
    assert payload["gate"] == {"min_ratio": 0.8}
    assert payload["recorded"]["best"]["grid_ops_per_s"] == 2000.0


def test_load_rejects_wrong_schema_version(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"schema_version": 99}))
    with pytest.raises(ValueError):
        speedgate.load_baseline(path)


def test_find_baseline_path_env_override(monkeypatch, tmp_path):
    target = tmp_path / "elsewhere.json"
    monkeypatch.setenv("REPRO_BASELINE_PATH", str(target))
    assert speedgate.find_baseline_path() == target


def test_shipped_baseline_is_loadable_and_consistent(monkeypatch):
    monkeypatch.delenv("REPRO_BASELINE_PATH", raising=False)
    path = speedgate.find_baseline_path()
    assert path.exists(), "benchmarks/baseline.json must ship with the repo"
    payload = speedgate.load_baseline(path)
    assert payload["grid"]["engines"] == list(speedgate.GRID_ENGINES)
    recorded = payload["recorded"]
    for section in ("reads_completed", "writes_applied"):
        assert set(recorded["identity"][section]) == set(speedgate.GRID_ENGINES)
    # The recorded tree must actually be faster than the seed scalar
    # tree it is compared against — otherwise the README claim is stale.
    assert (
        recorded["best"]["grid_ops_per_s"]
        > payload["seed_scalar"]["grid_ops_per_s"]
    )


def test_format_report_mentions_gate_and_multiple(monkeypatch):
    monkeypatch.delenv("REPRO_SPEED_GATE", raising=False)
    monkeypatch.delenv("REPRO_SPEED_GATE_RATIO", raising=False)
    measured = _measured(900.0)
    baseline = _baseline(1000.0)
    outcome = speedgate.evaluate_gate(measured, baseline)
    report = speedgate.format_report(measured, baseline, outcome)
    assert "vs seed scalar tree" in report
    assert "speed gate: PASS" in report
