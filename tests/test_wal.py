"""Unit tests for the write-ahead log and crash recovery."""

import random

import pytest

from repro.config import SystemConfig
from repro.errors import EngineError
from repro.lsm.wal import WriteAheadLog
from repro.sstable.entry import Kind, value_for

from .conftest import make_engine


def wal_config():
    return SystemConfig.tiny().replace(wal_enabled=True)


class TestWriteAheadLog:
    def test_append_and_replay_order(self, disk):
        wal = WriteAheadLog(disk, pair_size_kb=1)
        wal.append(1, 1, Kind.PUT)
        wal.append(2, 2, Kind.DELETE)
        records = wal.replay()
        assert [(r.key, r.seq, r.kind) for r in records] == [
            (1, 1, Kind.PUT),
            (2, 2, Kind.DELETE),
        ]

    def test_truncate_through(self, disk):
        wal = WriteAheadLog(disk, pair_size_kb=1)
        for seq in range(1, 6):
            wal.append(seq, seq, Kind.PUT)
        dropped = wal.truncate_through(3)
        assert dropped == 3
        assert [r.seq for r in wal.replay()] == [4, 5]

    def test_log_charges_disk_writes(self, disk):
        wal = WriteAheadLog(disk, pair_size_kb=1)
        before = disk.stats.seq_write_kb
        wal.append(1, 1, Kind.PUT)
        assert disk.stats.seq_write_kb == before + 1
        assert wal.bytes_logged_kb == 1


class TestEngineRecovery:
    @pytest.mark.parametrize("name", ["leveldb", "blsm", "lsbm", "sm"])
    def test_crash_loses_memtable_without_wal(self, name):
        engine, *_ = make_engine(name)
        engine.put(5)
        assert engine.simulate_crash() == 1
        assert not engine.get(5).found
        with pytest.raises(EngineError):
            engine.recover()

    @pytest.mark.parametrize("name", ["leveldb", "blsm", "lsbm", "sm"])
    def test_recovery_restores_unflushed_writes(self, name):
        engine, *_ = make_engine(name, wal_config())
        seqs = {key: engine.put(key) for key in (3, 1, 4)}
        engine.delete(1)
        engine.simulate_crash()
        replayed = engine.recover()
        assert replayed == 4
        assert engine.get(3).value == value_for(3, seqs[3])
        assert engine.get(4).value == value_for(4, seqs[4])
        assert not engine.get(1).found

    def test_recovery_after_flush_replays_only_tail(self):
        engine, *_ = make_engine("lsbm", wal_config())
        rng = random.Random(1)
        for _ in range(200):  # Forces flushes (level0 is 64 KB).
            engine.put(rng.randrange(512))
        tail = engine.wal.tail_records
        assert tail < 200  # Flushed records were truncated away.
        unflushed_key = 10_000
        seq = engine.put(unflushed_key)
        engine.simulate_crash()
        engine.recover()
        assert engine.get(unflushed_key).value == value_for(unflushed_key, seq)

    def test_recovery_preserves_seq_counter(self):
        engine, *_ = make_engine("blsm", wal_config())
        last = 0
        for key in range(10):
            last = engine.put(key)
        engine.simulate_crash()
        engine.recover()
        assert engine.put(99) == last + 1

    def test_model_equivalence_across_crashes(self):
        engine, clock, *_ = make_engine("lsbm", wal_config())
        rng = random.Random(9)
        model = {}
        for step in range(1500):
            key = rng.randrange(1024)
            model[key] = engine.put(key)
            if step % 100 == 99:
                engine.simulate_crash()
                engine.recover()
            if step % 23 == 0:
                clock.advance(1)
                engine.tick(clock.now)
        for key in rng.sample(sorted(model), 150):
            assert engine.get(key).value == value_for(key, model[key])

    def test_wal_disabled_by_default(self):
        engine, *_ = make_engine("blsm")
        assert engine.wal is None
