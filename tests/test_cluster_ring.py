"""Property tests for the cluster routers (hash ring, range partitioner).

The hash ring's two load-bearing promises get hypothesis coverage:

* **balance** — with enough vnodes, no shard owns wildly more or less
  than its fair share of a key range (empirically the worst case over
  many seeds is ~1.43x / ~0.68x of fair at 64 vnodes; the bounds here
  leave margin);
* **minimal movement** — adding or removing a shard only remaps keys
  to/from that shard; every other key keeps its owner.  This is *the*
  consistent-hashing property: a topology change migrates one shard's
  worth of data, not the whole keyspace.

The range partitioner and the split-overlay router are deterministic
arithmetic, so they get exact-value tests.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import HashRing, RangePartitioner, SplitRouter
from repro.errors import ConfigError

_SEEDS = st.integers(min_value=0, max_value=2**32 - 1)
_SHARDS = st.integers(min_value=2, max_value=8)

#: Keys probed per property example.  Large enough that a grossly
#: unbalanced ring cannot hide, small enough to keep examples fast.
_PROBE_KEYS = 2048


class TestHashRingBalance:
    @settings(max_examples=30, deadline=None)
    @given(seed=_SEEDS, shards=_SHARDS)
    def test_distribution_within_tolerance(self, seed, shards):
        ring = HashRing(shards, vnodes=64, seed=seed)
        counts = {shard: 0 for shard in ring.shard_ids}
        for key in range(_PROBE_KEYS):
            counts[ring.shard_for(key)] += 1
        fair = _PROBE_KEYS / shards
        assert max(counts.values()) <= 2.0 * fair
        assert min(counts.values()) >= 0.33 * fair

    @settings(max_examples=20, deadline=None)
    @given(seed=_SEEDS, shards=_SHARDS)
    def test_every_shard_owns_something(self, seed, shards):
        ring = HashRing(shards, vnodes=64, seed=seed)
        owners = {ring.shard_for(key) for key in range(_PROBE_KEYS)}
        assert owners == set(ring.shard_ids)

    def test_routing_is_deterministic_per_seed(self):
        a = HashRing(4, vnodes=64, seed=7)
        b = HashRing(4, vnodes=64, seed=7)
        c = HashRing(4, vnodes=64, seed=8)
        keys = range(512)
        assert [a.shard_for(k) for k in keys] == [b.shard_for(k) for k in keys]
        assert [a.shard_for(k) for k in keys] != [c.shard_for(k) for k in keys]


class TestHashRingMinimalMovement:
    @settings(max_examples=30, deadline=None)
    @given(seed=_SEEDS, shards=_SHARDS)
    def test_adding_a_shard_only_moves_keys_to_it(self, seed, shards):
        ring = HashRing(shards, vnodes=64, seed=seed)
        grown = ring.with_shard_added(shards)
        moved = 0
        for key in range(_PROBE_KEYS):
            before, after = ring.shard_for(key), grown.shard_for(key)
            if before != after:
                # The only legal move is onto the new shard.
                assert after == shards
                moved += 1
        # The new shard takes roughly its fair share, never the world.
        assert 0 < moved <= 2.0 * _PROBE_KEYS / (shards + 1)

    @settings(max_examples=30, deadline=None)
    @given(seed=_SEEDS, shards=_SHARDS)
    def test_removing_a_shard_only_moves_its_keys(self, seed, shards):
        ring = HashRing(shards, vnodes=64, seed=seed)
        victim = shards - 1
        shrunk = ring.with_shard_removed(victim)
        for key in range(_PROBE_KEYS):
            before, after = ring.shard_for(key), shrunk.shard_for(key)
            if before == victim:
                assert after != victim
            else:
                # Keys the victim never owned must not move at all.
                assert after == before

    @settings(max_examples=15, deadline=None)
    @given(seed=_SEEDS, shards=_SHARDS)
    def test_add_then_remove_is_identity(self, seed, shards):
        ring = HashRing(shards, vnodes=64, seed=seed)
        round_trip = ring.with_shard_added(shards).with_shard_removed(shards)
        for key in range(0, _PROBE_KEYS, 7):
            assert round_trip.shard_for(key) == ring.shard_for(key)


class TestRangePartitioner:
    def test_equal_slices_cover_the_keyspace(self):
        part = RangePartitioner(2560, 4)
        assert [part.shard_range(i) for i in range(4)] == [
            (0, 640), (640, 1280), (1280, 1920), (1920, 2560)
        ]
        for key in range(2560):
            low, high = part.shard_range(part.shard_for(key))
            assert low <= key < high

    def test_boundary_keys_belong_to_the_upper_shard(self):
        part = RangePartitioner(100, 2)
        assert part.shard_for(49) == 0
        assert part.shard_for(50) == 1

    @settings(max_examples=30, deadline=None)
    @given(
        num_keys=st.integers(min_value=8, max_value=10_000),
        shards=st.integers(min_value=1, max_value=8),
    )
    def test_partition_is_total_and_contiguous(self, num_keys, shards):
        part = RangePartitioner(num_keys, shards)
        previous = -1
        for shard in range(shards):
            low, high = part.shard_range(shard)
            assert low == previous + 1 or low == previous  # empty slice ok
            assert low <= high
            previous = high - 1
        assert part.shard_range(shards - 1)[1] == num_keys

    def test_custom_boundaries(self):
        part = RangePartitioner(100, 3, boundaries=[10, 90])
        assert part.shard_for(9) == 0
        assert part.shard_for(10) == 1
        assert part.shard_for(89) == 1
        assert part.shard_for(90) == 2

    def test_bad_boundaries_rejected(self):
        with pytest.raises(ConfigError):
            RangePartitioner(100, 3, boundaries=[50, 40])
        with pytest.raises(ConfigError):
            RangePartitioner(100, 3, boundaries=[0, 50])
        with pytest.raises(ConfigError):
            RangePartitioner(100, 2, boundaries=[100])


class TestSplitRouter:
    def test_overlay_redirects_only_the_migrated_range(self):
        base = RangePartitioner(100, 2)
        router = SplitRouter(base, 30, 50, target=1)
        for key in range(100):
            expected = 1 if 30 <= key < 50 else base.shard_for(key)
            assert router.shard_for(key) == expected

    def test_empty_range_rejected(self):
        base = RangePartitioner(100, 2)
        with pytest.raises(ConfigError):
            SplitRouter(base, 50, 50, target=1)
