"""Tests for the structural integrity checker + its use as a property."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import EngineError
from repro.validation import check_engine

from .conftest import ENGINE_CLASSES, make_engine


class TestCheckerCatchesCorruption:
    def test_healthy_engine_passes(self):
        engine, clock, *_ = make_engine("lsbm")
        rng = random.Random(1)
        for step in range(2000):
            engine.put(rng.randrange(2048))
            if step % 40 == 0:
                clock.advance(1)
                engine.tick(clock.now)
        check_engine(engine)  # Must not raise.

    def test_detects_overlapping_run(self):
        engine, *_ = make_engine("leveldb")
        rng = random.Random(2)
        for _ in range(1500):
            engine.put(rng.randrange(2048))
        # Corrupt: force two files of the top level to overlap.
        files = engine.levels[1].files or engine.levels[2].files
        target_level = engine.levels[1] if engine.levels[1].files else engine.levels[2]
        if len(files) >= 2:
            files[1].min_key = files[0].min_key  # Corrupt the metadata.
            target_level._files[1] = files[1]
            with pytest.raises(EngineError, match="overlap"):
                check_engine(engine)

    def test_detects_leaked_extent(self):
        engine, _, disk, _ = make_engine("blsm")
        rng = random.Random(3)
        for _ in range(1500):
            engine.put(rng.randrange(2048))
        # Corrupt: free a live file's extent behind the engine's back.
        victim = next(
            file
            for level in range(1, engine.num_levels + 1)
            for file in engine.c[level].files
        )
        disk.free(victim.extent)
        with pytest.raises(EngineError, match="freed extent"):
            check_engine(engine)

    def test_detects_frozen_level_with_data(self):
        engine, clock, *_ = make_engine("lsbm")
        rng = random.Random(4)
        for step in range(1500):
            engine.put(rng.randrange(2048))
            if step % 40 == 0:
                clock.advance(1)
                engine.tick(clock.now)
        level = next(
            (lvl for lvl in engine.buffer[1:] if lvl.live_kb > 0), None
        )
        if level is not None:
            level.frozen = True  # Corrupt: freeze without discarding.
            with pytest.raises(EngineError, match="frozen"):
                check_engine(engine)

    def test_unknown_engine_rejected(self):
        with pytest.raises(EngineError):
            check_engine(object())


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["put", "put", "put", "delete"]),
            st.integers(min_value=0, max_value=1023),
        ),
        min_size=20,
        max_size=400,
    )
)
@pytest.mark.parametrize("engine_name", sorted(ENGINE_CLASSES))
def test_integrity_holds_under_arbitrary_streams(engine_name, ops):
    """After any operation stream, every structural invariant holds."""
    engine, clock, *_ = make_engine(engine_name)
    for step, (op, key) in enumerate(ops):
        if op == "put":
            engine.put(key)
        else:
            engine.delete(key)
        if step % 23 == 0:
            clock.advance(1)
            engine.tick(clock.now)
    check_engine(engine)
