"""Differential harness: oracle lockstep + invariant checkers + mutations.

The positive tests replay the pinned seed corpus across every engine
variant and require oracle-identical answers with all invariants green.
The mutation smoke tests deliberately break the system under test — an
off-by-one in the trim pass, a leaked extent, a skipped cache
invalidation, a swallowed delete — and require the harness to notice:
a checker that cannot fail is not checking anything.
"""

from __future__ import annotations

import pytest

from repro.check import DifferentialRunner, KVOracle, ScheduleSpec
from repro.check.schedule import generate_schedule
from repro.core.trim import TrimProcess
from repro.lsm.base import LSMEngine
from repro.lsm.leveldb import LevelDBTree
from repro.obs.events import TrimRun
from repro.sim.experiment import ENGINE_NAMES
from repro.storage.disk import SimulatedDisk

# ----------------------------------------------------------------------
# The oracle itself.
# ----------------------------------------------------------------------


class TestKVOracle:
    def test_put_get_roundtrip(self):
        oracle = KVOracle()
        oracle.put(7, 3)
        assert oracle.get(7) == (True, "v7:3")
        assert oracle.get(8) == (False, None)

    def test_overwrite_takes_newest_seq(self):
        oracle = KVOracle()
        oracle.put(7, 3)
        oracle.put(7, 9)
        assert oracle.get(7) == (True, "v7:9")

    def test_delete_removes(self):
        oracle = KVOracle()
        oracle.put(7, 3)
        oracle.delete(7)
        assert oracle.get(7) == (False, None)
        assert len(oracle) == 0

    def test_scan_sorted_closed_range(self):
        oracle = KVOracle()
        for key, seq in [(5, 1), (3, 2), (9, 3), (4, 4)]:
            oracle.put(key, seq)
        assert oracle.scan(3, 5) == [(3, "v3:2"), (4, "v4:4"), (5, "v5:1")]
        assert oracle.scan(6, 8) == []

    def test_copy_is_independent(self):
        oracle = KVOracle()
        oracle.put(1, 1)
        clone = oracle.copy()
        clone.delete(1)
        assert oracle.get(1)[0] and not clone.get(1)[0]


# ----------------------------------------------------------------------
# Schedules are pure functions of their spec.
# ----------------------------------------------------------------------


def test_schedule_is_deterministic():
    spec = ScheduleSpec(seed=42, ops=500)
    assert generate_schedule(spec) == generate_schedule(spec)


def test_schedule_covers_all_op_kinds():
    names = {op.name for op in generate_schedule(ScheduleSpec(seed=0, ops=500))}
    assert names == {"put", "get", "delete", "scan", "tick"}


def test_different_seeds_differ():
    a = generate_schedule(ScheduleSpec(seed=0, ops=200))
    b = generate_schedule(ScheduleSpec(seed=1, ops=200))
    assert a != b


# ----------------------------------------------------------------------
# Every variant stays oracle-identical on the corpus seeds.
# ----------------------------------------------------------------------


@pytest.mark.parametrize("engine_name", ENGINE_NAMES)
def test_engine_matches_oracle(engine_name, seed_corpus):
    diff = seed_corpus["differential"]
    for seed in diff["seeds"]:
        report = DifferentialRunner(
            engine_name,
            seed=seed,
            ops=diff["ops"],
            key_space=diff["key_space"],
        ).run()
        assert report.ok, report.to_json_dict()
        assert report.oracle_checks > 0
        assert report.invariants["ledger"]["checked"] > 0


def test_lsbm_schedule_exercises_trim(seed_corpus):
    """The corpus must actually drive trims, or trim-bound is vacuous."""
    diff = seed_corpus["differential"]
    report = DifferentialRunner(
        "lsbm",
        seed=diff["seeds"][0],
        ops=diff["ops"],
        key_space=diff["key_space"],
    ).run()
    assert report.ok
    assert report.trim_runs > 0


# ----------------------------------------------------------------------
# Pinned regressions (bugs the harness found, fixed in this tree).
# ----------------------------------------------------------------------


def test_pinned_regressions_stay_fixed(seed_corpus):
    for entry in seed_corpus["regressions"]:
        report = DifferentialRunner(
            entry["engine"],
            seed=entry["seed"],
            ops=entry["ops"],
            key_space=entry["key_space"],
        ).run()
        assert report.ok, (entry["name"], report.to_json_dict())


# ----------------------------------------------------------------------
# Mutation smoke tests: break the system, require detection.
# ----------------------------------------------------------------------


def test_trim_off_by_one_is_caught(monkeypatch):
    """An off-by-one trim pass (skips each table's last file) must trip
    the trim-bound checker."""

    def buggy_run(self, buffer_levels):
        self.runs += 1
        removed = 0
        for level in buffer_levels:
            for table in level.trimmable_tables():
                for file in list(table)[:-1]:  # Off by one: last file kept.
                    if file.removed:
                        continue
                    cached = self._cached_blocks(file.file_id)
                    if cached / file.num_blocks < self._threshold:
                        self._remove_file(file)
                        removed += 1
        self.files_trimmed += removed
        if self._bus is not None and self._bus.active:
            self._bus.emit(TrimRun(removed=removed, run_index=self.runs))
        return removed

    monkeypatch.setattr(TrimProcess, "run", buggy_run)
    report = DifferentialRunner("lsbm", seed=0, ops=8000).run()
    trim_bound = report.invariants["trim-bound"]
    assert not report.ok
    assert trim_bound["violations"] > 0
    assert "kept with" in trim_bound["examples"][0]


def test_unmutated_trim_is_green_and_non_vacuous():
    report = DifferentialRunner("lsbm", seed=0, ops=8000).run()
    assert report.ok
    assert report.trim_runs > 0
    assert report.invariants["trim-bound"]["checked"] > 0


def test_leaked_extent_is_caught(monkeypatch):
    """Skipping the disk free on discard must break ledger reconciliation."""
    real_free = SimulatedDisk.free
    state = {"skipped": 0}

    def leaky_free(self, extent):
        state["skipped"] += 1
        if state["skipped"] % 5 == 0:
            return  # Leak every fifth extent.
        real_free(self, extent)

    monkeypatch.setattr(SimulatedDisk, "free", leaky_free)
    report = DifferentialRunner("leveldb", seed=0, ops=4000).run()
    assert not report.ok
    assert report.invariants["ledger"]["violations"] > 0


def test_skipped_invalidation_is_caught(monkeypatch):
    """Discarding a file without invalidating its cached blocks must trip
    the coherence checker (the exact bug class the paper is about)."""
    real_discard = LSMEngine._discard_file

    def stale_discard(self, file):
        cache = self.db_cache
        self.db_cache = None  # Forget to invalidate.
        try:
            real_discard(self, file)
        finally:
            self.db_cache = cache

    monkeypatch.setattr(LSMEngine, "_discard_file", stale_discard)
    report = DifferentialRunner("leveldb", seed=0, ops=4000).run()
    assert not report.ok
    assert report.invariants["cache-coherence"]["violations"] > 0


def test_swallowed_delete_is_caught(monkeypatch):
    """An engine that drops deletes must diverge from the oracle."""

    def swallowed(self, key):
        self._check_open()
        self._seq += 1
        return self._seq  # Sequence consumed, tombstone never written.

    monkeypatch.setattr(LevelDBTree, "delete", swallowed)
    report = DifferentialRunner("leveldb", seed=0, ops=2000).run()
    assert report.mismatch_count > 0
