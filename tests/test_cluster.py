"""Correctness tests for the sharded cluster tier.

The cluster's claims are proven differentially, against artifacts the
repo already trusts:

* a 1-shard cluster run is **bit-identical** (lossless ``to_dict``
  equality plus ordered event streams) to the equivalent single-engine
  serve run, over the pinned differential seeds in ``tests/seeds.json``;
* parallel shard execution (``jobs=N``) is bit-identical to serial
  (``jobs=1``), and the coordinated in-process path agrees with the
  fanned path for specs without a split;
* a live shard split migrates a key range mid-run without violating
  the KV contract — every post-split read is checked against a
  cluster-wide :class:`~repro.check.oracle.KVOracle`.

Runs use scale 8192 (tiny config: 2560 unique keys, 384-pair hot
range) so each test stays in the tens of milliseconds.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cluster import (
    ClusterResult,
    ClusterSpec,
    MigrationReport,
    ShardSpec,
    execute_shard,
    expand_cluster_grid,
    prepare_shard,
    run_cluster,
    run_cluster_grid,
    run_coordinated,
)
from repro.errors import ConfigError
from repro.serve.service import execute_serve, finalize_serve, prepare_serve

PINNED_SEEDS = json.loads(
    (Path(__file__).parent / "seeds.json").read_text()
)["differential"]["seeds"]

#: Small-but-busy parameters validated by hand: ~750 arrivals over the
#: run, with retries and shedding exercised.
SCALE = 8192
DURATION = 300
RATE = 30_000.0


def cluster_spec(**overrides) -> ClusterSpec:
    params: dict = dict(
        engine="lsbm",
        num_shards=2,
        partitioner="hash",
        scale=SCALE,
        duration_s=DURATION,
        read_rate_qps=RATE,
        seed=0,
    )
    params.update(overrides)
    return ClusterSpec(**params)


class TestSingleShardDifferential:
    """One shard, all-pass filters: the cluster IS the serve layer."""

    @pytest.mark.parametrize("seed", PINNED_SEEDS)
    def test_one_shard_cluster_equals_single_engine_serve(self, seed):
        spec = cluster_spec(num_shards=1, seed=seed)
        cluster = run_cluster(spec)
        single = execute_serve(spec.service_spec())
        assert cluster.num_shards == 1
        assert cluster.shards[0].to_dict() == single.to_dict()

    @pytest.mark.parametrize("partitioner", ["hash", "range"])
    def test_one_shard_differential_holds_for_both_partitioners(
        self, partitioner
    ):
        spec = cluster_spec(num_shards=1, partitioner=partitioner)
        cluster = run_cluster(spec)
        single = execute_serve(spec.service_spec())
        assert cluster.shards[0].to_dict() == single.to_dict()

    def test_one_shard_event_streams_identical_and_ordered(self):
        spec = cluster_spec(num_shards=1, seed=1)

        shard_events: list[str] = []
        session = prepare_shard(spec, 0)
        session.setup.engine.bus.subscribe_all(
            lambda event: shard_events.append(repr(event))
        )
        finalize_serve(session, session.simulator.run(session.duration_s))

        serve_events: list[str] = []
        session = prepare_serve(spec.service_spec())
        session.setup.engine.bus.subscribe_all(
            lambda event: serve_events.append(repr(event))
        )
        finalize_serve(session, session.simulator.run(session.duration_s))

        assert shard_events, "run emitted no events"
        assert shard_events == serve_events

    def test_shards_partition_the_request_stream(self):
        """N-shard totals must match the 1-shard run exactly: routing
        partitions the arrival stream, it never drops or invents
        requests."""
        whole = run_cluster(cluster_spec(num_shards=1))
        split = run_cluster(cluster_spec(num_shards=3))
        whole_arrived = sum(
            stats.arrived
            for stats in whole.shards[0].class_stats.values()
        )
        split_arrived = sum(
            stats.arrived
            for shard in split.shards
            for stats in shard.class_stats.values()
        )
        assert split_arrived == whole_arrived


class TestParallelEquivalence:
    def test_jobs_1_equals_jobs_2(self):
        spec = cluster_spec(num_shards=2)
        serial = run_cluster(spec, jobs=1)
        parallel = run_cluster(spec, jobs=2)
        assert serial.to_dict() == parallel.to_dict()

    def test_coordinated_equals_fanned_without_split(self):
        spec = cluster_spec(num_shards=2, partitioner="range")
        fanned = run_cluster(spec, jobs=1)
        coordinated = run_coordinated(spec)
        assert [s.to_dict() for s in coordinated.shards] == [
            s.to_dict() for s in fanned.shards
        ]


class TestShardSplit:
    SPLIT_PARAMS: dict = dict(
        partitioner="range",
        num_shards=2,
        duration_s=400,
        read_rate_qps=RATE,
        write_rate_qps=20_000.0,
        split_at_s=200,
        split_source=0,
        split_target=1,
        split_fraction=0.5,
    )

    def test_split_preserves_kv_oracle_consistency(self):
        spec = cluster_spec(verify=True, **self.SPLIT_PARAMS)
        result = run_coordinated(spec)
        assert result.verify is not None
        assert result.verify["reads_checked"] > 0
        assert result.verify["writes_recorded"] > 0
        assert result.verify["read_mismatches"] == 0

    def test_split_migrates_range_and_requests(self):
        spec = cluster_spec(**self.SPLIT_PARAMS)
        result = run_coordinated(spec)
        migration = result.migration
        assert migration is not None
        assert migration.at_s == 200
        assert (migration.source, migration.target) == (0, 1)
        assert migration.low < migration.high
        assert migration.entries > 0
        # Both shards published the migration on their event buses.
        for shard in result.shards:
            assert shard.event_counts.get("RangeMigrated") == 1
        # Post-split, the target serves the migrated hot range: it
        # completes reads it would never have seen pre-split.
        assert result.shards[1].reads_completed > 0

    def test_split_reroutes_post_split_arrivals(self):
        """The request router sends post-split arrivals for the
        migrated range to the target shard."""
        spec = cluster_spec(**self.SPLIT_PARAMS)
        config = spec.config()
        low, high = spec.split_range(config)
        route = spec.request_router(config)

        from repro.serve.arrivals import Request

        key = (low + high) // 2
        before = Request(
            key=key, op="read", klass="readers", arrival_s=100.0, seq=0
        )
        after = Request(
            key=key, op="read", klass="readers", arrival_s=250.0, seq=1
        )
        assert route(before) == 0
        assert route(after) == 1
        # Keys outside the migrated range never move.
        outside = Request(
            key=low - 1, op="read", klass="readers", arrival_s=250.0, seq=2
        )
        assert route(outside) == 0

    def test_split_scheduled_past_the_end_is_an_error(self):
        spec = cluster_spec(**dict(self.SPLIT_PARAMS, split_at_s=400))
        with pytest.raises(ConfigError, match="outside the run"):
            run_coordinated(spec)


class TestValidation:
    def test_split_requires_range_partitioner(self):
        with pytest.raises(ConfigError, match="range"):
            cluster_spec(partitioner="hash", split_at_s=100)

    def test_split_requires_two_shards(self):
        with pytest.raises(ConfigError):
            cluster_spec(num_shards=1, partitioner="range", split_at_s=100)

    def test_split_source_and_target_must_differ(self):
        with pytest.raises(ConfigError):
            cluster_spec(
                partitioner="range", split_at_s=100,
                split_source=1, split_target=1,
            )

    def test_split_fraction_bounds(self):
        with pytest.raises(ConfigError):
            cluster_spec(
                partitioner="range", split_at_s=100, split_fraction=1.0
            )

    def test_unknown_partitioner_rejected(self):
        with pytest.raises(ConfigError):
            cluster_spec(partitioner="modulo")

    def test_shard_spec_index_bounds(self):
        with pytest.raises(ConfigError):
            ShardSpec(cluster=cluster_spec(num_shards=2), shard=2)

    def test_execute_shard_refuses_coordinated_specs(self):
        spec = cluster_spec(
            partitioner="range", split_at_s=100, duration_s=DURATION
        )
        with pytest.raises(ConfigError, match="coordinated"):
            execute_shard(ShardSpec(cluster=spec, shard=0))

    def test_duplicate_grid_specs_rejected(self):
        spec = cluster_spec()
        with pytest.raises(ConfigError, match="duplicate"):
            run_cluster_grid([spec, spec])


class TestTransport:
    def test_cluster_result_round_trips_losslessly(self):
        spec = cluster_spec(num_shards=2)
        result = run_cluster(spec)
        rebuilt = ClusterResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert rebuilt.to_dict() == result.to_dict()

    def test_split_result_round_trips_with_migration_and_verify(self):
        spec = cluster_spec(verify=True, **TestShardSplit.SPLIT_PARAMS)
        result = run_coordinated(spec)
        rebuilt = ClusterResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert rebuilt.to_dict() == result.to_dict()
        assert isinstance(rebuilt.migration, MigrationReport)
        assert rebuilt.verify == result.verify

    def test_spec_round_trips(self):
        spec = cluster_spec(
            verify=True, **TestShardSplit.SPLIT_PARAMS
        )
        rebuilt = ClusterSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))
        )
        assert rebuilt == spec
        assert rebuilt.label() == spec.label()

    def test_grid_expansion_counts_and_labels(self):
        specs = expand_cluster_grid(
            ["lsbm", "leveldb"], [1, 2], ["hash", "range"], [RATE],
            [0, 1], scale=SCALE, duration_s=DURATION,
        )
        assert len(specs) == 2 * 2 * 2 * 1 * 2
        assert len({spec.label() for spec in specs}) == len(specs)


class TestAggregates:
    def test_fleet_aggregates_sum_shard_ledgers(self):
        result = run_cluster(cluster_spec(num_shards=3))
        assert result.reads_completed == sum(
            shard.reads_completed for shard in result.shards
        )
        assert result.goodput_qps() == pytest.approx(
            sum(shard.goodput_qps() for shard in result.shards)
        )
        summary = result.per_shard_summary()
        assert set(summary) == {"0", "1", "2"}
        assert result.read_imbalance() >= 1.0
        assert 0 <= result.hottest_shard() < 3
        assert len(result.shard_read_p99_ms()) == 3

    def test_bench_entry_shape(self):
        result = run_cluster(cluster_spec(num_shards=2))
        entry = result.to_json_dict()
        assert entry["kind"] == "cluster"
        assert entry["num_shards"] == 2
        assert set(entry["per_shard"]) == {"0", "1"}
        assert len(entry["shard_read_p99_ms"]) == 2
