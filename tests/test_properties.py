"""Property-based tests (hypothesis) on core structures and engines.

The headline property: every engine — across compactions, buffered merges,
freezes, pace removals and trims — behaves exactly like a dict that keeps
the newest write per key.  Plus structural invariants on the pieces the
engines are made of.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bloom import BloomFilter
from repro.clock import VirtualClock
from repro.config import SystemConfig
from repro.sstable.builder import TableBuilder
from repro.sstable.entry import Entry, value_for
from repro.sstable.iterator import merge_entries
from repro.sstable.sorted_table import SortedTable
from repro.sstable.sstable import FileIdSource
from repro.sstable.superfile import SuperFileIdSource
from repro.storage.disk import SimulatedDisk

from .conftest import ENGINE_CLASSES, make_engine

KEYSPACE = 512

# Operation stream: (op, key) with op in put/delete/get/scan.
_ops = st.lists(
    st.tuples(
        st.sampled_from(["put", "put", "put", "delete", "get", "scan"]),
        st.integers(min_value=0, max_value=KEYSPACE - 1),
    ),
    min_size=1,
    max_size=300,
)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=_ops, seed=st.integers(min_value=0, max_value=10))
@pytest.mark.parametrize("engine_name", sorted(ENGINE_CLASSES))
def test_engine_equals_model(engine_name, ops, seed):
    """Any operation stream: engine answers == newest-write dict."""
    config = SystemConfig.tiny().replace(
        level0_size_kb=16, cache_size_kb=64, unique_keys=KEYSPACE
    )
    engine, clock, _, _ = make_engine(engine_name, config)
    model: dict[int, int] = {}
    rng = random.Random(seed)
    for step, (op, key) in enumerate(ops):
        if op == "put":
            model[key] = engine.put(key)
        elif op == "delete":
            engine.delete(key)
            model.pop(key, None)
        elif op == "get":
            result = engine.get(key)
            if key in model:
                assert result.found and result.value == value_for(key, model[key])
            else:
                assert not result.found
        else:  # scan
            high = key + rng.randrange(64)
            got = {e.key: e.seq for e in engine.scan(key, high).entries}
            want = {k: s for k, s in model.items() if key <= k <= high}
            assert got == want
        if step % 17 == 0:
            clock.advance(1)
            engine.tick(clock.now)
    # Closing sweep: every key answers correctly.
    for key in range(0, KEYSPACE, 7):
        result = engine.get(key)
        assert result.found == (key in model)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=-(2**40), max_value=2**40), max_size=400))
def test_bloom_never_false_negative(keys):
    bloom = BloomFilter.build(keys, bits_per_key=10)
    for key in keys:
        assert bloom.may_contain(key)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.lists(
            st.integers(min_value=0, max_value=200), unique=True, max_size=50
        ),
        max_size=5,
    )
)
def test_merge_entries_is_sorted_union(key_lists):
    """Merging sorted unique sources yields the sorted key union, and the
    surviving version of each key is the one with the highest seq."""
    sources = []
    best: dict[int, int] = {}
    for index, keys in enumerate(key_lists):
        source = [Entry(k, index + 1) for k in sorted(keys)]
        sources.append(source)
        for entry in source:
            if best.get(entry.key, 0) < entry.seq:
                best[entry.key] = entry.seq
    merged = list(merge_entries(sources))
    assert [e.key for e in merged] == sorted(best)
    for entry in merged:
        assert entry.seq == best[entry.key]


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.integers(min_value=0, max_value=100_000),
        unique=True,
        min_size=1,
        max_size=300,
    )
)
def test_builder_roundtrip(keys):
    """Built files return exactly the entries fed in, in order, and every
    key is findable through the file index."""
    config = SystemConfig.tiny()
    disk = SimulatedDisk(VirtualClock(), config.seq_bandwidth_kb_per_s)
    builder = TableBuilder(config, disk, FileIdSource(), SuperFileIdSource())
    entries = [Entry(k, 1) for k in sorted(keys)]
    files = builder.build(iter(entries))
    recovered = [e for f in files for e in f.entries()]
    assert recovered == entries
    table = SortedTable(files)
    for entry in entries:
        file = table.find_file(entry.key)
        assert file is not None
        block = file.find_block(entry.key)
        assert block is not None and block.get(entry.key) == entry


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.integers(min_value=0, max_value=100_000),
        unique=True,
        min_size=1,
        max_size=200,
    ),
    st.integers(min_value=0, max_value=100_000),
    st.integers(min_value=0, max_value=2_000),
)
def test_sorted_table_range_queries(keys, low, span):
    config = SystemConfig.tiny()
    disk = SimulatedDisk(VirtualClock(), config.seq_bandwidth_kb_per_s)
    builder = TableBuilder(config, disk, FileIdSource(), SuperFileIdSource())
    table = SortedTable(builder.build(iter(Entry(k, 1) for k in sorted(keys))))
    high = low + span
    covered = [
        e.key
        for f in table.files_overlapping(low, high)
        for b in f.blocks_overlapping(low, high)
        for e in b.entries_in_range(low, high)
    ]
    assert covered == [k for k in sorted(keys) if low <= k <= high]


@settings(max_examples=20, deadline=None)
@given(
    writes=st.lists(
        st.integers(min_value=0, max_value=KEYSPACE - 1),
        min_size=50,
        max_size=400,
    )
)
def test_lsbm_buffer_is_subset_of_tree(writes):
    """Section V's subset property: every live compaction-buffer file's
    keys are also present in the underlying tree's runs for that level
    component — which is what makes the Bloom-gate skip correct."""
    config = SystemConfig.tiny().replace(level0_size_kb=16)
    engine, clock, _, _ = make_engine("lsbm", config)
    for step, key in enumerate(writes):
        engine.put(key)
        if step % 13 == 0:
            clock.advance(1)
            engine.tick(clock.now)
    for level in range(1, engine.num_levels + 1):
        buf = engine.buffer[level]
        run_keys = {e.key for e in engine.c[level].entries()}
        for table in buf.tables:
            for file in table:
                if file.removed:
                    continue
                for entry in file.entries():
                    assert entry.key in run_keys


@settings(max_examples=20, deadline=None)
@given(
    writes=st.lists(
        st.integers(min_value=0, max_value=KEYSPACE - 1),
        min_size=50,
        max_size=400,
    )
)
def test_disk_accounting_consistent(writes):
    """live_kb == allocated - freed at all times, for any engine flow."""
    engine, clock, disk, _ = make_engine("lsbm", SystemConfig.tiny())
    for step, key in enumerate(writes):
        engine.put(key)
        if step % 11 == 0:
            clock.advance(1)
            engine.tick(clock.now)
    allocator = disk._allocator
    assert disk.live_kb == allocator.allocated_kb_total - allocator.freed_kb_total
    assert disk.live_kb >= 0


@settings(max_examples=20, deadline=None)
@given(
    writes=st.lists(
        st.integers(min_value=0, max_value=KEYSPACE - 1),
        min_size=100,
        max_size=400,
    ),
    reads=st.lists(
        st.integers(min_value=0, max_value=KEYSPACE - 1),
        min_size=10,
        max_size=100,
    ),
)
def test_cache_counters_consistent(writes, reads):
    """The per-file cached-block counters always equal the true resident
    set sizes — the invariant LSbM's trim decisions rely on."""
    engine, clock, _, cache = make_engine("lsbm", SystemConfig.tiny())
    for step, key in enumerate(writes):
        engine.put(key)
        if step % 9 == 0:
            clock.advance(1)
            engine.tick(clock.now)
            for key2 in reads:
                engine.get(key2)
    by_file: dict[int, int] = {}
    for file_id, _block in list(cache._policy):
        by_file[file_id] = by_file.get(file_id, 0) + 1
    for file_id, count in by_file.items():
        assert cache.cached_blocks(file_id) == count
    assert sum(by_file.values()) == len(cache)
