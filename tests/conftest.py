"""Shared fixtures: a tiny config and fully wired engine stacks."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cache.db_cache import DBBufferCache
from repro.clock import VirtualClock
from repro.config import SystemConfig
from repro.core.lsbm import LSbMTree
from repro.lsm.blsm import BLSMTree
from repro.lsm.leveldb import LevelDBTree
from repro.lsm.sm_tree import SMTree
from repro.storage.disk import SimulatedDisk
from repro.variants.hbase import HBaseStyleStore
from repro.variants.warmup import WarmupBLSMTree

ENGINE_CLASSES = {
    "leveldb": LevelDBTree,
    "blsm": BLSMTree,
    "sm": SMTree,
    "lsbm": LSbMTree,
    "blsm+warmup": WarmupBLSMTree,
    "hbase": HBaseStyleStore,
}


@pytest.fixture
def tiny_config() -> SystemConfig:
    return SystemConfig.tiny()


@pytest.fixture
def clock() -> VirtualClock:
    return VirtualClock()


@pytest.fixture
def disk(tiny_config, clock) -> SimulatedDisk:
    return SimulatedDisk(clock, tiny_config.seq_bandwidth_kb_per_s)


@pytest.fixture
def db_cache(tiny_config) -> DBBufferCache:
    return DBBufferCache(tiny_config.cache_blocks)


def make_engine(name: str, config: SystemConfig | None = None):
    """Build one engine with a fresh substrate stack (helper, not fixture)."""
    config = config or SystemConfig.tiny()
    clock = VirtualClock()
    disk = SimulatedDisk(clock, config.seq_bandwidth_kb_per_s)
    cache = DBBufferCache(config.cache_blocks)
    engine = ENGINE_CLASSES[name](config, clock, disk, db_cache=cache)
    return engine, clock, disk, cache


@pytest.fixture(params=sorted(ENGINE_CLASSES))
def any_engine(request):
    """Parametrized fixture running a test against every engine."""
    return make_engine(request.param)


@pytest.fixture(scope="session")
def seed_corpus() -> dict:
    """The pinned seed corpus (tests/seeds.json).

    Differential failures are replayable by seed; bugs found by the
    harness pin their failing (engine, seed, ops, key_space) here as
    ``regressions`` entries so they stay covered forever.
    """
    path = Path(__file__).parent / "seeds.json"
    return json.loads(path.read_text())
