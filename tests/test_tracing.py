"""Tests for end-to-end request tracing (repro.obs.tracing + expo).

The tentpole's acceptance criteria, asserted directly:

* **Exact reconciliation** — for every exemplar span tree, the
  left-to-right sum of stage durations plus the queueing delay equals
  the recorded total *bitwise* (reconciliation error exactly ``0.0``),
  over the pinned differential seeds;
* **Determinism** — a seeded cluster run with tracing on produces
  identical trace ids, exemplars and flight dumps at ``jobs=1`` and
  ``jobs=2`` (ordered ``to_dict`` equality), and a request keeps the
  same trace id across shard counts;
* **Null path** — tracing off attaches no tracer and no flight
  recorder, keeps the bus counting-only, and leaves the run's results
  bit-identical to an exemplar-traced run modulo the trace fields;
* **Flight recorder** — fires on an injected stall spike and on an SLO
  breach in a real serve run, and the dumped window contains the
  causal events the diagnose layer attributes;
* **Per-shard dip diagnosis** — a live split's cold-range dip on the
  target shard is attributed to the ``RangeMigrated`` event in its
  window via :func:`diagnose_shard_dips`.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.clock import VirtualClock
from repro.cluster import ClusterSpec, run_cluster, run_coordinated
from repro.obs.diagnose import (
    CAUSAL_EVENT_TYPES,
    diagnose_shard_dips,
)
from repro.obs.events import CacheInvalidated, EventBus, FlushDone
from repro.obs.expo import (
    render_openmetrics,
    render_openmetrics_many,
    sanitize_metric_name,
)
from repro.obs.trace import TraceRecorder
from repro.obs.tracing import (
    FlightPolicy,
    FlightRecorder,
    RequestTracer,
    exemplar_summary,
    make_trace_id,
    reconciliation_error_s,
    span_tree,
    stage_sum_s,
    validate_exemplar,
    validate_trace_jsonl,
    write_exemplars_jsonl,
)
from repro.serve.arrivals import Request
from repro.serve.service import execute_serve, prepare_serve
from repro.serve.spec import ServiceSpec

PINNED_SEEDS = json.loads(
    (Path(__file__).parent / "seeds.json").read_text()
)["differential"]["seeds"]

#: Same small-but-busy cell the cluster differential tests use.
SCALE = 8192
DURATION = 300
RATE = 30_000.0


def serve_spec(**overrides) -> ServiceSpec:
    params: dict = dict(
        engine="lsbm",
        scale=SCALE,
        duration_s=DURATION,
        read_rate_qps=RATE,
        seed=0,
    )
    params.update(overrides)
    return ServiceSpec(**params)


def cluster_spec(**overrides) -> ClusterSpec:
    params: dict = dict(
        engine="lsbm",
        num_shards=2,
        partitioner="hash",
        scale=SCALE,
        duration_s=DURATION,
        read_rate_qps=RATE,
        seed=0,
    )
    params.update(overrides)
    return ClusterSpec(**params)


class TestTraceIdentity:
    def test_trace_id_is_deterministic_16_hex(self):
        assert make_trace_id(0, 5) == make_trace_id(0, 5)
        assert make_trace_id(0, 5) != make_trace_id(1, 5)
        assert make_trace_id(0, 5) != make_trace_id(0, 6)
        assert len(make_trace_id(3, 12345)) == 16
        int(make_trace_id(3, 12345), 16)  # hex

    def test_exemplar_ids_derive_from_seed_and_seq(self):
        result = execute_serve(serve_spec(trace="full", seed=1))
        assert result.exemplars
        for record in result.exemplars:
            assert record["trace_id"] == make_trace_id(1, record["seq"])

    def test_trace_ids_survive_shard_count_changes(self):
        """The same request keeps its id in 1-shard and 2-shard runs."""
        one = run_cluster(cluster_spec(num_shards=1, trace="full"))
        two = run_cluster(cluster_spec(num_shards=2, trace="full"))
        ids_one = {
            record["seq"]: record["trace_id"]
            for shard in one.shards
            for record in shard.exemplars
        }
        ids_two = {
            record["seq"]: record["trace_id"]
            for shard in two.shards
            for record in shard.exemplars
        }
        shared = set(ids_one) & set(ids_two)
        assert shared, "the runs must complete overlapping requests"
        for seq in shared:
            assert ids_one[seq] == ids_two[seq]


class TestExactReconciliation:
    @pytest.mark.parametrize("seed", PINNED_SEEDS)
    def test_every_exemplar_reconciles_exactly(self, seed):
        result = execute_serve(serve_spec(trace="full", seed=seed))
        assert len(result.exemplars) > 50
        ops = {record["op"] for record in result.exemplars}
        assert "read" in ops and "write" in ops
        for record in result.exemplars:
            validate_exemplar(record)
            assert reconciliation_error_s(record) == 0.0
            assert stage_sum_s(record["stages"]) == record["service_s"]
            assert (
                record["queue_delay_s"] + record["service_s"]
                == record["total_s"]
            )

    def test_scan_exemplars_reconcile_exactly(self):
        from repro.serve.arrivals import ClientClass

        result = execute_serve(
            serve_spec(
                trace="full",
                read_rate_qps=8000.0,
                classes=(
                    ClientClass(name="scanners", op="scan", rate_qps=8000.0),
                ),
            )
        )
        scans = [r for r in result.exemplars if r["op"] == "scan"]
        assert scans
        for record in scans:
            validate_exemplar(record)
            assert reconciliation_error_s(record) == 0.0
            assert any(
                stage["stage"] == "scan_pairs" for stage in record["stages"]
            )

    def test_span_tree_mirrors_the_flat_record(self):
        result = execute_serve(serve_spec(trace="exemplar"))
        record = result.exemplars[0]
        tree = span_tree(record)
        assert tree["duration_s"] == record["total_s"]
        queue, service = tree["children"]
        assert queue["name"] == "queue"
        assert queue["duration_s"] == record["queue_delay_s"]
        assert service["duration_s"] == record["service_s"]
        leaf_sum = 0.0
        for leaf in service["children"]:
            leaf_sum += leaf["duration_s"]
        assert leaf_sum == record["service_s"]

    def test_exemplar_summary_names_the_top_stage(self):
        record = {
            "trace_id": make_trace_id(0, 9),
            "seq": 9,
            "shard": 1,
            "klass": "readers",
            "op": "read",
            "sampled": "tail",
            "total_s": 0.5,
            "queue_delay_s": 0.4,
            "service_s": 0.1,
            "stages": [
                {"stage": "cpu", "duration_s": 0.02},
                {"stage": "disk_random", "duration_s": 0.08},
            ],
        }
        digest = exemplar_summary(record)
        assert digest["top_stage"] == "queue"
        assert digest["top_stage_ms"] == 400.0
        assert digest["shard"] == 1


class TestClusterTraceDeterminism:
    def test_cluster_trace_identical_across_jobs(self):
        spec = cluster_spec(trace="exemplar")
        serial = run_cluster(spec, jobs=1)
        fanned = run_cluster(spec, jobs=2)
        assert serial.to_dict() == fanned.to_dict()
        assert any(shard.exemplars for shard in serial.shards)
        for a, b in zip(serial.shards, fanned.shards):
            assert a.exemplars == b.exemplars
            assert a.flight_dumps == b.flight_dumps

    def test_same_spec_reruns_identically(self):
        spec = cluster_spec(trace="full", seed=2)
        first = run_cluster(spec)
        second = run_cluster(spec)
        assert first.to_dict() == second.to_dict()

    def test_worst_exemplars_rank_across_shards(self):
        result = run_cluster(cluster_spec(trace="exemplar"))
        worst = result.worst_exemplars(5)
        assert worst
        totals = [digest["total_ms"] for digest in worst]
        assert totals == sorted(totals, reverse=True)
        assert {digest["shard"] for digest in worst} <= {0, 1}


class TestNullPath:
    def test_off_attaches_no_tracer_and_keeps_bus_counting_only(self):
        session = prepare_serve(serve_spec())
        assert session.simulator.tracer is None
        assert session.simulator.flight is None
        assert session.setup.engine.bus.counting_only

    def test_tracing_disables_counting_only_but_not_results(self):
        off = execute_serve(serve_spec(trace="off"))
        traced = execute_serve(serve_spec(trace="exemplar"))
        assert off.trace_mode == "off"
        assert off.exemplars == [] and off.flight_dumps == []
        assert traced.exemplars

        def strip(result) -> dict:
            payload = result.to_dict()
            for key in ("trace_mode", "exemplars", "flight_dumps"):
                payload.pop(key, None)
            return payload

        assert strip(off) == strip(traced)


class TestTailSampler:
    def _request(self, seq: int) -> Request:
        return Request(
            seq=seq, klass="writers", op="write", key=seq, arrival_s=0.0
        )

    def test_tail_heap_keeps_the_worst_k(self):
        tracer = RequestTracer(
            mode="exemplar", seed=0, tail_k=4, uniform_every=10_000
        )
        tracer._cache_hit_s = 0.001
        for seq in range(100):
            total = 0.001 * seq
            tracer.offer_write(self._request(seq), 0.0, total, total, 0.0)
        tail = [r for r in tracer.exemplars() if r["sampled"] == "tail"]
        assert len(tail) == 4
        assert sorted(r["seq"] for r in tail) == [96, 97, 98, 99]

    def test_uniform_sample_every_nth_offer(self):
        tracer = RequestTracer(
            mode="exemplar", seed=0, tail_k=1, uniform_every=7
        )
        tracer._cache_hit_s = 0.001
        for seq in range(21):
            tracer.offer_write(self._request(seq), 0.0, 0.001, 0.001, 0.0)
        uniform = [
            r for r in tracer.exemplars() if r["sampled"] == "uniform"
        ]
        assert [r["seq"] for r in uniform] == [0, 7, 14]

    def test_full_mode_keeps_everything_up_to_the_cap(self):
        tracer = RequestTracer(mode="full", seed=0, max_exemplars=5)
        tracer._cache_hit_s = 0.001
        for seq in range(8):
            tracer.offer_write(self._request(seq), 0.0, 0.001, 0.001, 0.0)
        assert len(tracer.exemplars()) == 5
        assert tracer.dropped == 3

    def test_mode_validation(self):
        with pytest.raises(ValueError):
            RequestTracer(mode="off", seed=0)
        with pytest.raises(ValueError):
            RequestTracer(mode="verbose", seed=0)
        with pytest.raises(ValueError):
            RequestTracer(mode="exemplar", seed=0, tail_k=0)


class TestFlightRecorder:
    def _recorder(self, tmp_path=None, **policy) -> FlightRecorder:
        params = dict(cooldown_s=0.0, max_dumps=8)
        params.update(policy)
        clock = VirtualClock()
        bus = EventBus()
        recorder = FlightRecorder(
            clock,
            bus=bus,
            policy=FlightPolicy(**params),
            shard=0,
            out_dir=tmp_path,
            label="unit",
        )
        return recorder

    def test_slo_breach_dump_contains_causal_window(self, tmp_path):
        clock = VirtualClock()
        bus = EventBus()
        flight = FlightRecorder(
            clock,
            bus=bus,
            policy=FlightPolicy(slo_total_s=1.0, cooldown_s=0.0),
            shard=0,
            out_dir=tmp_path,
            label="unit",
        )
        bus.emit(CacheInvalidated(cache="db", file_id=3, blocks=7))
        clock.advance(5)
        bus.emit(FlushDone(entries=10, files=1, size_kb=4.0))
        flight.observe_latency(clock.now, total_s=2.5, seq=42, klass="r")
        assert len(flight.dumps) == 1
        dump = flight.dumps[0]
        assert dump["trigger"] == "slo-breach"
        assert dump["seq"] == 42
        names = [record["event"] for record in dump["records"]]
        assert "CacheInvalidated" in names
        assert set(names) & set(CAUSAL_EVENT_TYPES)
        files = list(tmp_path.glob("flight_*slo-breach*.jsonl"))
        assert len(files) == 1
        assert validate_trace_jsonl(files[0]) == 3

    def test_stall_spike_and_dip_triggers(self):
        flight = self._recorder()
        flight.observe_stall(1.0, 0.1)  # under the 0.25 budget: no dump
        flight.observe_stall(2.0, 0.9)
        flight.observe_hit_ratio(3.0, 0.95)  # healthy: no dump
        flight.observe_hit_ratio(4.0, 0.2)
        assert flight.summary()["triggers"] == [
            "hit-ratio-dip", "stall-spike",
        ]

    def test_cooldown_suppresses_repeat_triggers(self):
        flight = self._recorder(cooldown_s=100.0)
        flight.observe_stall(10.0, 1.0)
        flight.observe_stall(50.0, 1.0)  # inside cooldown
        flight.observe_stall(120.0, 1.0)  # past cooldown
        assert len(flight.dumps) == 2

    def test_max_dumps_caps_the_budget(self):
        flight = self._recorder(max_dumps=2)
        for t in range(5):
            flight.observe_stall(float(t), 1.0)
        assert len(flight.dumps) == 2
        assert flight.dropped_dumps == 3

    def test_ring_is_bounded(self):
        flight = self._recorder(capacity=4)
        for t in range(10):
            flight.note(float(t), "Marker", index=t)
        flight.observe_stall(99.0, 1.0)
        records = flight.dumps[0]["records"]
        assert len(records) == 4
        assert [r["index"] for r in records] == [6, 7, 8, 9]

    def test_serve_run_fires_on_injected_stall_spike(self):
        """Bursty write pressure at tiny scale stalls; the recorder sees it."""
        spec = ServiceSpec(
            engine="lsbm",
            base="tiny",
            scale=0,
            duration_s=400,
            read_rate_qps=3.0,
            arrival="bursty",
            write_rate_qps=24.0,
            queue_bound=16,
            trace="exemplar",
            trace_stall_spike_s=0.05,
        )
        result = execute_serve(spec)
        triggers = {dump["trigger"] for dump in result.flight_dumps}
        assert "stall-spike" in triggers

    def test_serve_run_fires_on_slo_breach_with_causal_window(self):
        result = execute_serve(serve_spec(trace="exemplar"))
        breaches = [
            dump
            for dump in result.flight_dumps
            if dump["trigger"] == "slo-breach"
        ]
        assert breaches, "overload at this rate must breach the 1s SLO"
        # The ring subscribed to the shard bus, so the dumped window is
        # the same evidence stream diagnose_dips attributes from.
        assert any(dump["records"] for dump in result.flight_dumps)
        windowed = {
            record["event"]
            for dump in result.flight_dumps
            for record in dump["records"]
        }
        assert windowed & set(CAUSAL_EVENT_TYPES)


class TestShardDipDiagnosis:
    """Satellite: diagnose over cluster results, split window included."""

    def test_split_dip_attributed_to_range_migration(self):
        # split_fraction 0.6 migrates [512, 1280), which covers the
        # whole hot range ([544, 928) at this scale): the source shard
        # keeps its warm cache but loses every hot read, so its
        # windowed hit ratio collapses right after the split.
        spec = cluster_spec(
            partitioner="range",
            duration_s=400,
            read_rate_qps=8000.0,
            write_rate_qps=20_000.0,
            split_at_s=200,
            split_source=0,
            split_target=1,
            split_fraction=0.6,
        )
        recorders: dict[int, TraceRecorder] = {}

        def attach(session, shard: int) -> None:
            recorders[shard] = TraceRecorder(
                session.setup.clock, session.setup.engine.bus
            )

        result = run_coordinated(spec, attach=attach)
        assert result.migration is not None
        series = result.shards[spec.split_source].hit_ratio
        split_at = spec.split_at_s
        pre = [
            value
            for time, value in zip(series.times, series.values)
            if time < split_at
        ]
        post = [
            value
            for time, value in zip(series.times, series.values)
            if time >= split_at
        ]
        assert pre and post
        # Losing the hot range must drop the source's hit ratio.
        assert max(pre) > min(post)
        threshold = (max(pre) + min(post)) / 2
        reports = diagnose_shard_dips(
            [shard.hit_ratio for shard in result.shards],
            [recorders[shard].records for shard in sorted(recorders)],
            threshold=threshold,
        )
        assert set(reports) == {0, 1}
        target = reports[spec.split_source]
        assert target.total_dips >= 1
        causes = target.cause_counts()
        assert causes.get("RangeMigrated", 0) >= 1
        # And the dip that crosses right after the split window is the
        # one the migration explains.
        migrated = [
            diagnosis
            for diagnosis in target.diagnoses
            if "RangeMigrated" in diagnosis.cause_counts
        ]
        assert migrated
        assert all(
            diagnosis.window_start <= split_at <= diagnosis.dip.time
            for diagnosis in migrated
        )

    def test_per_shard_reports_match_individual_diagnosis(self):
        from repro.obs.diagnose import diagnose_dips

        spec = cluster_spec()
        recorders: dict[int, TraceRecorder] = {}

        def attach(session, shard: int) -> None:
            recorders[shard] = TraceRecorder(
                session.setup.clock, session.setup.engine.bus
            )

        result = run_coordinated(spec, attach=attach)
        series = [shard.hit_ratio for shard in result.shards]
        records = [recorders[shard].records for shard in sorted(recorders)]
        combined = diagnose_shard_dips(series, records, threshold=0.7)
        for shard in range(spec.num_shards):
            solo = diagnose_dips(series[shard], records[shard], threshold=0.7)
            assert (
                combined[shard].to_json_dict() == solo.to_json_dict()
            )

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            diagnose_shard_dips([], [[]])


class TestExposition:
    def test_sanitize_metric_name(self):
        assert sanitize_metric_name("disk.seq_write_kb") == (
            "disk_seq_write_kb"
        )
        assert sanitize_metric_name("9lives") == "_9lives"
        assert sanitize_metric_name("a:b") == "a:b"

    def test_render_counters_and_histograms(self):
        snapshot = {
            "reads.total": 42.0,
            "read.latency_s": {
                "count": 3.0,
                "sum": 0.6,
                "min": 0.1,
                "max": 0.3,
                "mean": 0.2,
                "p50": 0.2,
                "p95": 0.3,
                "p99": 0.3,
            },
        }
        text = render_openmetrics(snapshot, labels={"shard": "0"})
        assert "# TYPE repro_reads_total gauge" in text
        assert 'repro_reads_total{shard="0"} 42.0' in text
        assert "# TYPE repro_read_latency_s summary" in text
        assert (
            'repro_read_latency_s{quantile="0.99",shard="0"} 0.3' in text
        )
        assert 'repro_read_latency_s_count{shard="0"} 3.0' in text
        assert text.endswith("# EOF\n")

    def test_many_snapshots_share_one_type_header(self):
        text = render_openmetrics_many([
            ({"shard": "0"}, {"reads": 1.0}),
            ({"shard": "1"}, {"reads": 2.0}),
        ])
        assert text.count("# TYPE repro_reads gauge") == 1
        assert 'repro_reads{shard="0"} 1.0' in text
        assert 'repro_reads{shard="1"} 2.0' in text

    def test_label_escaping(self):
        text = render_openmetrics({"m": 1.0}, labels={"k": 'a"b\\c'})
        assert 'k="a\\"b\\\\c"' in text

    def test_real_registry_snapshot_renders(self):
        result = execute_serve(serve_spec())
        text = render_openmetrics(result.metrics, labels={"shard": "0"})
        assert "# EOF" in text
        assert "repro_" in text


class TestJsonlRoundTrips:
    def test_exemplar_jsonl_round_trips_and_validates(self, tmp_path):
        result = execute_serve(serve_spec(trace="exemplar"))
        path = tmp_path / "exemplars.jsonl"
        count = write_exemplars_jsonl(path, result.exemplars)
        assert count == len(result.exemplars) > 0
        assert validate_trace_jsonl(path) == count
        loaded = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if line
        ]
        assert loaded == result.exemplars

    def test_trace_dir_files_written_by_serve(self, tmp_path):
        spec = serve_spec(trace="exemplar", trace_dir=str(tmp_path))
        result = execute_serve(spec)
        assert result.exemplars
        files = sorted(tmp_path.glob("*.jsonl"))
        assert any(f.name.startswith("trace_") for f in files)
        for f in files:
            assert validate_trace_jsonl(f) > 0

    def test_validation_rejects_bad_records(self, tmp_path):
        good = execute_serve(serve_spec(trace="exemplar")).exemplars[0]
        validate_exemplar(good)
        bad = dict(good, trace_id="nope")
        with pytest.raises(ValueError):
            validate_exemplar(bad)
        skewed = dict(good, total_s=good["total_s"] + 1e-9)
        with pytest.raises(ValueError):
            validate_exemplar(skewed)
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps(skewed) + "\n")
        with pytest.raises(ValueError, match="bad.jsonl:1"):
            validate_trace_jsonl(path)
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError, match="empty"):
            validate_trace_jsonl(empty)

    def test_serve_result_transports_trace_fields_losslessly(self):
        result = execute_serve(serve_spec(trace="exemplar"))
        clone = type(result).from_dict(result.to_dict())
        assert clone.trace_mode == result.trace_mode
        assert clone.exemplars == result.exemplars
        assert clone.flight_dumps == result.flight_dumps
        payload = result.to_json_dict()
        assert payload["trace"]["mode"] == "exemplar"
        assert payload["trace"]["exemplars"] == len(result.exemplars)
        assert payload["trace"]["worst_exemplars"]


class TestSpecSurface:
    def test_spec_validates_trace_fields(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            serve_spec(trace="loud")
        with pytest.raises(ConfigError):
            serve_spec(trace_slo_s=0.0)
        with pytest.raises(ConfigError):
            serve_spec(trace_dip_threshold=1.5)

    def test_trace_mode_is_part_of_cell_identity_but_dir_is_not(self):
        plain = serve_spec()
        traced = serve_spec(trace="exemplar")
        relocated = serve_spec(trace="exemplar", trace_dir="/tmp/elsewhere")
        assert plain.cell_key() != traced.cell_key()
        assert traced.cell_key() == relocated.cell_key()

    def test_spec_round_trips_trace_fields(self):
        spec = serve_spec(
            trace="full",
            trace_dir="traces",
            trace_slo_s=0.5,
            trace_stall_spike_s=0.1,
            trace_dip_threshold=0.6,
        )
        assert ServiceSpec.from_dict(spec.to_dict()) == spec
        cspec = cluster_spec(trace="exemplar", trace_slo_s=2.0)
        assert ClusterSpec.from_dict(cspec.to_dict()) == cspec
        assert cspec.service_spec().trace == "exemplar"
        assert cspec.service_spec().trace_slo_s == 2.0


class TestPricerEquivalence:
    """price() duplicates service_seconds()'s body on the hot path.

    The closed-loop kernel calls ``price`` per read, so it inlines the
    arithmetic instead of delegating; this pins the two methods (and
    ``stage_terms``) to the same addend sequence, bitwise.
    """

    def test_price_is_scaled_service_seconds_bitwise(self):
        from repro.config import SystemConfig
        from repro.lsm.base import ReadCost
        from repro.sim.kernel import ReadPricer
        from repro.storage.iomodel import IOCostModel

        config = SystemConfig.paper_scaled(SCALE)
        pricer = ReadPricer(config, IOCostModel(config))
        shapes = [
            ReadCost(),
            ReadCost(cache_hit_blocks=3),
            ReadCost(cache_hit_blocks=1, os_hit_blocks=2, bloom_probes=4),
            ReadCost(disk_random_blocks=2, bloom_probes=1),
            ReadCost(seq_runs=3, seq_kb=48.0),
            ReadCost(
                cache_hit_blocks=2,
                os_hit_blocks=1,
                bloom_probes=7,
                disk_random_blocks=1,
                seq_runs=1,
                seq_kb=4.0,
                tables_checked=5,
            ),
        ]
        for cost in shapes:
            for pairs in (0, 25):
                for util in (0.0, 0.5, 0.97, 1.5, -0.1):
                    for is_scan in (False, True):
                        service = pricer.service_seconds(
                            cost, pairs, util, is_scan
                        )
                        assert pricer.price(cost, pairs, util, is_scan) == (
                            service * pricer.ops_scale
                        )
                        total = 0.0
                        for _, value in pricer.stage_terms(
                            cost, pairs, util, is_scan
                        ):
                            total += value
                        assert total == service
