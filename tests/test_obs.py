"""Unit tests for the observability core (registry, bus, trace, reservoir)."""

from __future__ import annotations

import random

import pytest

from repro.clock import VirtualClock
from repro.config import SystemConfig
from repro.errors import EngineError
from repro.lsm.blsm import BLSMTree
from repro.obs.events import (
    CompactionEnd,
    CompactionStart,
    EventBus,
    EventTally,
    FileCreated,
    FlushDone,
)
from repro.obs.metrics import NULL_REGISTRY, Counter, MetricsRegistry
from repro.obs.trace import TraceRecorder, read_jsonl
from repro.sim.metrics import LatencyReservoir
from repro.substrate import Substrate


class TestMetricsRegistry:
    def test_counter_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("a.b")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        assert registry.snapshot()["a.b"] == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_same_name_shares_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("n") is registry.counter("n")
        assert len(registry) == 1

    def test_type_clash_rejected(self):
        registry = MetricsRegistry()
        registry.counter("n")
        with pytest.raises(TypeError):
            registry.gauge("n")

    def test_gauge_and_histogram(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(7)
        histogram = registry.histogram("h")
        histogram.observe(1.0)
        histogram.observe(3.0)
        snap = registry.snapshot()
        assert snap["g"] == 7.0
        assert snap["h"] == {
            "count": 2.0,
            "sum": 4.0,
            "min": 1.0,
            "max": 3.0,
            "mean": 2.0,
            "p50": 1.0,
            "p95": 3.0,
            "p99": 3.0,
        }

    def test_disabled_registry_is_noop(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("c")
        counter.inc(5)
        assert counter.value == 0.0
        assert len(registry) == 0
        # Null instruments are shared singletons.
        assert registry.counter("other") is counter
        assert NULL_REGISTRY.gauge("g") is registry.gauge("whatever")

    def test_names_and_contains(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.counter("a")
        assert registry.names() == ["a", "b"]
        assert "a" in registry and "z" not in registry


class TestEventBus:
    def test_inactive_bus_short_circuits(self):
        bus = EventBus()
        assert not bus.active
        bus.emit(FlushDone(entries=1, files=1, size_kb=4.0))  # No subscribers.

    def test_type_specific_subscription(self):
        bus = EventBus()
        seen = []
        bus.subscribe(FlushDone, seen.append)
        assert bus.active
        bus.emit(FlushDone(entries=1, files=1, size_kb=4.0))
        bus.emit(FileCreated(file_id=1, size_kb=4, extent_start=0))
        assert len(seen) == 1 and isinstance(seen[0], FlushDone)

    def test_catch_all_runs_after_typed(self):
        bus = EventBus()
        order = []
        bus.subscribe(FlushDone, lambda e: order.append("typed"))
        bus.subscribe_all(lambda e: order.append("all"))
        bus.emit(FlushDone(entries=1, files=1, size_kb=4.0))
        assert order == ["typed", "all"]

    def test_event_tally(self):
        bus = EventBus()
        tally = EventTally(bus)
        bus.emit(FlushDone(entries=1, files=1, size_kb=4.0))
        bus.emit(FlushDone(entries=2, files=1, size_kb=4.0))
        bus.emit(FileCreated(file_id=1, size_kb=4, extent_start=0))
        assert tally.as_dict() == {"FlushDone": 2, "FileCreated": 1}

    def test_events_are_frozen(self):
        event = CompactionStart(level=1, input_files=2, input_kb=8.0)
        with pytest.raises(AttributeError):
            event.level = 2


class TestTraceRecorder:
    def test_records_with_virtual_timestamps(self):
        clock = VirtualClock()
        bus = EventBus()
        recorder = TraceRecorder(clock, bus)
        bus.emit(FlushDone(entries=5, files=1, size_kb=4.0))
        clock.advance(10)
        bus.emit(
            CompactionEnd(
                level=1, read_kb=8.0, write_kb=8.0, output_files=2,
                obsolete_entries=0,
            )
        )
        assert [r["t"] for r in recorder.records] == [0, 10]
        assert recorder.counts() == {"FlushDone": 1, "CompactionEnd": 1}

    def test_jsonl_round_trip(self, tmp_path):
        clock = VirtualClock()
        bus = EventBus()
        recorder = TraceRecorder(clock, bus)
        bus.emit(FileCreated(file_id=3, size_kb=4, extent_start=12))
        recorder.finalize(live_kb=4, live_extents=1)
        path = tmp_path / "trace.jsonl"
        assert recorder.write_jsonl(path) == 2
        records = read_jsonl(path)
        assert records[0]["event"] == "FileCreated"
        assert records[0]["file_id"] == 3
        assert records[-1] == {
            "t": 0, "event": "TraceEnd", "live_kb": 4, "live_extents": 1,
        }

    def test_empty_trace_serializes_empty(self):
        recorder = TraceRecorder(VirtualClock())
        assert recorder.to_jsonl() == ""
        assert len(recorder) == 0


class TestLatencyReservoir:
    def test_len_counts_observations_not_samples(self):
        reservoir = LatencyReservoir(capacity=10)
        for value in range(25):
            reservoir.append(float(value))
        assert len(reservoir) == 25
        assert len(reservoir.samples) == 10

    def test_below_capacity_keeps_everything(self):
        reservoir = LatencyReservoir(capacity=100)
        for value in range(7):
            reservoir.add(float(value))
        assert sorted(reservoir) == [float(v) for v in range(7)]
        assert reservoir.percentile(0) == 0.0
        assert reservoir.percentile(100) == 6.0

    def test_percentiles_stable_within_tolerance(self):
        # A seeded exponential-ish stream: reservoir percentiles must track
        # the exact ones computed over the full stream.
        rng = random.Random(42)
        stream = [rng.expovariate(1.0) for _ in range(50_000)]
        reservoir = LatencyReservoir(capacity=8192, seed=7)
        for value in stream:
            reservoir.append(value)
        exact = sorted(stream)

        def exact_percentile(p):
            return exact[round(p / 100 * (len(exact) - 1))]

        for p in (50, 90, 99):
            estimate = reservoir.percentile(p)
            truth = exact_percentile(p)
            assert abs(estimate - truth) / truth < 0.15, (p, estimate, truth)

    def test_percentile_validates_range(self):
        reservoir = LatencyReservoir()
        with pytest.raises(ValueError):
            reservoir.percentile(150)

    def test_empty_reservoir(self):
        reservoir = LatencyReservoir()
        assert not reservoir
        assert reservoir.percentile(50) == 0.0

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            LatencyReservoir(capacity=0)


class TestSubstrate:
    def test_create_binds_disk_to_registry(self):
        config = SystemConfig.tiny()
        substrate = Substrate.create(config)
        substrate.disk.allocate(8)
        assert substrate.registry.snapshot()["disk.live_kb"] == 8.0

    def test_engine_from_substrate(self):
        substrate = Substrate.create(SystemConfig.tiny())
        engine = BLSMTree(substrate=substrate)
        assert engine.substrate is substrate
        assert engine.clock is substrate.clock
        assert engine.bus is substrate.bus
        engine.close()

    def test_legacy_construction_builds_substrate(self, tiny_config, clock, disk):
        engine = BLSMTree(tiny_config, clock, disk)
        assert engine.substrate.config is tiny_config
        assert engine.substrate.disk is disk
        assert engine.metric_cache is None
        engine.close()

    def test_construction_requires_config_or_substrate(self):
        with pytest.raises(EngineError):
            BLSMTree()

    def test_with_caches_shares_everything_else(self):
        substrate = Substrate.create(SystemConfig.tiny())
        sibling = substrate.with_caches(None)
        assert sibling.clock is substrate.clock
        assert sibling.disk is substrate.disk
        assert sibling.registry is substrate.registry
        assert sibling.bus is substrate.bus
