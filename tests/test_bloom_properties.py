"""Property tests for the Bloom filter: FP rate bounded, zero FNs.

The paper charges multi-table variants for "reading false blocks caused
by false bloom filter tests" (Section III), so the filter's
false-positive rate must be *real but calibrated*: measured FP rate
within 2x of the theoretical rate for the configured bits-per-key, and
never a false negative (a false negative would silently lose data from
the read path).
"""

from __future__ import annotations

import random

import pytest

from repro.bloom.bloom import BloomFilter

#: (number of keys, bits per key) grid — 15 bits/key is the paper's
#: setting (Section VI-A); 8 is a leaner configuration with a visibly
#: higher FP rate.
_GRID = [
    (10, 8),
    (10, 15),
    (100, 8),
    (100, 15),
    (1000, 8),
    (1000, 15),
    (5000, 8),
    (5000, 15),
]

_PROBES = 20_000


def _build(num_keys: int, bits_per_key: int, seed: int):
    rng = random.Random(seed)
    keys = rng.sample(range(10_000_000), num_keys)
    return BloomFilter.build(keys, bits_per_key), set(keys), rng


@pytest.mark.parametrize("num_keys,bits_per_key", _GRID)
def test_no_false_negatives(num_keys, bits_per_key):
    bloom, keys, _ = _build(num_keys, bits_per_key, seed=1)
    for key in keys:
        assert bloom.may_contain(key), f"false negative for {key}"


@pytest.mark.parametrize("num_keys,bits_per_key", _GRID)
def test_fp_rate_within_2x_of_target(num_keys, bits_per_key):
    bloom, keys, rng = _build(num_keys, bits_per_key, seed=2)
    target = bloom.theoretical_fp_rate()
    false_positives = 0
    probed = 0
    while probed < _PROBES:
        key = rng.randrange(10_000_000, 20_000_000)  # Disjoint from keys.
        probed += 1
        if bloom.may_contain(key):
            false_positives += 1
    measured = false_positives / probed
    # 2x the larger of the ensemble-theoretical rate and the
    # instance-exact expectation fill^k.  The classic formula is an
    # ensemble average that under-estimates tiny filters (FP rate is
    # convex in the realized fill, so Jensen cuts against it); fill^k is
    # what an ideal hasher achieves on *this* filter.  Degenerate probe
    # sequences blow through both.  The absolute floor keeps filters
    # whose expected FP count over the probe budget is single-digit
    # from failing on shot noise.
    instance = bloom.fill_fraction() ** bloom.num_hashes
    bound = max(2.0 * target, 2.0 * instance, 2.0 / _PROBES)
    assert measured <= bound, (
        f"measured {measured:.5f} > bound {bound:.5f} "
        f"(theoretical {target:.5f}, {num_keys} keys x {bits_per_key} bits)"
    )


@pytest.mark.parametrize("bits_per_key", [8, 15])
def test_fp_rate_is_nonzero_for_dense_filters(bits_per_key):
    """The filter must produce *genuine* false positives — an oracle
    would bias the paper's false-block read charges to zero."""
    bloom, _, rng = _build(5000, bits_per_key, seed=3)
    hits = sum(
        bloom.may_contain(rng.randrange(10_000_000, 20_000_000))
        for _ in range(200_000)
    )
    assert hits > 0


def test_more_bits_lower_fp_rate():
    lean, _, rng = _build(2000, 8, seed=4)
    rich, _, _ = _build(2000, 15, seed=4)
    probes = [rng.randrange(10_000_000, 20_000_000) for _ in range(_PROBES)]
    lean_fp = sum(lean.may_contain(p) for p in probes)
    rich_fp = sum(rich.may_contain(p) for p in probes)
    assert rich_fp < lean_fp
    assert rich.theoretical_fp_rate() < lean.theoretical_fp_rate()
